//! High-level justification oracles used by the DETERRENT pipeline.
//!
//! Two oracles answer the same question — "is there an input pattern that
//! drives these nets to these values?" — with different cost profiles:
//!
//! * [`CircuitOracle`] Tseitin-encodes the **whole netlist** once and reuses
//!   one incremental solver under assumptions. Best when queries touch nets
//!   scattered all over the design.
//! * [`ConeOracle`] encodes **lazily and cone-restricted**: a query only adds
//!   clauses for the not-yet-encoded part of the union of its targets'
//!   fanin cones, into the same persistent assumption-based solver. Best for
//!   the offline compatibility phase, where each query touches two small
//!   cones and most of the design is never mentioned.

use netlist::{GateKind, NetId, Netlist};

use crate::encoder::{encode_nets_into, CircuitEncoder};
use crate::solver::{SolveResult, Solver, SolverConfig};
use crate::types::{Cnf, Lit, Var};

/// Answers "is there an input pattern that drives these nets to these
/// values?" queries against one netlist.
///
/// The oracle encodes the netlist once and keeps a single incremental
/// [`Solver`] alive across queries, so the learned clauses from earlier
/// compatibility checks speed up later ones — this mirrors how the paper
/// amortizes its offline SAT work.
///
/// Returned patterns are assignments to [`netlist::Netlist::scan_inputs`] in
/// that order (primary inputs first, then scan flip-flops), i.e. the same
/// convention as `sim::TestPattern`.
#[derive(Debug, Clone)]
pub struct CircuitOracle {
    encoder: CircuitEncoder,
    solver: Solver,
    scan_inputs: Vec<NetId>,
    queries: u64,
}

impl CircuitOracle {
    /// Builds the oracle for `netlist` (performs the Tseitin encoding).
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        Self::with_config(netlist, SolverConfig::default())
    }

    /// Builds the oracle with an explicit solver configuration (restart
    /// policy, clause deletion).
    #[must_use]
    pub fn with_config(netlist: &Netlist, config: SolverConfig) -> Self {
        let encoder = CircuitEncoder::new(netlist);
        let solver = Solver::from_cnf_with_config(encoder.cnf(), config);
        Self {
            encoder,
            solver,
            scan_inputs: netlist.scan_inputs(),
            queries: 0,
        }
    }

    /// Number of scan inputs (width of returned patterns).
    #[must_use]
    pub fn pattern_width(&self) -> usize {
        self.scan_inputs.len()
    }

    /// Number of justification queries answered so far.
    #[must_use]
    pub fn num_queries(&self) -> u64 {
        self.queries
    }

    /// Searches for a scan-input assignment that simultaneously drives every
    /// `(net, value)` pair in `targets`. Returns the pattern bits (in
    /// scan-input order) or `None` when the targets are jointly
    /// unjustifiable.
    pub fn justify(&mut self, targets: &[(NetId, bool)]) -> Option<Vec<bool>> {
        self.queries += 1;
        let assumptions: Vec<Lit> = targets
            .iter()
            .map(|&(net, value)| self.encoder.lit(net, value))
            .collect();
        match self.solver.solve(&assumptions) {
            SolveResult::Sat(model) => Some(
                self.scan_inputs
                    .iter()
                    .map(|&si| model[self.encoder.var(si).index()])
                    .collect(),
            ),
            SolveResult::Unsat => None,
        }
    }

    /// Returns `true` when an input pattern exists that drives every target
    /// simultaneously (the paper's *compatibility* relation).
    pub fn is_compatible(&mut self, targets: &[(NetId, bool)]) -> bool {
        self.justify(targets).is_some()
    }

    /// The underlying encoder (for advanced uses such as adding side
    /// constraints to a standalone solver).
    #[must_use]
    pub fn encoder(&self) -> &CircuitEncoder {
        &self.encoder
    }

    /// Accumulated solver statistics.
    #[must_use]
    pub fn solver_stats(&self) -> crate::SolverStats {
        self.solver.stats()
    }
}

const UNENCODED: u32 = u32::MAX;

/// Assumption-based justification oracle with lazy, cone-restricted
/// encoding.
///
/// One persistent CDCL solver is shared by every query; the Tseitin clauses
/// of a gate are added at most once, the first time a query's fanin cone
/// reaches it. Queries are posed as solver assumptions, so learned clauses
/// carry over between queries exactly as in [`CircuitOracle`] — but the
/// formula (and the variable range the decision heuristic scans) grows only
/// with the union of the cones actually queried, not the whole design.
#[derive(Debug)]
pub struct ConeOracle<'a> {
    netlist: &'a Netlist,
    solver: Solver,
    /// Net index -> solver variable, [`UNENCODED`] until the net's cone is
    /// first touched by a query.
    net_vars: Vec<u32>,
    scan_inputs: Vec<NetId>,
    queries: u64,
    encoded_gates: u64,
}

impl<'a> ConeOracle<'a> {
    /// Creates an empty oracle over `netlist`; no clauses are generated until
    /// the first query.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        Self::with_config(netlist, SolverConfig::default())
    }

    /// Creates an empty oracle with an explicit solver configuration
    /// (restart policy, clause deletion).
    #[must_use]
    pub fn with_config(netlist: &'a Netlist, config: SolverConfig) -> Self {
        Self {
            netlist,
            solver: Solver::with_config(config),
            net_vars: vec![UNENCODED; netlist.num_gates()],
            scan_inputs: netlist.scan_inputs(),
            queries: 0,
            encoded_gates: 0,
        }
    }

    /// Number of scan inputs (width of returned patterns).
    #[must_use]
    pub fn pattern_width(&self) -> usize {
        self.scan_inputs.len()
    }

    /// Number of justification queries answered so far.
    #[must_use]
    pub fn num_queries(&self) -> u64 {
        self.queries
    }

    /// Number of combinational gates encoded so far (monotone over the
    /// oracle's lifetime, bounded by the netlist's gate count).
    #[must_use]
    pub fn encoded_gates(&self) -> u64 {
        self.encoded_gates
    }

    /// Adds the Tseitin clauses for every not-yet-encoded gate in the fanin
    /// cone of `root`.
    fn ensure_encoded(&mut self, root: NetId) {
        if self.net_vars[root.index()] != UNENCODED {
            // The root has a variable, which by construction means its whole
            // cone is already encoded.
            return;
        }
        // Collect the unencoded part of the cone (DFS pruned at encoded
        // nets), then assign variables and emit clauses.
        let mut stack = vec![root];
        let mut fresh_nets: Vec<NetId> = Vec::new();
        while let Some(id) = stack.pop() {
            if self.net_vars[id.index()] != UNENCODED {
                continue;
            }
            // Reserve with a placeholder so the DFS visits each net once;
            // real variables are assigned below in deterministic id order.
            self.net_vars[id.index()] = UNENCODED - 1;
            fresh_nets.push(id);
            let gate = self.netlist.gate(id);
            if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            for &f in &gate.fanin {
                if self.net_vars[f.index()] == UNENCODED {
                    stack.push(f);
                }
            }
        }
        fresh_nets.sort_unstable();
        for &id in &fresh_nets {
            self.net_vars[id.index()] = self.solver.new_var().0;
        }
        // Auxiliary (XOR-chain) variables are allocated through a scratch Cnf
        // whose variable space is kept aligned with the solver's.
        let mut scratch = Cnf::with_vars(self.solver.num_vars());
        self.encoded_gates +=
            encode_nets_into(self.netlist, &fresh_nets, &self.net_vars, &mut scratch) as u64;
        for clause in scratch.clauses() {
            self.solver.add_clause(clause.iter().copied());
        }
    }

    /// Searches for a scan-input assignment that simultaneously drives every
    /// `(net, value)` pair in `targets`, encoding the union of their cones on
    /// demand. Returns the pattern bits (in scan-input order; inputs outside
    /// every queried cone default to 0) or `None` when the targets are
    /// jointly unjustifiable.
    pub fn justify(&mut self, targets: &[(NetId, bool)]) -> Option<Vec<bool>> {
        self.queries += 1;
        for &(net, _) in targets {
            self.ensure_encoded(net);
        }
        let assumptions: Vec<Lit> = targets
            .iter()
            .map(|&(net, value)| Var(self.net_vars[net.index()]).lit(value))
            .collect();
        match self.solver.solve(&assumptions) {
            SolveResult::Sat(model) => Some(
                self.scan_inputs
                    .iter()
                    .map(|&si| {
                        let v = self.net_vars[si.index()];
                        v != UNENCODED && model[v as usize]
                    })
                    .collect(),
            ),
            SolveResult::Unsat => None,
        }
    }

    /// Returns `true` when an input pattern exists that drives every target
    /// simultaneously (the paper's *compatibility* relation).
    pub fn is_compatible(&mut self, targets: &[(NetId, bool)]) -> bool {
        self.justify(targets).is_some()
    }

    /// Accumulated solver statistics.
    #[must_use]
    pub fn solver_stats(&self) -> crate::SolverStats {
        self.solver.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;
    use sim::{Simulator, TestPattern};

    #[test]
    fn justify_rare_chain_root() {
        let nl = samples::rare_chain(5);
        let mut oracle = CircuitOracle::new(&nl);
        let root = nl.net_by_name("and4").unwrap();
        let bits = oracle.justify(&[(root, true)]).expect("SAT");
        assert!(bits.iter().all(|&b| b));
        assert_eq!(oracle.pattern_width(), 5);
        assert_eq!(oracle.num_queries(), 1);
    }

    #[test]
    fn justified_patterns_verify_in_simulation() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(8);
        let analysis = sim::rare::RareNetAnalysis::estimate(&nl, 0.2, 2048, 3);
        let mut oracle = CircuitOracle::new(&nl);
        let sim = Simulator::new(&nl);
        let mut justified = 0;
        for rare in analysis.rare_nets() {
            if let Some(bits) = oracle.justify(&[(rare.net, rare.rare_value)]) {
                let pattern = TestPattern::new(bits);
                assert!(
                    sim.activates(&pattern, &[(rare.net, rare.rare_value)]),
                    "SAT pattern must activate {}",
                    nl.net_name(rare.net)
                );
                justified += 1;
            }
        }
        assert!(justified > 0, "at least one rare net should be justifiable");
    }

    #[test]
    fn impossible_targets_are_rejected() {
        let nl = samples::c17();
        let mut oracle = CircuitOracle::new(&nl);
        let g10 = nl.net_by_name("G10").unwrap();
        let g1 = nl.net_by_name("G1").unwrap();
        // G10 = NAND(G1, G3) = 0 forces G1 = 1.
        assert!(!oracle.is_compatible(&[(g10, false), (g1, false)]));
        assert!(oracle.is_compatible(&[(g10, false), (g1, true)]));
    }

    #[test]
    fn incremental_queries_reuse_solver() {
        let nl = samples::majority5();
        let mut oracle = CircuitOracle::new(&nl);
        let maj = nl.net_by_name("maj").unwrap();
        for _ in 0..5 {
            assert!(oracle.is_compatible(&[(maj, true)]));
            assert!(oracle.is_compatible(&[(maj, false)]));
        }
        assert_eq!(oracle.num_queries(), 10);
    }

    #[test]
    fn conflicting_same_net_targets_unsat() {
        let nl = samples::c17();
        let mut oracle = CircuitOracle::new(&nl);
        let g22 = nl.net_by_name("G22").unwrap();
        assert!(!oracle.is_compatible(&[(g22, true), (g22, false)]));
    }

    #[test]
    fn cone_oracle_agrees_with_full_oracle() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(8);
        let analysis = sim::rare::RareNetAnalysis::estimate(&nl, 0.2, 2048, 3);
        let targets = analysis.targets();
        let mut full = CircuitOracle::new(&nl);
        let mut cone = ConeOracle::new(&nl);
        // Singletons and all pairs over a prefix must agree exactly.
        let k = targets.len().min(8);
        for i in 0..k {
            assert_eq!(
                full.is_compatible(&targets[i..=i]),
                cone.is_compatible(&targets[i..=i]),
                "singleton {i}"
            );
            for j in (i + 1)..k {
                let pair = [targets[i], targets[j]];
                assert_eq!(
                    full.is_compatible(&pair),
                    cone.is_compatible(&pair),
                    "pair ({i},{j})"
                );
            }
        }
        assert_eq!(cone.num_queries(), (k + k * (k - 1) / 2) as u64);
        // Lazy encoding never exceeds the design size and in practice stays
        // well below it on cone-structured queries.
        assert!(cone.encoded_gates() <= nl.num_logic_gates() as u64);
    }

    #[test]
    fn cone_oracle_patterns_verify_in_simulation() {
        let nl = BenchmarkProfile::c5315().scaled(40).generate(5);
        let analysis = sim::rare::RareNetAnalysis::estimate(&nl, 0.2, 2048, 9);
        let mut oracle = ConeOracle::new(&nl);
        let sim = Simulator::new(&nl);
        let mut justified = 0;
        for rare in analysis.rare_nets() {
            if let Some(bits) = oracle.justify(&[(rare.net, rare.rare_value)]) {
                assert_eq!(bits.len(), oracle.pattern_width());
                let pattern = TestPattern::new(bits);
                assert!(
                    sim.activates(&pattern, &[(rare.net, rare.rare_value)]),
                    "cone-oracle pattern must activate {}",
                    nl.net_name(rare.net)
                );
                justified += 1;
            }
        }
        assert!(justified > 0, "at least one rare net should be justifiable");
    }

    #[test]
    fn cone_oracle_encodes_incrementally() {
        let nl = samples::c17();
        let mut oracle = ConeOracle::new(&nl);
        assert_eq!(oracle.encoded_gates(), 0);
        let g22 = nl.net_by_name("G22").unwrap();
        let g23 = nl.net_by_name("G23").unwrap();
        assert!(oracle.is_compatible(&[(g22, true)]));
        let after_first = oracle.encoded_gates();
        assert!(after_first > 0);
        // Re-querying the same cone adds no clauses.
        assert!(oracle.is_compatible(&[(g22, false)]));
        assert_eq!(oracle.encoded_gates(), after_first);
        // A second, overlapping cone only adds its new gates.
        assert!(oracle.is_compatible(&[(g23, true)]));
        assert!(oracle.encoded_gates() > after_first);
        assert!(oracle.encoded_gates() <= nl.num_logic_gates() as u64);
    }

    #[test]
    fn cone_oracle_rejects_impossible_targets() {
        let nl = samples::c17();
        let mut oracle = ConeOracle::new(&nl);
        let g10 = nl.net_by_name("G10").unwrap();
        let g1 = nl.net_by_name("G1").unwrap();
        assert!(!oracle.is_compatible(&[(g10, false), (g1, false)]));
        assert!(oracle.is_compatible(&[(g10, false), (g1, true)]));
        assert!(!oracle.is_compatible(&[(g10, true), (g10, false)]));
    }
}
