//! Small, hand-written circuits used throughout tests and examples.
//!
//! These are real circuits (not random): the ISCAS-85 `c17`, a 5-input
//! majority voter, a 4-bit ripple-carry adder, and a tiny full-scan
//! sequential design. They are small enough for exhaustive reference checks
//! yet exercise every gate kind the parser and simulator support.

use crate::{GateKind, Netlist, NetlistBuilder};

/// The ISCAS-85 `c17` benchmark: 5 inputs, 2 outputs, 6 NAND gates.
///
/// # Panics
///
/// Never panics; the circuit is statically valid.
#[must_use]
pub fn c17() -> Netlist {
    let mut b = NetlistBuilder::new("c17");
    let g1 = b.input("G1");
    let g2 = b.input("G2");
    let g3 = b.input("G3");
    let g6 = b.input("G6");
    let g7 = b.input("G7");
    let g10 = b.gate(GateKind::Nand, "G10", &[g1, g3]).expect("valid");
    let g11 = b.gate(GateKind::Nand, "G11", &[g3, g6]).expect("valid");
    let g16 = b.gate(GateKind::Nand, "G16", &[g2, g11]).expect("valid");
    let g19 = b.gate(GateKind::Nand, "G19", &[g11, g7]).expect("valid");
    let g22 = b.gate(GateKind::Nand, "G22", &[g10, g16]).expect("valid");
    let g23 = b.gate(GateKind::Nand, "G23", &[g16, g19]).expect("valid");
    b.output(g22);
    b.output(g23);
    b.build().expect("c17 is structurally valid")
}

/// A 5-input majority voter built from AND/OR gates.
///
/// The output is 1 when at least three of the five inputs are 1. Internal
/// AND3 terms have activation probability 1/8 under uniform inputs, so this
/// circuit has rare nets at a threshold of 0.14 but not at 0.1 — handy for
/// threshold-sweep tests.
#[must_use]
pub fn majority5() -> Netlist {
    let mut b = NetlistBuilder::new("majority5");
    let inputs: Vec<_> = (0..5).map(|i| b.input(format!("x{i}"))).collect();
    let mut terms = Vec::new();
    // All 3-subsets of the 5 inputs.
    for i in 0..5 {
        for j in (i + 1)..5 {
            for k in (j + 1)..5 {
                let t = b
                    .gate(
                        GateKind::And,
                        format!("t_{i}_{j}_{k}"),
                        &[inputs[i], inputs[j], inputs[k]],
                    )
                    .expect("valid");
                terms.push(t);
            }
        }
    }
    let y = b.gate(GateKind::Or, "maj", &terms).expect("valid");
    b.output(y);
    b.build().expect("majority5 is structurally valid")
}

/// A 4-bit ripple-carry adder (9 inputs: two 4-bit operands plus carry-in,
/// 5 outputs: 4 sum bits plus carry-out).
#[must_use]
pub fn adder4() -> Netlist {
    let mut b = NetlistBuilder::new("adder4");
    let a: Vec<_> = (0..4).map(|i| b.input(format!("a{i}"))).collect();
    let x: Vec<_> = (0..4).map(|i| b.input(format!("b{i}"))).collect();
    let mut carry = b.input("cin");
    for i in 0..4 {
        let axb = b
            .gate(GateKind::Xor, format!("axb{i}"), &[a[i], x[i]])
            .expect("valid");
        let sum = b
            .gate(GateKind::Xor, format!("sum{i}"), &[axb, carry])
            .expect("valid");
        let c1 = b
            .gate(GateKind::And, format!("c1_{i}"), &[a[i], x[i]])
            .expect("valid");
        let c2 = b
            .gate(GateKind::And, format!("c2_{i}"), &[axb, carry])
            .expect("valid");
        let cout = b
            .gate(GateKind::Or, format!("cout{i}"), &[c1, c2])
            .expect("valid");
        b.output(sum);
        carry = cout;
    }
    b.output(carry);
    b.build().expect("adder4 is structurally valid")
}

/// A deep AND-tree circuit with genuinely rare internal nets.
///
/// `rare_chain(w)` produces a cascade of AND gates over `w` fresh inputs, so
/// the final net has activation probability `2^-w` — a convenient, exactly
/// analysable source of rare nets for unit tests.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn rare_chain(width: usize) -> Netlist {
    assert!(width > 0, "width must be positive");
    let mut b = NetlistBuilder::new(format!("rare_chain_{width}"));
    let inputs: Vec<_> = (0..width).map(|i| b.input(format!("x{i}"))).collect();
    let mut acc = inputs[0];
    for (i, &inp) in inputs.iter().enumerate().skip(1) {
        acc = b
            .gate(GateKind::And, format!("and{i}"), &[acc, inp])
            .expect("valid");
    }
    // Give the design a second, non-rare output so rare-net analysis has
    // contrast.
    let any = b.gate(GateKind::Or, "any", &inputs).expect("valid");
    b.output(acc);
    b.output(any);
    b.build().expect("rare_chain is structurally valid")
}

/// A tiny full-scan sequential design: a 3-bit counter-ish structure with
/// three flip-flops and a handful of gates. Used to test the scan view.
#[must_use]
pub fn scan_counter3() -> Netlist {
    let mut b = NetlistBuilder::new("scan_counter3");
    let en = b.input("en");
    // Declare flops with placeholder data; patch after building next-state.
    let q0 = b.dff("q0", en);
    let q1 = b.dff("q1", en);
    let q2 = b.dff("q2", en);
    let n0 = b.gate(GateKind::Xor, "n0", &[q0, en]).expect("valid");
    let c0 = b.gate(GateKind::And, "c0", &[q0, en]).expect("valid");
    let n1 = b.gate(GateKind::Xor, "n1", &[q1, c0]).expect("valid");
    let c1 = b.gate(GateKind::And, "c1", &[q1, c0]).expect("valid");
    let n2 = b.gate(GateKind::Xor, "n2", &[q2, c1]).expect("valid");
    let ovf = b.gate(GateKind::And, "ovf", &[q2, c1]).expect("valid");
    b.set_dff_data(q0, n0).expect("q0 exists");
    b.set_dff_data(q1, n1).expect("q1 exists");
    b.set_dff_data(q2, n2).expect("q2 exists");
    b.output(ovf);
    b.build().expect("scan_counter3 is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_shape() {
        let nl = c17();
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 2);
        assert_eq!(nl.num_logic_gates(), 6);
    }

    #[test]
    fn majority5_shape() {
        let nl = majority5();
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 1);
        assert_eq!(nl.num_logic_gates(), 11); // 10 AND3 terms + 1 OR
    }

    #[test]
    fn adder4_shape() {
        let nl = adder4();
        assert_eq!(nl.num_inputs(), 9);
        assert_eq!(nl.num_outputs(), 5);
    }

    #[test]
    fn rare_chain_shape() {
        let nl = rare_chain(6);
        assert_eq!(nl.num_inputs(), 6);
        assert_eq!(nl.num_outputs(), 2);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rare_chain_zero_panics() {
        let _ = rare_chain(0);
    }

    #[test]
    fn scan_counter_has_three_flops() {
        let nl = scan_counter3();
        assert_eq!(nl.flip_flops().len(), 3);
        assert_eq!(nl.num_scan_inputs(), 4);
    }
}
