//! Gate-level netlist substrate for the DETERRENT reproduction.
//!
//! This crate provides the circuit representation shared by every other crate
//! in the workspace:
//!
//! * [`Netlist`] — an immutable, topologically ordered gate-level netlist in
//!   which every gate drives exactly one net (identified by a [`NetId`]).
//! * [`NetlistBuilder`] — an ergonomic way to construct netlists by hand or
//!   from a parser.
//! * [`bench`](mod@bench) — a reader/writer for the ISCAS `.bench` format used by the
//!   original DETERRENT artifact (c2670, c5315, …, s35932).
//! * [`synth`] — a deterministic synthetic benchmark generator producing
//!   circuits whose size and rare-net profile match the benchmarks evaluated
//!   in the paper (used because the proprietary benchmark distribution is not
//!   shipped with this repository; see `DESIGN.md`).
//!
//! Sequential elements are modelled under the *full-scan* assumption used by
//! the paper and the prior work it compares against: every D flip-flop output
//! is treated as a pseudo primary input and every flip-flop input as a pseudo
//! primary output, so that test generation reduces to a combinational problem.
//!
//! # Example
//!
//! ```
//! use netlist::{GateKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("toy");
//! let a = b.input("a");
//! let bb = b.input("b");
//! let g = b.gate(GateKind::And, "g", &[a, bb])?;
//! b.output(g);
//! let nl = b.build()?;
//! assert_eq!(nl.num_inputs(), 2);
//! assert_eq!(nl.num_gates(), 3); // two inputs + one AND
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod builder;
pub mod cone;
mod error;
mod gate;
mod netlist;
pub mod samples;
pub mod synth;

pub use builder::NetlistBuilder;
pub use cone::{transitive_fanin, InputSupports};
pub use error::NetlistError;
pub use gate::{GateKind, Logic};
pub use netlist::{Gate, NetId, Netlist};
