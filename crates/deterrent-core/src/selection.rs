//! Set selection and SAT-based test-pattern generation (steps 4–5 of the
//! pipeline).

use sat::CircuitOracle;
use sim::TestPattern;

use crate::CompatibilityGraph;

/// A set of rare nets, stored as sorted indices into
/// [`CompatibilityGraph::rare_nets`].
pub type RareNetSet = Vec<usize>;

/// Picks the `k` largest *distinct* sets from the harvested episode-final
/// sets, as the paper does after training.
///
/// Sets are canonicalized (sorted, deduplicated) before comparison; ties are
/// broken deterministically by lexicographic order.
#[must_use]
pub fn select_k_largest(sets: &[Vec<usize>], k: usize) -> Vec<RareNetSet> {
    let mut canonical: Vec<RareNetSet> = sets
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| {
            let mut c = s.clone();
            c.sort_unstable();
            c.dedup();
            c
        })
        .collect();
    canonical.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    canonical.dedup();
    // Drop sets that are strict subsets of an earlier (larger) kept set: they
    // cannot add coverage and would waste test length.
    let mut kept: Vec<RareNetSet> = Vec::new();
    for set in canonical {
        let subsumed = kept
            .iter()
            .any(|larger| set.iter().all(|x| larger.binary_search(x).is_ok()));
        if !subsumed {
            kept.push(set);
            if kept.len() == k {
                break;
            }
        }
    }
    kept
}

/// Generates one test pattern per selected set using the SAT oracle.
///
/// Pairwise compatibility does not always imply joint satisfiability, so a
/// set whose full conjunction is UNSAT is repaired by greedily dropping its
/// last members until the remainder is satisfiable (singletons of rare nets
/// are always satisfiable by construction of the rare-net analysis, because
/// the rare value was observed in simulation). Duplicate patterns are
/// removed while preserving order.
#[must_use]
pub fn generate_patterns(
    oracle: &mut CircuitOracle,
    graph: &CompatibilityGraph,
    sets: &[RareNetSet],
) -> Vec<TestPattern> {
    let mut patterns: Vec<TestPattern> = Vec::with_capacity(sets.len());
    for set in sets {
        let mut working = set.clone();
        while !working.is_empty() {
            let targets = graph.targets(&working);
            if let Some(bits) = oracle.justify(&targets) {
                let pattern = TestPattern::new(bits);
                if !patterns.contains(&pattern) {
                    patterns.push(pattern);
                }
                break;
            }
            working.pop();
        }
    }
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::synth::BenchmarkProfile;
    use sim::rare::RareNetAnalysis;
    use sim::Simulator;

    #[test]
    fn k_largest_dedupes_and_sorts_by_size() {
        let sets = vec![
            vec![3, 1],
            vec![1, 3], // duplicate of the first after canonicalization
            vec![5, 2, 9],
            vec![2], // subset of {2,5,9}
            vec![7, 8, 4, 6],
            vec![],
        ];
        let picked = select_k_largest(&sets, 3);
        assert_eq!(picked.len(), 3);
        assert_eq!(picked[0], vec![4, 6, 7, 8]);
        assert_eq!(picked[1], vec![2, 5, 9]);
        assert_eq!(picked[2], vec![1, 3]);
    }

    #[test]
    fn k_larger_than_available_returns_everything_distinct() {
        let sets = vec![vec![1], vec![2], vec![1]];
        let picked = select_k_largest(&sets, 10);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn subsets_are_subsumed() {
        let sets = vec![vec![1, 2, 3], vec![2, 3], vec![3]];
        let picked = select_k_largest(&sets, 10);
        assert_eq!(picked, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn generated_patterns_activate_their_sets() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(14);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 3);
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        if graph.len() < 2 {
            return; // nothing meaningful to test on this seed
        }
        // Build greedy compatible sets as stand-ins for harvested RL sets.
        let mut sets = Vec::new();
        for start in 0..graph.len().min(6) {
            let mut set = vec![start];
            for j in 0..graph.len() {
                if graph.compatible_with_all(&set, j) {
                    set.push(j);
                }
            }
            sets.push(set);
        }
        let selected = select_k_largest(&sets, 4);
        let mut oracle = CircuitOracle::new(&nl);
        let patterns = generate_patterns(&mut oracle, &graph, &selected);
        assert!(!patterns.is_empty());
        let sim = Simulator::new(&nl);
        // Every generated pattern must activate at least one rare net at its
        // rare value (it was produced by justifying such targets).
        for p in &patterns {
            let values = sim.run(p);
            let hits = graph
                .rare_nets()
                .iter()
                .filter(|r| values.value(r.net) == r.rare_value)
                .count();
            assert!(hits > 0, "pattern {p} activates no rare net");
        }
    }

    #[test]
    fn duplicate_patterns_are_removed() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(14);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 3);
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        if graph.is_empty() {
            return;
        }
        let mut oracle = CircuitOracle::new(&nl);
        let sets = vec![vec![0], vec![0]];
        let patterns = generate_patterns(&mut oracle, &graph, &sets);
        assert_eq!(patterns.len(), 1);
    }
}
