//! Witness harvesting: mining a Monte-Carlo simulation run for patterns that
//! *prove* rare-net facts.
//!
//! The DETERRENT offline phase asks, for every unordered pair of rare nets,
//! whether one input pattern can drive both to their rare values at once.
//! The probability-estimation run already simulated thousands of random
//! patterns — any pattern under which two rare nets were both observed at
//! their rare values is a constructive *witness* of compatibility, making a
//! SAT query for that pair unnecessary. A [`WitnessBank`] stores, per target
//! `(net, rare_value)`, one bit per simulated pattern ("did this pattern
//! drive the net to that value?"), so a pairwise check is a word-wise AND
//! over the two rows.

use exec::{split_seed, Exec};
use netlist::{NetId, Netlist};

use crate::probability::SimTrace;
use crate::{PackedValues, Simulator, TestPattern};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the patterns behind a [`WitnessBank`] can be re-materialized, so a
/// witness *index* can be turned back into the concrete [`TestPattern`] that
/// produced it (and reused downstream instead of a SAT justification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSource {
    /// Uniformly random patterns: chunk `c` is the input-major packed batch
    /// drawn from `StdRng::seed_from_u64(split_seed(seed, c))` — one
    /// `next_u64` per scan input, exactly the stream
    /// [`crate::Simulator::run_random_batch_into`] simulates for
    /// [`crate::SignalProbabilities::estimate`].
    Random {
        /// Scan-input width of the patterns.
        width: usize,
        /// Master seed of the per-chunk streams.
        seed: u64,
    },
    /// Exhaustive enumeration: pattern `i` assigns scan input `b` the bit
    /// `(i >> b) & 1` — the stream
    /// [`crate::SignalProbabilities::exhaustive`] simulates.
    Exhaustive {
        /// Scan-input width of the patterns.
        width: usize,
    },
}

impl PatternSource {
    /// Materializes pattern `index` of the stream.
    #[must_use]
    pub fn pattern(&self, index: usize) -> TestPattern {
        match *self {
            PatternSource::Random { width, seed } => {
                use rand::RngCore;
                let mut rng = StdRng::seed_from_u64(split_seed(seed, (index / 64) as u64));
                let p = index % 64;
                (0..width).map(|_| (rng.next_u64() >> p) & 1 == 1).collect()
            }
            PatternSource::Exhaustive { width } => {
                (0..width).map(|b| (index >> b) & 1 == 1).collect()
            }
        }
    }
}

/// Per-target witness bitmaps harvested from a simulation run.
///
/// Row `t` has one bit per simulated pattern; bit set means the pattern drove
/// `targets[t].0` to `targets[t].1`. Padding bits of the final partial chunk
/// are always zero, so row intersections never produce false witnesses.
#[derive(Debug, Clone)]
pub struct WitnessBank {
    targets: Vec<(NetId, bool)>,
    num_chunks: usize,
    num_patterns: usize,
    /// Row-major: `rows[t * num_chunks + c]`.
    rows: Vec<u64>,
    /// How to re-materialize the underlying patterns, when known.
    source: Option<PatternSource>,
}

impl WitnessBank {
    /// Builds the bank for `targets` from a retained simulation trace —
    /// zero additional simulation work. The bank has no [`PatternSource`]
    /// (the trace does not say how its patterns were generated); attach one
    /// with [`WitnessBank::with_source`] to enable pattern materialization.
    #[must_use]
    pub fn from_trace(trace: &SimTrace, targets: &[(NetId, bool)]) -> Self {
        let num_chunks = trace.num_chunks();
        let mut rows = Vec::with_capacity(targets.len() * num_chunks);
        for &(net, value) in targets {
            for c in 0..num_chunks {
                let word = trace.word(c, net);
                let oriented = if value { word } else { !word };
                rows.push(oriented & trace.chunk_mask(c));
            }
        }
        Self {
            targets: targets.to_vec(),
            num_chunks,
            num_patterns: trace.num_patterns(),
            rows,
            source: None,
        }
    }

    /// Attaches the generator description of the underlying pattern stream,
    /// enabling [`WitnessBank::pattern`].
    #[must_use]
    pub fn with_source(mut self, source: PatternSource) -> Self {
        self.source = Some(source);
        self
    }

    /// Re-simulates the `num_patterns` random patterns generated from `seed`
    /// (the same per-chunk streams [`crate::SignalProbabilities::estimate`]
    /// uses) and harvests witnesses for `targets` only. This is the fallback
    /// when the original estimation trace was not retained; memory stays
    /// proportional to `targets.len()` rather than the netlist size.
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is zero.
    #[must_use]
    pub fn harvest(
        netlist: &Netlist,
        targets: &[(NetId, bool)],
        num_patterns: usize,
        seed: u64,
    ) -> Self {
        Self::harvest_with(netlist, targets, num_patterns, seed, &Exec::serial())
    }

    /// Like [`WitnessBank::harvest`], replaying the chunks in parallel on
    /// `exec`. Chunk streams are seed-split, so the bank is bit-identical at
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is zero.
    #[must_use]
    pub fn harvest_with(
        netlist: &Netlist,
        targets: &[(NetId, bool)],
        num_patterns: usize,
        seed: u64,
        exec: &Exec,
    ) -> Self {
        assert!(num_patterns > 0, "need at least one pattern");
        let width = netlist.num_scan_inputs();
        let num_chunks = num_patterns.div_ceil(64);
        let source = Some(PatternSource::Random { width, seed });
        if targets.is_empty() {
            // Nothing to harvest; skip the simulation replay entirely.
            return Self {
                targets: Vec::new(),
                num_chunks,
                num_patterns: num_chunks * 64,
                rows: Vec::new(),
                source,
            };
        }
        // Workers fill chunk-major blocks `local[k * targets + t]` for their
        // contiguous chunk ranges; the merge transposes into the row-major
        // bank layout in chunk order.
        let blocks = exec.par_ranges(num_chunks, |range| {
            let sim = Simulator::new(netlist);
            let mut packed = PackedValues::scratch();
            let mut local = vec![0u64; range.len() * targets.len()];
            for (k, c) in range.clone().enumerate() {
                let mut rng = StdRng::seed_from_u64(split_seed(seed, c as u64));
                sim.run_random_batch_into(&mut rng, &mut packed);
                for (t, &(net, value)) in targets.iter().enumerate() {
                    let word = packed.word(net);
                    local[k * targets.len() + t] = if value { word } else { !word };
                }
            }
            (range.start, local)
        });
        let mut rows = vec![0u64; targets.len() * num_chunks];
        for (start, local) in blocks {
            for (k, chunk_words) in local.chunks_exact(targets.len()).enumerate() {
                for (t, &word) in chunk_words.iter().enumerate() {
                    rows[t * num_chunks + start + k] = word;
                }
            }
        }
        Self {
            targets: targets.to_vec(),
            num_chunks,
            num_patterns: num_chunks * 64,
            rows,
            source,
        }
    }

    /// The harvested targets, in row order.
    #[must_use]
    pub fn targets(&self) -> &[(NetId, bool)] {
        &self.targets
    }

    /// Number of targets (rows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` when the bank holds no targets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of patterns each row covers.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of 64-pattern chunks per row.
    #[must_use]
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// All row words, row-major (`row(t)` is
    /// `raw_rows()[t * num_chunks .. (t + 1) * num_chunks]`).
    #[must_use]
    pub fn raw_rows(&self) -> &[u64] {
        &self.rows
    }

    /// Rebuilds a bank from its raw parts — the inverse of
    /// [`WitnessBank::targets`] / [`WitnessBank::num_chunks`] /
    /// [`WitnessBank::num_patterns`] / [`WitnessBank::raw_rows`] /
    /// [`WitnessBank::source`]. Exists so callers persisting an analysis
    /// (e.g. a disk-backed artifact cache) can round-trip it bit-exactly
    /// without a serde dependency.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != targets.len() * num_chunks`.
    #[must_use]
    pub fn from_raw_parts(
        targets: Vec<(NetId, bool)>,
        num_chunks: usize,
        num_patterns: usize,
        rows: Vec<u64>,
        source: Option<PatternSource>,
    ) -> Self {
        assert_eq!(
            rows.len(),
            targets.len() * num_chunks,
            "row words must be targets x chunks"
        );
        Self {
            targets,
            num_chunks,
            num_patterns,
            rows,
            source,
        }
    }

    /// The witness bitmap of target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn row(&self, t: usize) -> &[u64] {
        &self.rows[t * self.num_chunks..(t + 1) * self.num_chunks]
    }

    /// Whether any simulated pattern drove target `t` to its value — a
    /// constructive proof that the target is individually justifiable.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn has_witness(&self, t: usize) -> bool {
        self.row(t).iter().any(|&w| w != 0)
    }

    /// Number of simulated patterns witnessing target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn witness_count(&self, t: usize) -> u64 {
        self.row(t).iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Whether some single simulated pattern drove targets `a` and `b` to
    /// their values simultaneously — a constructive proof of pairwise
    /// compatibility requiring two ANDs per 64 patterns.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[must_use]
    pub fn pair_witnessed(&self, a: usize, b: usize) -> bool {
        self.row(a)
            .iter()
            .zip(self.row(b))
            .any(|(&x, &y)| x & y != 0)
    }

    /// Whether some single simulated pattern drove *every* target in `set` to
    /// its value at once (generalizes [`WitnessBank::pair_witnessed`]).
    #[must_use]
    pub fn set_witnessed(&self, set: &[usize]) -> bool {
        self.set_witness_index(set).is_some()
    }

    /// The index of the first simulated pattern that drove *every* target in
    /// `set` to its value at once, or `None` when no pattern did (or `set`
    /// is empty). Combine with [`WitnessBank::pattern`] to obtain the
    /// concrete pattern and skip a SAT justification for the set.
    #[must_use]
    pub fn set_witness_index(&self, set: &[usize]) -> Option<usize> {
        if set.is_empty() {
            return None;
        }
        (0..self.num_chunks).find_map(|c| {
            let joint = set
                .iter()
                .fold(u64::MAX, |acc, &t| acc & self.rows[t * self.num_chunks + c]);
            (joint != 0).then(|| c * 64 + joint.trailing_zeros() as usize)
        })
    }

    /// How the underlying pattern stream can be re-materialized, if known.
    #[must_use]
    pub fn source(&self) -> Option<PatternSource> {
        self.source
    }

    /// Materializes simulated pattern `index`, when the bank knows its
    /// [`PatternSource`] and `index` is in range.
    #[must_use]
    pub fn pattern(&self, index: usize) -> Option<TestPattern> {
        if index >= self.num_patterns {
            return None;
        }
        Some(self.source?.pattern(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalProbabilities;
    use netlist::samples;

    #[test]
    fn trace_and_harvest_agree_on_random_run() {
        let nl = samples::majority5();
        let targets: Vec<(NetId, bool)> = nl
            .internal_nets()
            .into_iter()
            .map(|id| (id, true))
            .collect();
        let (_, trace) = SignalProbabilities::estimate_retaining(&nl, 512, 11);
        let from_trace = WitnessBank::from_trace(&trace, &targets);
        let harvested = WitnessBank::harvest(&nl, &targets, 512, 11);
        assert_eq!(from_trace.num_patterns(), harvested.num_patterns());
        for t in 0..targets.len() {
            assert_eq!(from_trace.row(t), harvested.row(t), "target {t}");
        }
    }

    #[test]
    fn rare_chain_witness_counts_match_theory() {
        let nl = samples::rare_chain(4);
        let root = nl.net_by_name("and3").unwrap();
        let (_, trace) = SignalProbabilities::exhaustive_retaining(&nl);
        let bank = WitnessBank::from_trace(&trace, &[(root, true), (root, false)]);
        // Exactly one of the 16 exhaustive patterns sets the AND-chain root.
        assert_eq!(bank.witness_count(0), 1);
        assert_eq!(bank.witness_count(1), 15);
        assert!(bank.has_witness(0));
        // The same pattern cannot drive the root to 1 and 0 at once.
        assert!(!bank.pair_witnessed(0, 1));
    }

    #[test]
    fn partial_chunk_padding_is_masked() {
        // rare_chain(3) has 3 inputs -> 8 exhaustive patterns, one partial
        // chunk. Inverted rows must not leak witnesses from the padding bits.
        let nl = samples::rare_chain(3);
        let root = nl.net_by_name("and2").unwrap();
        let (_, trace) = SignalProbabilities::exhaustive_retaining(&nl);
        let bank = WitnessBank::from_trace(&trace, &[(root, false)]);
        assert_eq!(bank.witness_count(0), 7, "7 of 8 patterns give root=0");
    }

    #[test]
    fn parallel_harvest_is_bit_identical_to_serial() {
        let nl = netlist::synth::BenchmarkProfile::c2670()
            .scaled(10)
            .generate(6);
        let targets: Vec<(NetId, bool)> = nl
            .internal_nets()
            .into_iter()
            .take(20)
            .map(|id| (id, true))
            .collect();
        let serial = WitnessBank::harvest(&nl, &targets, 1000, 13);
        for threads in [2, 5] {
            let parallel = WitnessBank::harvest_with(&nl, &targets, 1000, 13, &Exec::new(threads));
            for t in 0..targets.len() {
                assert_eq!(serial.row(t), parallel.row(t), "{threads} threads, row {t}");
            }
        }
    }

    #[test]
    fn materialized_witness_patterns_activate_their_sets() {
        let nl = netlist::synth::BenchmarkProfile::c2670()
            .scaled(15)
            .generate(4);
        let targets: Vec<(NetId, bool)> = nl
            .internal_nets()
            .into_iter()
            .take(12)
            .map(|id| (id, true))
            .collect();
        let bank = WitnessBank::harvest(&nl, &targets, 512, 21);
        let sim = crate::Simulator::new(&nl);
        let mut verified = 0;
        for a in 0..targets.len() {
            for b in (a + 1)..targets.len() {
                if let Some(idx) = bank.set_witness_index(&[a, b]) {
                    let pattern = bank.pattern(idx).expect("harvested banks have a source");
                    assert!(
                        sim.activates(&pattern, &[targets[a], targets[b]]),
                        "witness {idx} must drive targets {a} and {b}"
                    );
                    verified += 1;
                }
            }
        }
        assert!(verified > 0, "expected at least one joint witness");
        assert!(bank.pattern(bank.num_patterns()).is_none());
    }

    #[test]
    fn exhaustive_source_materializes_index_bits() {
        let nl = samples::rare_chain(4);
        let root = nl.net_by_name("and3").unwrap();
        let (_, trace) = SignalProbabilities::exhaustive_retaining(&nl);
        let bank = WitnessBank::from_trace(&trace, &[(root, true)])
            .with_source(PatternSource::Exhaustive { width: 4 });
        let idx = bank
            .set_witness_index(&[0])
            .expect("all-ones witnesses root");
        assert_eq!(idx, 15, "only pattern 1111 sets the AND-chain root");
        let pattern = bank.pattern(idx).unwrap();
        assert_eq!(pattern.to_string(), "1111");
        // Without a source the bank cannot materialize.
        let sourceless = WitnessBank::from_trace(&trace, &[(root, true)]);
        assert!(sourceless.pattern(idx).is_none());
    }

    #[test]
    fn pair_witnesses_prove_compatibility() {
        let nl = samples::c17();
        let (_, trace) = SignalProbabilities::exhaustive_retaining(&nl);
        let g10 = nl.net_by_name("G10").unwrap();
        let g1 = nl.net_by_name("G1").unwrap();
        let bank = WitnessBank::from_trace(&trace, &[(g10, false), (g1, false), (g1, true)]);
        // G10 = NAND(G1, G3) = 0 forces G1 = 1: no joint witness with G1=0,
        // but plenty with G1=1.
        assert!(!bank.pair_witnessed(0, 1));
        assert!(bank.pair_witnessed(0, 2));
        assert!(bank.set_witnessed(&[0, 2]));
        assert!(!bank.set_witnessed(&[]));
    }
}
