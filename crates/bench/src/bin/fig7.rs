//! Figure 7: impact of the rareness threshold (0.10–0.14) on the number of
//! rare nets and on DETERRENT's trigger coverage for c6288, plus the
//! threshold-transfer experiment (train at 0.14, evaluate at 0.10).
//!
//! Each θ is one session cell over a single shared artifact store:
//! Monte-Carlo probability estimation runs exactly once for the whole sweep
//! (the estimate artifact is keyed without θ), thresholding and the
//! compatibility graph run exactly once per θ (all asserted via the store
//! counters), and the transfer experiment reuses the loose-θ patterns with
//! no extra training.

use deterrent_bench::{print_store_summary, HarnessOptions};
use deterrent_core::DeterrentSession;
use netlist::synth::BenchmarkProfile;
use trojan::{CoverageEvaluator, TrojanGenerator};

fn main() {
    let options = HarnessOptions::from_args();
    let profile = BenchmarkProfile::c6288();
    let netlist = options.netlist(&profile);
    println!(
        "Figure 7 — rareness-threshold sweep on {} ({} gates)\n",
        profile.name,
        netlist.num_logic_gates()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>18} {:>14}",
        "threshold", "#rare nets", "#Trojans", "DETERRENT cov (%)", "test length"
    );

    let store = options.store();
    let thresholds = [0.10, 0.11, 0.12, 0.13, 0.14];
    let mut cells = Vec::new();
    for &theta in &thresholds {
        let config = options.deterrent_config().with_threshold(theta);
        let mut session = DeterrentSession::with_store(&netlist, config, store.clone());
        let rare = session.analyze();
        let mut generator = TrojanGenerator::new(&netlist, options.seed ^ (theta * 1000.0) as u64);
        let trojans = generator.sample_many(
            rare.analysis(),
            options.trigger_width.min(4),
            options.num_trojans,
        );
        let result = session.run_from(&rare);
        let coverage = if trojans.is_empty() {
            f64::NAN
        } else {
            CoverageEvaluator::new(&netlist, trojans.clone())
                .evaluate(&result.patterns)
                .coverage_percent()
        };
        println!(
            "{theta:>10.2} {:>12} {:>12} {coverage:>18.1} {:>14}",
            rare.len(),
            trojans.len(),
            result.test_length()
        );
        cells.push((theta, rare, result));
    }

    // One probability estimation for the whole sweep (θ never enters the
    // estimate key), one cheap thresholding and one graph per θ, never
    // more: every θ is a distinct rare/graph cache key, and nothing in the
    // sweep recomputed a stage. On a warm persistent cache each of those
    // enters the store as a disk hit instead of a computation.
    let counters = store.counters();
    assert_eq!(
        counters.estimate.misses + counters.estimate.disk_hits,
        1,
        "the θ-sweep must pay for Monte-Carlo estimation exactly once"
    );
    assert_eq!(
        counters.analyze.misses + counters.analyze.disk_hits,
        thresholds.len() as u64
    );
    assert_eq!(
        counters.build_graph.misses + counters.build_graph.disk_hits,
        thresholds.len() as u64
    );
    assert_eq!(counters.build_graph.hits, 0);
    println!("\n(one estimation for the sweep, one thresholding + one graph per θ ✓)");

    // Threshold transfer: patterns generated from the loosest threshold
    // evaluated against Trojans built from the tightest one. The tight
    // analysis is reused from the sweep — no re-estimation.
    if let (Some((_, tight_rare, _)), Some((_, _, loose_result))) = (cells.first(), cells.last()) {
        let mut generator = TrojanGenerator::new(&netlist, options.seed ^ 0x0f14);
        let trojans = generator.sample_many(
            tight_rare.analysis(),
            options.trigger_width.min(4),
            options.num_trojans,
        );
        if !trojans.is_empty() {
            let coverage = CoverageEvaluator::new(&netlist, trojans)
                .evaluate(&loose_result.patterns)
                .coverage_percent();
            println!(
                "\nTransfer: patterns trained at threshold 0.14 achieve {coverage:.1}% coverage \
                 against threshold-0.10 triggers (paper reports 99%)."
            );
        }
    }
    println!(
        "\nShape to verify: the number of rare nets grows with the threshold while \
         DETERRENT's coverage stays within a few percent."
    );
    print_store_summary(&store);
    if options.expect_warm {
        deterrent_bench::assert_warm(&store);
    }
}
