//! Monte-Carlo signal-probability estimation.
//!
//! The random pattern stream is defined **per 64-pattern chunk**: chunk `c`
//! of master seed `s` is generated from its own RNG seeded with
//! [`exec::split_seed`]`(s, c)`. Chunks are therefore independent work units
//! and the estimate is bit-identical whether the chunks are simulated on one
//! thread or many ([`SignalProbabilities::estimate_with`]).

use exec::{split_seed, Exec};
use netlist::{NetId, Netlist};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{PackedValues, Simulator, TestPattern};

/// Estimated probability of each net being logic 1 under uniformly random
/// scan-input patterns.
///
/// This is the quantity the rareness threshold of the paper is defined over:
/// a net is *rare* when `min(p, 1 - p)` falls below the threshold.
#[derive(Debug, Clone)]
pub struct SignalProbabilities {
    prob_one: Vec<f64>,
    num_patterns: usize,
}

/// The packed per-net simulation words of a probability-estimation run.
///
/// Layout is chunk-major: `words[chunk * num_nets + net]` holds the values of
/// `net` for the (up to 64) patterns of `chunk`, one bit per pattern. The
/// trace lets downstream passes mine the Monte-Carlo run for *witnesses* —
/// patterns observed to drive a net (or several nets at once) to a value —
/// without re-simulating (see [`crate::witness::WitnessBank`]).
#[derive(Debug, Clone)]
pub struct SimTrace {
    num_nets: usize,
    words: Vec<u64>,
    chunk_lens: Vec<usize>,
}

impl SimTrace {
    /// Number of 64-pattern chunks.
    #[must_use]
    pub fn num_chunks(&self) -> usize {
        self.chunk_lens.len()
    }

    /// Number of patterns in `chunk` (64 except possibly the last).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    #[must_use]
    pub fn chunk_len(&self, chunk: usize) -> usize {
        self.chunk_lens[chunk]
    }

    /// Bit mask selecting the valid pattern bits of `chunk`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    #[must_use]
    pub fn chunk_mask(&self, chunk: usize) -> u64 {
        let len = self.chunk_lens[chunk];
        if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        }
    }

    /// The packed word of `net` in `chunk`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` or `net` is out of range.
    #[must_use]
    pub fn word(&self, chunk: usize, net: NetId) -> u64 {
        self.words[chunk * self.num_nets + net.index()]
    }

    /// Total number of simulated patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.chunk_lens.iter().sum()
    }

    fn push_chunk(&mut self, words: &[u64], len: usize) {
        self.words.extend_from_slice(words);
        self.chunk_lens.push(len);
    }

    fn new(num_nets: usize) -> Self {
        Self {
            num_nets,
            words: Vec::new(),
            chunk_lens: Vec::new(),
        }
    }
}

impl SignalProbabilities {
    /// Estimates signal probabilities by simulating `num_patterns` uniformly
    /// random patterns (rounded up to a multiple of 64) generated from `seed`,
    /// on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is zero.
    #[must_use]
    pub fn estimate(netlist: &Netlist, num_patterns: usize, seed: u64) -> Self {
        Self::estimate_with(netlist, num_patterns, seed, &Exec::serial())
    }

    /// Like [`SignalProbabilities::estimate`], but simulates the 64-pattern
    /// chunks in parallel on `exec`. The result is **bit-identical** at any
    /// thread count because each chunk's patterns come from an independent
    /// seed-split RNG stream and the per-chunk one-counts merge by integer
    /// addition.
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is zero.
    #[must_use]
    pub fn estimate_with(netlist: &Netlist, num_patterns: usize, seed: u64, exec: &Exec) -> Self {
        Self::run_random(netlist, num_patterns, seed, false, exec).0
    }

    /// Like [`SignalProbabilities::estimate`], but also returns the full
    /// [`SimTrace`] of packed words so the run can be mined for witnesses
    /// instead of being discarded.
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is zero.
    #[must_use]
    pub fn estimate_retaining(
        netlist: &Netlist,
        num_patterns: usize,
        seed: u64,
    ) -> (Self, SimTrace) {
        Self::estimate_retaining_with(netlist, num_patterns, seed, &Exec::serial())
    }

    /// Like [`SignalProbabilities::estimate_retaining`], parallelized over
    /// `exec` with the same bit-identical-at-any-thread-count guarantee
    /// (trace chunks are merged in chunk order).
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is zero.
    #[must_use]
    pub fn estimate_retaining_with(
        netlist: &Netlist,
        num_patterns: usize,
        seed: u64,
        exec: &Exec,
    ) -> (Self, SimTrace) {
        let (probs, trace) = Self::run_random(netlist, num_patterns, seed, true, exec);
        (probs, trace.expect("trace retention was requested"))
    }

    fn run_random(
        netlist: &Netlist,
        num_patterns: usize,
        seed: u64,
        retain: bool,
        exec: &Exec,
    ) -> (Self, Option<SimTrace>) {
        assert!(num_patterns > 0, "need at least one pattern");
        let chunks = num_patterns.div_ceil(64);
        let n = netlist.num_gates();
        let total = chunks * 64;
        // Each worker simulates a contiguous range of chunks with reusable
        // scratch, returning its partial one-counts and (optionally) the raw
        // packed words of its chunks.
        let blocks = exec.par_ranges(chunks, |range| {
            let sim = Simulator::new(netlist);
            let mut packed = PackedValues::scratch();
            let mut ones = vec![0u64; n];
            let mut words: Vec<u64> = Vec::with_capacity(if retain { range.len() * n } else { 0 });
            for c in range {
                let mut rng = StdRng::seed_from_u64(split_seed(seed, c as u64));
                sim.run_random_batch_into(&mut rng, &mut packed);
                for (id, _) in netlist.iter() {
                    ones[id.index()] += u64::from(packed.count_ones(id));
                }
                if retain {
                    words.extend_from_slice(packed.words());
                }
            }
            (ones, words)
        });
        let mut ones = vec![0u64; n];
        let mut trace = retain.then(|| SimTrace::new(n));
        for (block_ones, block_words) in blocks {
            for (acc, part) in ones.iter_mut().zip(&block_ones) {
                *acc += part;
            }
            if let Some(trace) = trace.as_mut() {
                for chunk_words in block_words.chunks_exact(n) {
                    trace.push_chunk(chunk_words, 64);
                }
            }
        }
        let prob_one = ones.iter().map(|&c| c as f64 / total as f64).collect();
        (
            Self {
                prob_one,
                num_patterns: total,
            },
            trace,
        )
    }

    /// Computes exact probabilities for every net by exhaustive enumeration of
    /// all input combinations. Only feasible for small circuits (≤ 20 scan
    /// inputs); used as a reference in tests.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 24 scan inputs.
    #[must_use]
    pub fn exhaustive(netlist: &Netlist) -> Self {
        Self::run_exhaustive(netlist, false).0
    }

    /// Like [`SignalProbabilities::exhaustive`], but also returns the
    /// [`SimTrace`] of the enumeration.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 24 scan inputs.
    #[must_use]
    pub fn exhaustive_retaining(netlist: &Netlist) -> (Self, SimTrace) {
        let (probs, trace) = Self::run_exhaustive(netlist, true);
        (probs, trace.expect("trace retention was requested"))
    }

    fn run_exhaustive(netlist: &Netlist, retain: bool) -> (Self, Option<SimTrace>) {
        let width = netlist.num_scan_inputs();
        assert!(width <= 24, "exhaustive enumeration limited to 24 inputs");
        let sim = Simulator::new(netlist);
        let total = 1usize << width;
        let n = netlist.num_gates();
        let mut ones = vec![0u64; n];
        let mut trace = retain.then(|| SimTrace::new(n));
        let mut batch = Vec::with_capacity(64);
        let mut processed = 0usize;
        while processed < total {
            batch.clear();
            for code in processed..(processed + 64).min(total) {
                let bits: Vec<bool> = (0..width).map(|i| (code >> i) & 1 == 1).collect();
                batch.push(TestPattern::new(bits));
            }
            let packed = sim.run_batch(&batch);
            for (id, _) in netlist.iter() {
                ones[id.index()] += u64::from(packed.count_ones(id));
            }
            if let Some(trace) = trace.as_mut() {
                trace.push_chunk(packed.words(), packed.batch_len());
            }
            processed += batch.len();
        }
        (
            Self {
                prob_one: ones.iter().map(|&c| c as f64 / total as f64).collect(),
                num_patterns: total,
            },
            trace,
        )
    }

    /// Probability that `net` evaluates to logic 1.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the analysed netlist.
    #[must_use]
    pub fn prob_one(&self, net: NetId) -> f64 {
        self.prob_one[net.index()]
    }

    /// Probability that `net` evaluates to logic 0.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the analysed netlist.
    #[must_use]
    pub fn prob_zero(&self, net: NetId) -> f64 {
        1.0 - self.prob_one[net.index()]
    }

    /// The probability of the *rarer* of the two logic values of `net`,
    /// together with that value. This is what rareness thresholds compare
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the analysed netlist.
    #[must_use]
    pub fn rare_value(&self, net: NetId) -> (bool, f64) {
        let p1 = self.prob_one[net.index()];
        if p1 <= 0.5 {
            (true, p1)
        } else {
            (false, 1.0 - p1)
        }
    }

    /// Number of patterns the estimate is based on.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// All `prob(net = 1)` values indexed by [`NetId`].
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.prob_one
    }

    /// Rebuilds an estimate from its raw parts — the inverse of
    /// [`SignalProbabilities::as_slice`] + [`SignalProbabilities::num_patterns`].
    /// Exists so callers persisting an analysis (e.g. a disk-backed artifact
    /// cache) can round-trip it bit-exactly without a serde dependency.
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is zero.
    #[must_use]
    pub fn from_raw_parts(prob_one: Vec<f64>, num_patterns: usize) -> Self {
        assert!(num_patterns > 0, "need at least one pattern");
        Self {
            prob_one,
            num_patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn rare_chain_probabilities_match_theory() {
        let nl = samples::rare_chain(4);
        let exact = SignalProbabilities::exhaustive(&nl);
        let root = nl.net_by_name("and3").unwrap();
        assert!((exact.prob_one(root) - 1.0 / 16.0).abs() < 1e-12);
        let (value, p) = exact.rare_value(root);
        assert!(value);
        assert!((p - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn estimate_converges_to_exact() {
        let nl = samples::majority5();
        let exact = SignalProbabilities::exhaustive(&nl);
        let est = SignalProbabilities::estimate(&nl, 20_000, 7);
        for (id, _) in nl.iter() {
            assert!(
                (exact.prob_one(id) - est.prob_one(id)).abs() < 0.03,
                "net {id}: exact {} vs est {}",
                exact.prob_one(id),
                est.prob_one(id)
            );
        }
    }

    #[test]
    fn inputs_are_unbiased() {
        let nl = samples::c17();
        let est = SignalProbabilities::estimate(&nl, 4096, 3);
        for &pi in nl.primary_inputs() {
            assert!((est.prob_one(pi) - 0.5).abs() < 0.05);
        }
        assert_eq!(est.num_patterns(), 4096);
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        let nl = netlist::synth::BenchmarkProfile::c2670()
            .scaled(10)
            .generate(2);
        let serial = SignalProbabilities::estimate(&nl, 2048, 11);
        for threads in [2, 3, 8] {
            let exec = Exec::new(threads);
            let parallel = SignalProbabilities::estimate_with(&nl, 2048, 11, &exec);
            assert_eq!(serial.as_slice(), parallel.as_slice(), "{threads} threads");
        }
        let (p1, t1) = SignalProbabilities::estimate_retaining(&nl, 1024, 5);
        let (p4, t4) = SignalProbabilities::estimate_retaining_with(&nl, 1024, 5, &Exec::new(4));
        assert_eq!(p1.as_slice(), p4.as_slice());
        assert_eq!(t1.num_chunks(), t4.num_chunks());
        for c in 0..t1.num_chunks() {
            for (id, _) in nl.iter() {
                assert_eq!(t1.word(c, id), t4.word(c, id), "chunk {c} net {id}");
            }
        }
    }

    #[test]
    fn prob_zero_is_complement() {
        let nl = samples::c17();
        let est = SignalProbabilities::estimate(&nl, 512, 3);
        for (id, _) in nl.iter() {
            assert!((est.prob_one(id) + est.prob_zero(id) - 1.0).abs() < 1e-12);
        }
    }
}
