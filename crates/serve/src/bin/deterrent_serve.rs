//! `deterrent-serve` — the resident campaign daemon.
//!
//! Binds a Unix-domain socket, keeps one worker pool and one bounded
//! artifact cache warm, and runs campaign jobs submitted by
//! `deterrent-submit` (or anything speaking the frame protocol in
//! `serve::protocol`). Stop it with SIGTERM/SIGINT; queued jobs drain for
//! up to `--drain-timeout-secs`, then the socket file is removed and the
//! daemon exits `0`.
//!
//! Flags:
//!
//! | flag | meaning | default |
//! |---|---|---|
//! | `--socket PATH` | socket to listen on (else `DETERRENT_SOCKET`) | required |
//! | `--threads N` | pool workers (0 = `DETERRENT_THREADS` / cores) | `0` |
//! | `--queue-cap N` | max queued (not yet running) jobs | `64` |
//! | `--drain-timeout-secs F` | post-signal drain budget | `30` |
//! | `--cache-dir DIR` | persistent cache (else `DETERRENT_CACHE_DIR`) | memory-only |
//! | `--cache-max-bytes N[k\|m\|g]` | cache budget (else `DETERRENT_CACHE_MAX_BYTES`) | unbounded |
//! | `--per-stage-max N[k\|m\|g]` | per-stage-directory budget | unbounded |
//! | `--slim-policy` | slim train-stage artifacts | full |
//! | `--trace-out FILE` | JSONL trace of every job (else `DETERRENT_TRACE_OUT`) | off |
//! | `--quiet` | suppress the `[serve]` stderr log | off |
//!
//! Exit codes: `0` after a clean drain, `2` on flag or socket errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use deterrent_core::{parse_bytes, ArtifactStore, DeterrentConfig};
use serve::{signal, Daemon, DaemonConfig};
use telemetry::{JsonlSink, TraceSink, TRACE_OUT_ENV_VAR};

struct Args {
    socket: Option<PathBuf>,
    threads: usize,
    queue_cap: usize,
    drain_timeout: Duration,
    cache_dir: Option<String>,
    cache_max_bytes: Option<u64>,
    per_stage_max: Option<u64>,
    slim_policy: bool,
    trace_out: Option<PathBuf>,
    quiet: bool,
}

impl Default for Args {
    fn default() -> Self {
        let defaults = DaemonConfig::default();
        Self {
            socket: None,
            threads: defaults.threads,
            queue_cap: defaults.queue_capacity,
            drain_timeout: defaults.drain_timeout,
            cache_dir: None,
            cache_max_bytes: None,
            per_stage_max: None,
            slim_policy: false,
            trace_out: None,
            quiet: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value(&mut i)?)),
            "--threads" => args.threads = value(&mut i)?.parse().map_err(|_| "bad --threads")?,
            "--queue-cap" => {
                args.queue_cap = value(&mut i)?.parse().map_err(|_| "bad --queue-cap")?;
            }
            "--drain-timeout-secs" => {
                let secs: f64 = value(&mut i)?
                    .parse()
                    .map_err(|_| "bad --drain-timeout-secs")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("bad --drain-timeout-secs (finite, non-negative)".into());
                }
                args.drain_timeout = Duration::from_secs_f64(secs);
            }
            "--cache-dir" => args.cache_dir = Some(value(&mut i)?),
            "--cache-max-bytes" => {
                args.cache_max_bytes =
                    Some(parse_bytes(&value(&mut i)?).ok_or("bad --cache-max-bytes")?);
            }
            "--per-stage-max" => {
                args.per_stage_max =
                    Some(parse_bytes(&value(&mut i)?).ok_or("bad --per-stage-max")?);
            }
            "--slim-policy" => args.slim_policy = true,
            "--trace-out" => args.trace_out = Some(PathBuf::from(value(&mut i)?)),
            "--quiet" => args.quiet = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if args.trace_out.is_none() {
        if let Ok(path) = std::env::var(TRACE_OUT_ENV_VAR) {
            if !path.trim().is_empty() {
                args.trace_out = Some(PathBuf::from(path));
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("deterrent-serve: {message}");
            return ExitCode::from(2);
        }
    };
    let Some(socket) = serve::resolve_socket(args.socket) else {
        eprintln!("deterrent-serve: no socket given (use --socket or DETERRENT_SOCKET)");
        return ExitCode::from(2);
    };

    // Cache resolution mirrors the one-shot CLI: flag → env → memory-only.
    // The config object is only the resolver here — each job builds its
    // own pipeline config from its submitted plan.
    let mut base = DeterrentConfig::fast_preset();
    if let Some(dir) = &args.cache_dir {
        base = base.with_cache_dir(dir);
    }
    if let Some(max_bytes) = args.cache_max_bytes {
        base = base.with_cache_max_bytes(max_bytes);
    }
    base.cache_policy.per_stage_max = args.per_stage_max;
    base.cache_policy.slim_policy = args.slim_policy;
    let store = match base.resolved_cache_dir() {
        Some(dir) => {
            ArtifactStore::with_disk_policy_faults(dir, base.resolved_cache_policy(), None)
        }
        None => ArtifactStore::new(),
    };

    let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
    if let Some(path) = &args.trace_out {
        match JsonlSink::create(path) {
            Ok(sink) => sinks.push(Arc::new(sink)),
            Err(e) => {
                eprintln!("deterrent-serve: cannot create {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let daemon = Daemon::new(
        DaemonConfig {
            socket,
            threads: args.threads,
            queue_capacity: args.queue_cap,
            drain_timeout: args.drain_timeout,
            quiet: args.quiet,
        },
        store,
        sinks,
    );
    let stop = signal::install_stop_handler();
    match daemon.run(stop) {
        Ok(()) => {
            if !args.quiet {
                eprint!("{}", daemon.store().summary());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("deterrent-serve: {e}");
            ExitCode::from(2)
        }
    }
}
