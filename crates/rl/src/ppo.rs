//! Proximal Policy Optimization with clipped surrogate objective.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Adam, MaskedCategorical, Mlp};

/// Hyper-parameters of the PPO trainer.
///
/// The defaults follow the "default parameters" the paper refers to; the two
/// knobs it explicitly tunes for exploration boosting (Section 3.4) are
/// [`entropy_coef`](Self::entropy_coef) (`c_ε`, set to 1.0 for boosted
/// exploration) and [`gae_lambda`](Self::gae_lambda) (`λ`, set to 0.99).
#[derive(Debug, Clone, PartialEq)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE smoothing parameter λ.
    pub gae_lambda: f64,
    /// Clipping radius ε of the surrogate objective.
    pub clip_epsilon: f64,
    /// Entropy-loss coefficient `c_ε`.
    pub entropy_coef: f64,
    /// Value-loss coefficient `c_v`.
    pub value_coef: f64,
    /// Adam learning rate for both networks.
    pub learning_rate: f64,
    /// Gradient epochs per update.
    pub epochs: usize,
    /// Hidden layer sizes of the policy and value networks.
    pub hidden_sizes: Vec<usize>,
    /// Number of stored transitions that triggers an update.
    pub batch_size: usize,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_epsilon: 0.2,
            entropy_coef: 0.01,
            value_coef: 0.5,
            learning_rate: 3e-3,
            epochs: 4,
            hidden_sizes: vec![64, 64],
            batch_size: 256,
        }
    }
}

impl PpoConfig {
    /// The paper's "boosted exploration" variant: entropy coefficient 1.0 and
    /// GAE λ = 0.99 (Section 3.4).
    #[must_use]
    pub fn boosted_exploration() -> Self {
        Self {
            entropy_coef: 1.0,
            gae_lambda: 0.99,
            ..Self::default()
        }
    }
}

/// One environment transition stored for learning.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation before the action.
    pub state: Vec<f64>,
    /// Action mask active at the time (empty = all actions allowed).
    pub mask: Vec<bool>,
    /// Chosen action.
    pub action: usize,
    /// Reward received.
    pub reward: f64,
    /// Whether the episode terminated after this step.
    pub done: bool,
    /// Log-probability of the action under the behaviour policy.
    pub log_prob: f64,
    /// Value estimate of the state under the behaviour policy.
    pub value: f64,
}

/// Storage for collected transitions plus GAE(λ) post-processing.
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a transition.
    pub fn push(&mut self, transition: Transition) {
        self.transitions.push(transition);
    }

    /// Number of stored transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` if no transitions are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Removes all transitions.
    pub fn clear(&mut self) {
        self.transitions.clear();
    }

    /// The stored transitions.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Computes GAE(λ) advantages and discounted returns.
    ///
    /// Episodes are delimited by the `done` flag; the value after a terminal
    /// step is treated as zero, and the buffer is assumed to end on an episode
    /// boundary (the trainer only updates at episode ends).
    #[must_use]
    pub fn advantages_and_returns(&self, gamma: f64, lambda: f64) -> (Vec<f64>, Vec<f64>) {
        let n = self.transitions.len();
        let mut advantages = vec![0.0; n];
        let mut gae = 0.0;
        for i in (0..n).rev() {
            let t = &self.transitions[i];
            let next_value = if t.done || i + 1 == n {
                0.0
            } else {
                self.transitions[i + 1].value
            };
            if t.done {
                gae = 0.0;
            }
            let delta = t.reward + gamma * next_value - t.value;
            gae = delta + gamma * lambda * if t.done { 0.0 } else { gae };
            advantages[i] = gae;
        }
        let returns: Vec<f64> = advantages
            .iter()
            .zip(self.transitions.iter())
            .map(|(a, t)| a + t.value)
            .collect();
        (advantages, returns)
    }
}

/// Loss components of one PPO update, mirroring the decomposition in the
/// paper: `l = l_π + c_ε · l_ε + c_v · l_v`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PpoLosses {
    /// Clipped-surrogate policy loss `l_π`.
    pub policy_loss: f64,
    /// Entropy loss `l_ε` (negative mean entropy).
    pub entropy_loss: f64,
    /// Value loss `l_v` (mean squared error).
    pub value_loss: f64,
    /// Total weighted loss.
    pub total_loss: f64,
}

/// Persisted state of one [`Adam`] optimizer inside a [`PolicySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdamSnapshot {
    /// Learning rate at snapshot time.
    pub learning_rate: f64,
    /// First-moment vector `m`.
    pub m: Vec<f64>,
    /// Second-moment vector `v`.
    pub v: Vec<f64>,
    /// Update steps performed.
    pub steps: u64,
}

impl AdamSnapshot {
    fn of(adam: &Adam) -> Self {
        let (m, v) = adam.moments();
        Self {
            learning_rate: adam.learning_rate(),
            m: m.to_vec(),
            v: v.to_vec(),
            steps: adam.steps(),
        }
    }

    /// A snapshot with zeroed moment vectors of length `num_params` — what
    /// a *slim* persisted snapshot restores to. Zeroed moments change
    /// nothing for frozen-policy use (the optimizer never steps); continued
    /// training would restart its moment estimates, which is why slim
    /// persistence is opt-in.
    #[must_use]
    pub fn zeroed(learning_rate: f64, num_params: usize, steps: u64) -> Self {
        Self {
            learning_rate,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
            steps,
        }
    }

    fn restore(&self) -> Adam {
        Adam::from_raw_state(
            self.learning_rate,
            self.m.clone(),
            self.v.clone(),
            self.steps,
        )
    }
}

/// A frozen, plain-data snapshot of a [`PpoTrainer`]: everything needed to
/// reconstruct the trained agent for greedy/frozen-policy use and for
/// continued optimization — network weights, optimizer moments, step/update
/// counters, and the loss history.
///
/// Deliberately **not** captured: the in-flight [`RolloutBuffer`] (training
/// rounds always learn from freshly collected episodes) and the
/// action-sampling RNG state ([`PpoTrainer::from_snapshot`] reseeds it).
/// Frozen-policy evaluation ([`PpoTrainer::best_action`],
/// [`PpoTrainer::policy_step`]) is therefore bit-identical between the
/// original and a restored trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySnapshot {
    /// Hyper-parameters the trainer was built with.
    pub config: PpoConfig,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Environment steps observed.
    pub total_steps: u64,
    /// Gradient updates performed.
    pub total_updates: u64,
    /// `(steps, losses)` history of every update.
    pub loss_history: Vec<(u64, PpoLosses)>,
    /// Layer sizes of the policy network (input first).
    pub policy_layer_sizes: Vec<usize>,
    /// Flat policy parameters ([`crate::Mlp::parameters`] order).
    pub policy_params: Vec<f64>,
    /// Layer sizes of the value network (input first).
    pub value_layer_sizes: Vec<usize>,
    /// Flat value parameters ([`crate::Mlp::parameters`] order).
    pub value_params: Vec<f64>,
    /// Policy optimizer state.
    pub policy_opt: AdamSnapshot,
    /// Value optimizer state.
    pub value_opt: AdamSnapshot,
}

impl PolicySnapshot {
    /// A slimmed copy for compact persistence: the Adam moment vectors are
    /// zeroed (see [`AdamSnapshot::zeroed`]) and the loss history keeps
    /// only its `keep_losses` most recent entries. Frozen-policy behaviour
    /// of a trainer restored from the slim copy is bit-identical to the
    /// full one — network weights, step counters, and configuration are
    /// untouched; only continued-training momentum and the older loss
    /// curve are lost.
    #[must_use]
    pub fn slimmed(&self, keep_losses: usize) -> Self {
        let tail = self.loss_history.len().saturating_sub(keep_losses);
        Self {
            config: self.config.clone(),
            num_actions: self.num_actions,
            total_steps: self.total_steps,
            total_updates: self.total_updates,
            loss_history: self.loss_history[tail..].to_vec(),
            policy_layer_sizes: self.policy_layer_sizes.clone(),
            policy_params: self.policy_params.clone(),
            value_layer_sizes: self.value_layer_sizes.clone(),
            value_params: self.value_params.clone(),
            policy_opt: AdamSnapshot::zeroed(
                self.policy_opt.learning_rate,
                self.policy_opt.m.len(),
                self.policy_opt.steps,
            ),
            value_opt: AdamSnapshot::zeroed(
                self.value_opt.learning_rate,
                self.value_opt.m.len(),
                self.value_opt.steps,
            ),
        }
    }
}

/// PPO agent: policy network, value network, and their optimizers.
#[derive(Debug, Clone)]
pub struct PpoTrainer {
    config: PpoConfig,
    policy: Mlp,
    value: Mlp,
    policy_opt: Adam,
    value_opt: Adam,
    buffer: RolloutBuffer,
    rng: StdRng,
    num_actions: usize,
    total_steps: u64,
    total_updates: u64,
    loss_history: Vec<(u64, PpoLosses)>,
}

impl PpoTrainer {
    /// Creates a trainer for observations of dimension `state_dim` and
    /// `num_actions` discrete actions.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim` or `num_actions` is zero.
    #[must_use]
    pub fn new(state_dim: usize, num_actions: usize, config: &PpoConfig, seed: u64) -> Self {
        assert!(
            state_dim > 0 && num_actions > 0,
            "dimensions must be positive"
        );
        let mut policy_sizes = vec![state_dim];
        policy_sizes.extend_from_slice(&config.hidden_sizes);
        policy_sizes.push(num_actions);
        let mut value_sizes = vec![state_dim];
        value_sizes.extend_from_slice(&config.hidden_sizes);
        value_sizes.push(1);
        let policy = Mlp::new(&policy_sizes, seed.wrapping_mul(2).wrapping_add(1));
        let value = Mlp::new(&value_sizes, seed.wrapping_mul(2).wrapping_add(2));
        let policy_opt = Adam::new(policy.num_parameters(), config.learning_rate);
        let value_opt = Adam::new(value.num_parameters(), config.learning_rate);
        Self {
            config: config.clone(),
            policy,
            value,
            policy_opt,
            value_opt,
            buffer: RolloutBuffer::new(),
            rng: StdRng::seed_from_u64(seed),
            num_actions,
            total_steps: 0,
            total_updates: 0,
            loss_history: Vec::new(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Number of environment steps observed so far.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Number of gradient updates performed so far.
    #[must_use]
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }

    /// `(steps, losses)` history of every update, for loss-curve figures.
    #[must_use]
    pub fn loss_history(&self) -> &[(u64, PpoLosses)] {
        &self.loss_history
    }

    /// Captures a [`PolicySnapshot`] of the trained agent (see its docs for
    /// what is and is not included).
    #[must_use]
    pub fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot {
            config: self.config.clone(),
            num_actions: self.num_actions,
            total_steps: self.total_steps,
            total_updates: self.total_updates,
            loss_history: self.loss_history.clone(),
            policy_layer_sizes: self.policy.layer_sizes().to_vec(),
            policy_params: self.policy.parameters(),
            value_layer_sizes: self.value.layer_sizes().to_vec(),
            value_params: self.value.parameters(),
            policy_opt: AdamSnapshot::of(&self.policy_opt),
            value_opt: AdamSnapshot::of(&self.value_opt),
        }
    }

    /// Reconstructs a trainer from a [`PolicySnapshot`]. The rollout buffer
    /// starts empty and the action-sampling RNG is seeded from `seed` (pass
    /// the training run's master seed for a conventional stream); frozen
    /// policy/value evaluation is bit-identical to the snapshotted trainer.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's parameter vectors do not match its layer
    /// sizes.
    #[must_use]
    pub fn from_snapshot(snapshot: &PolicySnapshot, seed: u64) -> Self {
        let mut policy = Mlp::new(&snapshot.policy_layer_sizes, 0);
        policy.set_parameters(&snapshot.policy_params);
        let mut value = Mlp::new(&snapshot.value_layer_sizes, 0);
        value.set_parameters(&snapshot.value_params);
        Self {
            config: snapshot.config.clone(),
            policy,
            value,
            policy_opt: snapshot.policy_opt.restore(),
            value_opt: snapshot.value_opt.restore(),
            buffer: RolloutBuffer::new(),
            rng: StdRng::seed_from_u64(seed),
            num_actions: snapshot.num_actions,
            total_steps: snapshot.total_steps,
            total_updates: snapshot.total_updates,
            loss_history: snapshot.loss_history.clone(),
        }
    }

    /// Samples an action for `state` under `mask` (empty slice = no masking)
    /// and returns `(action, log_prob, value_estimate)`.
    ///
    /// # Panics
    ///
    /// Panics if the mask disallows every action.
    pub fn select_action(&mut self, state: &[f64], mask: &[bool]) -> (usize, f64, f64) {
        let mut rng = self.rng.clone();
        let out = self.policy_step(state, mask, &mut rng);
        self.rng = rng;
        out
    }

    /// Like [`PpoTrainer::select_action`], but samples with the caller's RNG
    /// and does not mutate the trainer — the building block of parallel
    /// rollout collection, where worker threads step a *frozen* policy with
    /// their own seed-split generators.
    ///
    /// # Panics
    ///
    /// Panics if the mask disallows every action.
    pub fn policy_step<R: Rng + ?Sized>(
        &self,
        state: &[f64],
        mask: &[bool],
        rng: &mut R,
    ) -> (usize, f64, f64) {
        let logits = self.policy.forward(state);
        let dist = if mask.is_empty() {
            MaskedCategorical::new(&logits, None)
        } else {
            MaskedCategorical::new(&logits, Some(mask))
        };
        let action = dist.sample(rng);
        let log_prob = dist.log_prob(action);
        let value = self.value.forward(state)[0];
        (action, log_prob, value)
    }

    /// Greedy action (argmax of the masked policy), used after training.
    #[must_use]
    pub fn best_action(&self, state: &[f64], mask: &[bool]) -> usize {
        let logits = self.policy.forward(state);
        let dist = if mask.is_empty() {
            MaskedCategorical::new(&logits, None)
        } else {
            MaskedCategorical::new(&logits, Some(mask))
        };
        dist.argmax()
    }

    /// Stores a transition collected from the environment.
    pub fn record(&mut self, transition: Transition) {
        self.total_steps += 1;
        self.buffer.push(transition);
    }

    /// Number of transitions waiting in the rollout buffer.
    #[must_use]
    pub fn pending_transitions(&self) -> usize {
        self.buffer.len()
    }

    /// Runs a PPO update if enough transitions have been collected
    /// (see [`PpoConfig::batch_size`]). Call at episode boundaries.
    pub fn update_if_ready(&mut self) -> Option<PpoLosses> {
        if self.buffer.len() >= self.config.batch_size {
            Some(self.update())
        } else {
            None
        }
    }

    /// Runs a PPO update on whatever is currently in the buffer and clears it.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn update(&mut self) -> PpoLosses {
        assert!(
            !self.buffer.is_empty(),
            "cannot update from an empty buffer"
        );
        let (mut advantages, returns) = self
            .buffer
            .advantages_and_returns(self.config.gamma, self.config.gae_lambda);

        // Advantage normalization stabilizes training.
        let mean = advantages.iter().sum::<f64>() / advantages.len() as f64;
        let var = advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f64>()
            / advantages.len() as f64;
        let std = var.sqrt().max(1e-8);
        for a in &mut advantages {
            *a = (*a - mean) / std;
        }

        let transitions = self.buffer.transitions().to_vec();
        let n = transitions.len() as f64;
        let mut last = PpoLosses::default();

        for _ in 0..self.config.epochs {
            self.policy.zero_grad();
            self.value.zero_grad();
            let mut policy_loss = 0.0;
            let mut entropy_loss = 0.0;
            let mut value_loss = 0.0;

            for (i, t) in transitions.iter().enumerate() {
                let adv = advantages[i];
                let ret = returns[i];

                // ---- policy ----
                let acts = self.policy.forward_full(&t.state);
                let logits = acts.last().expect("output layer").clone();
                let dist = if t.mask.is_empty() {
                    MaskedCategorical::new(&logits, None)
                } else {
                    MaskedCategorical::new(&logits, Some(&t.mask))
                };
                let new_log_prob = dist.log_prob(t.action);
                let ratio = (new_log_prob - t.log_prob).exp();
                let clipped = ratio.clamp(
                    1.0 - self.config.clip_epsilon,
                    1.0 + self.config.clip_epsilon,
                );
                let surr1 = ratio * adv;
                let surr2 = clipped * adv;
                policy_loss += -surr1.min(surr2);
                let entropy = dist.entropy();
                entropy_loss += -entropy;

                // Gradient of the per-sample loss w.r.t. the logits.
                let mut grad_logits = vec![0.0; self.num_actions];
                if surr1 <= surr2 {
                    // Unclipped branch is active: d(-ratio·adv)/dlogits.
                    let glp = dist.grad_log_prob(t.action);
                    for (g, d) in grad_logits.iter_mut().zip(glp.iter()) {
                        *g += -ratio * adv * d;
                    }
                }
                // Entropy term: c_ε · d(-H)/dlogits.
                let ge = dist.grad_entropy();
                for (g, d) in grad_logits.iter_mut().zip(ge.iter()) {
                    *g += self.config.entropy_coef * (-d);
                }
                // Scale by 1/n for the batch mean.
                for g in &mut grad_logits {
                    *g /= n;
                }
                self.policy.backward(&acts, &grad_logits);

                // ---- value ----
                let vacts = self.value.forward_full(&t.state);
                let v = vacts.last().expect("output layer")[0];
                let err = v - ret;
                value_loss += 0.5 * err * err;
                let grad_v = vec![self.config.value_coef * err / n];
                self.value.backward(&vacts, &grad_v);
            }

            // Apply gradients.
            let mut pparams = self.policy.parameters();
            self.policy_opt.step(&mut pparams, &self.policy.gradients());
            self.policy.set_parameters(&pparams);
            let mut vparams = self.value.parameters();
            self.value_opt.step(&mut vparams, &self.value.gradients());
            self.value.set_parameters(&vparams);

            policy_loss /= n;
            entropy_loss /= n;
            value_loss /= n;
            last = PpoLosses {
                policy_loss,
                entropy_loss,
                value_loss,
                total_loss: policy_loss
                    + self.config.entropy_coef * entropy_loss
                    + self.config.value_coef * value_loss,
            };
        }

        self.buffer.clear();
        self.total_updates += 1;
        self.loss_history.push((self.total_steps, last));
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gae_on_single_episode_matches_hand_computation() {
        let mut buffer = RolloutBuffer::new();
        // Two-step episode: rewards 1 then 2, values 0.5 and 0.25.
        buffer.push(Transition {
            state: vec![0.0],
            mask: vec![],
            action: 0,
            reward: 1.0,
            done: false,
            log_prob: 0.0,
            value: 0.5,
        });
        buffer.push(Transition {
            state: vec![0.0],
            mask: vec![],
            action: 0,
            reward: 2.0,
            done: true,
            log_prob: 0.0,
            value: 0.25,
        });
        let gamma = 0.9;
        let lambda = 0.8;
        let (adv, ret) = buffer.advantages_and_returns(gamma, lambda);
        let delta1 = 2.0 + 0.0 - 0.25;
        let delta0 = 1.0 + gamma * 0.25 - 0.5;
        let expected_adv1 = delta1;
        let expected_adv0 = delta0 + gamma * lambda * delta1;
        assert!((adv[1] - expected_adv1).abs() < 1e-12);
        assert!((adv[0] - expected_adv0).abs() < 1e-12);
        assert!((ret[0] - (adv[0] + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn gae_resets_across_episode_boundaries() {
        let mut buffer = RolloutBuffer::new();
        for _ in 0..2 {
            buffer.push(Transition {
                state: vec![0.0],
                mask: vec![],
                action: 0,
                reward: 1.0,
                done: true,
                log_prob: 0.0,
                value: 0.0,
            });
        }
        let (adv, _) = buffer.advantages_and_returns(0.99, 0.95);
        assert!(
            (adv[0] - adv[1]).abs() < 1e-12,
            "identical isolated episodes"
        );
    }

    #[test]
    fn trainer_learns_two_armed_bandit() {
        let config = PpoConfig {
            batch_size: 16,
            learning_rate: 0.01,
            hidden_sizes: vec![16],
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(1, 2, &config, 11);
        let state = vec![1.0];
        let mut last_hundred = Vec::new();
        for episode in 0..400 {
            let (action, log_prob, value) = trainer.select_action(&state, &[]);
            let reward = if action == 1 { 1.0 } else { 0.0 };
            trainer.record(Transition {
                state: state.clone(),
                mask: vec![],
                action,
                reward,
                done: true,
                log_prob,
                value,
            });
            trainer.update_if_ready();
            if episode >= 300 {
                last_hundred.push(reward);
            }
        }
        let mean: f64 = last_hundred.iter().sum::<f64>() / last_hundred.len() as f64;
        assert!(
            mean > 0.85,
            "agent should prefer the rewarding arm, got {mean}"
        );
        assert!(trainer.total_updates() > 0);
        assert!(!trainer.loss_history().is_empty());
    }

    #[test]
    fn masked_actions_are_never_selected() {
        let mut trainer = PpoTrainer::new(2, 4, &PpoConfig::default(), 5);
        let mask = vec![false, true, false, true];
        for _ in 0..100 {
            let (a, _, _) = trainer.select_action(&[0.2, -0.3], &mask);
            assert!(mask[a]);
        }
        assert!(mask[trainer.best_action(&[0.2, -0.3], &mask)]);
    }

    #[test]
    fn higher_entropy_coefficient_keeps_entropy_higher() {
        // Train two agents on the bandit; the boosted-exploration one should
        // retain a more stochastic policy (smaller |entropy loss|).
        let run = |config: PpoConfig| -> f64 {
            let mut trainer = PpoTrainer::new(1, 2, &config, 3);
            let state = vec![1.0];
            for _ in 0..200 {
                let (action, log_prob, value) = trainer.select_action(&state, &[]);
                let reward = if action == 1 { 1.0 } else { 0.0 };
                trainer.record(Transition {
                    state: state.clone(),
                    mask: vec![],
                    action,
                    reward,
                    done: true,
                    log_prob,
                    value,
                });
                trainer.update_if_ready();
            }
            // Report the final policy entropy H = -entropy_loss.
            trainer
                .loss_history()
                .last()
                .map(|(_, l)| -l.entropy_loss)
                .unwrap_or(0.0)
        };
        let default_entropy = run(PpoConfig {
            batch_size: 16,
            ..PpoConfig::default()
        });
        let boosted_entropy = run(PpoConfig {
            batch_size: 16,
            ..PpoConfig::boosted_exploration()
        });
        assert!(
            boosted_entropy >= default_entropy - 1e-9,
            "boosted exploration should keep policy entropy at least as high: \
             boosted {boosted_entropy} vs default {default_entropy}"
        );
    }

    #[test]
    fn snapshot_round_trip_preserves_frozen_behaviour() {
        // Train a little so the optimizer moments and loss history are
        // non-trivial, then check the restored trainer is indistinguishable
        // under frozen-policy use.
        let config = PpoConfig {
            batch_size: 16,
            hidden_sizes: vec![8],
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(2, 3, &config, 7);
        let state = vec![0.4, -0.1];
        for _ in 0..40 {
            let (action, log_prob, value) = trainer.select_action(&state, &[]);
            trainer.record(Transition {
                state: state.clone(),
                mask: vec![],
                action,
                reward: f64::from(u8::from(action == 2)),
                done: true,
                log_prob,
                value,
            });
            trainer.update_if_ready();
        }
        let snapshot = trainer.snapshot();
        let restored = PpoTrainer::from_snapshot(&snapshot, 7);
        assert_eq!(restored.snapshot(), snapshot, "snapshot is a fixed point");
        assert_eq!(restored.loss_history(), trainer.loss_history());
        assert_eq!(restored.total_steps(), trainer.total_steps());
        assert_eq!(restored.total_updates(), trainer.total_updates());
        assert_eq!(
            restored.best_action(&state, &[]),
            trainer.best_action(&state, &[])
        );
        use rand::SeedableRng;
        let mut a = rand::rngs::StdRng::seed_from_u64(99);
        let mut b = rand::rngs::StdRng::seed_from_u64(99);
        assert_eq!(
            trainer.policy_step(&state, &[], &mut a),
            restored.policy_step(&state, &[], &mut b),
            "frozen sampling must match given the same RNG stream"
        );
        assert_eq!(restored.pending_transitions(), 0, "buffer not captured");
    }

    #[test]
    fn slimmed_snapshot_preserves_frozen_behaviour() {
        let config = PpoConfig {
            batch_size: 8,
            hidden_sizes: vec![8],
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(2, 3, &config, 13);
        let state = vec![-0.2, 0.9];
        for _ in 0..64 {
            let (action, log_prob, value) = trainer.select_action(&state, &[]);
            trainer.record(Transition {
                state: state.clone(),
                mask: vec![],
                action,
                reward: f64::from(u8::from(action == 0)),
                done: true,
                log_prob,
                value,
            });
            trainer.update_if_ready();
        }
        let full = trainer.snapshot();
        assert!(full.loss_history.len() > 2);
        let slim = full.slimmed(2);

        // Weights, counters, and config are untouched; moments zeroed; only
        // the most recent loss entries survive.
        assert_eq!(slim.policy_params, full.policy_params);
        assert_eq!(slim.value_params, full.value_params);
        assert_eq!(slim.total_steps, full.total_steps);
        assert_eq!(slim.policy_opt.steps, full.policy_opt.steps);
        assert!(slim.policy_opt.m.iter().all(|&m| m == 0.0));
        assert_eq!(slim.policy_opt.m.len(), full.policy_opt.m.len());
        assert_eq!(slim.loss_history.len(), 2);
        assert_eq!(
            slim.loss_history.as_slice(),
            &full.loss_history[full.loss_history.len() - 2..]
        );

        // Frozen-policy behaviour of the restored trainers is identical.
        let restored_full = PpoTrainer::from_snapshot(&full, 13);
        let restored_slim = PpoTrainer::from_snapshot(&slim, 13);
        assert_eq!(
            restored_full.best_action(&state, &[]),
            restored_slim.best_action(&state, &[])
        );
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            restored_full.policy_step(&state, &[], &mut a),
            restored_slim.policy_step(&state, &[], &mut b)
        );
        // Slimming more entries than exist keeps everything.
        assert_eq!(full.slimmed(1000).loss_history, full.loss_history);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn update_on_empty_buffer_panics() {
        let mut trainer = PpoTrainer::new(1, 2, &PpoConfig::default(), 1);
        let _ = trainer.update();
    }
}
