//! The end-to-end DETERRENT pipeline (Figure 4 of the paper), as a thin
//! compatibility wrapper over the staged [`crate::DeterrentSession`].
//!
//! [`Deterrent::run`] produces bit-identical patterns, sets, and rare nets
//! to driving the session stages explicitly — it simply runs all five with a
//! private artifact store. New code that reruns shared prefixes (ablation
//! grids, threshold sweeps, campaigns) should use the session API directly.

use exec::ExecStats;
use netlist::Netlist;
use rl::PpoLosses;
use sim::rare::{RareNet, RareNetAnalysis};
use sim::TestPattern;

use crate::{DeterrentConfig, DeterrentSession, RareNetSet};

/// Metrics of a full pipeline run, matching the quantities reported in
/// Table 1 and Figures 2–3 of the paper.
#[derive(Debug, Clone, Default)]
pub struct TrainingMetrics {
    /// Episodes completed per minute of wall-clock time.
    pub episodes_per_minute: f64,
    /// Environment steps per minute of wall-clock time.
    pub steps_per_minute: f64,
    /// Size of the largest compatible set found during training/evaluation.
    pub max_compatible_set: usize,
    /// Mean reward over the last 10% of episodes.
    pub final_mean_reward: f64,
    /// `(total_env_steps, losses)` per PPO update — the loss curve of Fig. 3.
    pub loss_history: Vec<(u64, PpoLosses)>,
    /// Wall-clock seconds spent in RL training.
    pub training_seconds: f64,
    /// SAT queries spent building the pairwise-compatibility graph.
    pub compat_sat_queries: u64,
    /// Unordered rare-net pairs the compatibility graph resolved.
    pub compat_pairs_total: u64,
    /// Pairs resolved by a retained simulation witness (tier 1, no SAT).
    pub compat_pairs_witnessed: u64,
    /// Pairs resolved by disjoint cone supports (tier 2, no SAT).
    pub compat_pairs_pruned: u64,
    /// Pairs resolved by bounded exhaustive cone enumeration (tier 2, no
    /// SAT). Witnessed + pruned + enumerated + SAT partition the total.
    pub compat_pairs_enumerated: u64,
    /// Pairs that needed a SAT query (tier 3).
    pub compat_pairs_sat: u64,
    /// Effective enumeration-budget base cost (word ops) the graph build
    /// used — self-tuned from probe queries when
    /// [`crate::EnumerationBudget::SelfTuning`] is configured (the default),
    /// otherwise the configured constant; zero when enumeration ran with a
    /// fixed support limit or was disabled.
    pub compat_budget_sat_base_word_ops: u64,
    /// Effective enumeration-budget per-gate cost (word ops); see
    /// [`TrainingMetrics::compat_budget_sat_base_word_ops`].
    pub compat_budget_sat_per_gate_word_ops: u64,
    /// SAT probe queries spent fitting the self-tuned budget (their verdicts
    /// land in the adjacency, so the work is not wasted).
    pub compat_budget_probe_queries: u64,
    /// Whether the effective budget constants were fitted online rather
    /// than configured.
    pub compat_budget_self_tuned: bool,
    /// Aggregate CDCL solver counters across every solver the graph build
    /// created (singleton oracle, probes, and tier-3 workers).
    pub compat_solver: sat::SolverStats,
    /// Exact SAT checks performed inside the environment (non-zero only for
    /// the naive all-SAT formulation).
    pub env_sat_checks: u64,
    /// Worker threads of the deterministic parallel runtime.
    pub threads_used: usize,
    /// Wall-clock seconds spent building the compatibility graph (the cold
    /// build; a cache hit reports the originating build's time).
    pub compat_build_seconds: f64,
    /// Selected sets turned into patterns by reusing a concrete simulation
    /// witness instead of a SAT justification.
    pub patterns_witness_reused: u64,
    /// SAT justification queries spent generating patterns (including greedy
    /// repair retries).
    pub pattern_sat_queries: u64,
    /// Task/timing counters of the session's shared parallel runtime across
    /// **every** stage that actually ran — probability estimation, witness
    /// harvest, funnel tiers, and rollout collection;
    /// [`ExecStats::speedup`] is the realized parallel speedup. Stages
    /// served from the artifact cache contribute nothing (their work never
    /// ran).
    pub exec_stats: ExecStats,
}

/// Output of a full DETERRENT run.
#[derive(Debug, Clone)]
pub struct DeterrentResult {
    /// The generated test patterns (at most `k`, often fewer after
    /// deduplication).
    pub patterns: Vec<TestPattern>,
    /// The selected compatible rare-net sets, largest first.
    pub sets: Vec<RareNetSet>,
    /// The rare nets the agent operated over.
    pub rare_nets: Vec<RareNet>,
    /// Rareness threshold used.
    pub rareness_threshold: f64,
    /// Training-phase metrics.
    pub metrics: TrainingMetrics,
}

impl DeterrentResult {
    /// Number of generated test patterns (the "Test Length" column of
    /// Table 2).
    #[must_use]
    pub fn test_length(&self) -> usize {
        self.patterns.len()
    }
}

/// The monolithic one-call pipeline, kept as a compatibility wrapper over
/// [`DeterrentSession`].
#[derive(Debug, Clone)]
pub struct Deterrent<'a> {
    netlist: &'a Netlist,
    config: DeterrentConfig,
}

impl<'a> Deterrent<'a> {
    /// Creates the pipeline for `netlist` with the given configuration.
    #[must_use]
    pub fn new(netlist: &'a Netlist, config: DeterrentConfig) -> Self {
        Self { netlist, config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DeterrentConfig {
        &self.config
    }

    /// Runs the full pipeline: rare-net analysis, offline compatibility,
    /// RL training, set selection, and SAT pattern generation — all five
    /// session stages on one deterministic parallel runtime sized by
    /// [`DeterrentConfig::threads`]. The result is bit-identical at any
    /// thread count.
    #[must_use]
    pub fn run(&self) -> DeterrentResult {
        DeterrentSession::new(self.netlist, self.config.clone()).run()
    }

    /// Runs the pipeline on a precomputed rare-net analysis. This is how the
    /// paper's threshold-transfer experiment (train at θ = 0.14, evaluate at
    /// θ = 0.10) was expressed before the session API; prefer one
    /// [`DeterrentSession`] per θ with a shared [`crate::ArtifactStore`].
    #[must_use]
    pub fn run_with_analysis(&self, analysis: &RareNetAnalysis) -> DeterrentResult {
        let mut session = DeterrentSession::new(self.netlist, self.config.clone());
        let rare = session.import_analysis(analysis.clone());
        session.run_from(&rare)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RewardMode;
    use netlist::synth::BenchmarkProfile;
    use sim::Simulator;
    use trojan::{CoverageEvaluator, TrojanGenerator};

    fn small_netlist() -> Netlist {
        BenchmarkProfile::c2670().scaled(20).generate(3)
    }

    #[test]
    fn full_pipeline_produces_patterns_that_hit_rare_nets() {
        let nl = small_netlist();
        let config = DeterrentConfig::fast_preset().with_threshold(0.2);
        let result = Deterrent::new(&nl, config).run();
        assert!(!result.rare_nets.is_empty());
        assert!(!result.patterns.is_empty());
        assert!(result.test_length() <= 16);
        assert!(result.metrics.max_compatible_set >= 1);
        assert!(result.metrics.episodes_per_minute > 0.0);

        // Every pattern activates at least one rare net at its rare value.
        let sim = Simulator::new(&nl);
        for p in &result.patterns {
            let values = sim.run(p);
            assert!(result
                .rare_nets
                .iter()
                .any(|r| values.value(r.net) == r.rare_value));
        }
    }

    #[test]
    fn pipeline_detects_planted_trojans_better_than_nothing() {
        let nl = small_netlist();
        let config = DeterrentConfig::fast_preset()
            .with_threshold(0.2)
            .with_seed(5);
        let result = Deterrent::new(&nl, config).run();

        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 4096, 9);
        let mut gen = TrojanGenerator::new(&nl, 77);
        let trojans = gen.sample_many(&analysis, 2, 20);
        if trojans.is_empty() {
            return; // seed produced no valid 2-wide triggers; other tests cover this
        }
        let evaluator = CoverageEvaluator::new(&nl, trojans);
        let report = evaluator.evaluate(&result.patterns);
        assert!(
            report.detected > 0,
            "DETERRENT patterns should trigger at least one planted Trojan"
        );
    }

    #[test]
    fn end_of_episode_mode_runs_and_reports_metrics() {
        let nl = small_netlist();
        let config = DeterrentConfig::fast_preset()
            .with_threshold(0.2)
            .with_ablation(RewardMode::EndOfEpisode, true)
            .with_episodes(20);
        let result = Deterrent::new(&nl, config).run();
        assert!(result.metrics.steps_per_minute > 0.0);
    }

    #[test]
    fn empty_rare_net_set_yields_empty_result() {
        let nl = netlist::samples::c17();
        // Nothing in c17 is rare at θ = 0.01.
        let config = DeterrentConfig::fast_preset().with_threshold(0.01);
        let result = Deterrent::new(&nl, config).run();
        assert!(result.patterns.is_empty());
        assert!(result.sets.is_empty());
    }

    #[test]
    fn threshold_transfer_reuses_external_analysis() {
        let nl = small_netlist();
        let loose = RareNetAnalysis::estimate(&nl, 0.25, 4096, 2);
        let config = DeterrentConfig::fast_preset().with_episodes(20);
        let result = Deterrent::new(&nl, config).run_with_analysis(&loose);
        assert!((result.rareness_threshold - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wrapper_equals_explicit_session_with_imported_analysis() {
        let nl = small_netlist();
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 4096, 7);
        let config = DeterrentConfig::fast_preset().with_episodes(20);
        let wrapped = Deterrent::new(&nl, config.clone()).run_with_analysis(&analysis);

        let mut session = DeterrentSession::new(&nl, config);
        let rare = session.import_analysis(analysis);
        let staged = session.run_from(&rare);
        assert_eq!(wrapped.patterns, staged.patterns);
        assert_eq!(wrapped.sets, staged.sets);
        assert_eq!(wrapped.rare_nets, staged.rare_nets);
    }
}
