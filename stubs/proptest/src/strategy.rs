//! Value-generation strategies.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there is
/// no shrinking: `generate` draws a single random value.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy generating any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.len.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec`: vectors of `element` values with a length in
/// `len`.
#[must_use]
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// An index into a collection whose length is only known inside the test
/// body (`prop::sample::Index`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Projects this abstract index onto a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.gen::<usize>() >> 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::for_test("strategy_unit");
        let s = (2usize..6, 0u32..8, any::<bool>());
        for _ in 0..200 {
            let (a, b, _) = s.generate(&mut rng);
            assert!((2..6).contains(&a));
            assert!(b < 8);
        }
        let v = vec(vec(0u32..4, 1..3), 2..5);
        for _ in 0..50 {
            let outer = v.generate(&mut rng);
            assert!((2..5).contains(&outer.len()));
            for inner in outer {
                assert!((1..3).contains(&inner.len()));
                assert!(inner.iter().all(|&x| x < 4));
            }
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_test("map_unit");
        let s = (1usize..5).prop_map(|x| x * 10);
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn index_projects_into_range() {
        let mut rng = TestRng::for_test("index_unit");
        for _ in 0..100 {
            let idx = Index::arbitrary(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }
}
