//! `deterrent-cache` — inspect and maintain a persistent artifact cache.
//!
//! ```text
//! deterrent-cache stats  [--cache-dir DIR] [--max-bytes N[k|m|g]] [--json]
//! deterrent-cache gc     [--cache-dir DIR] [--max-bytes N[k|m|g]] [--per-stage-max N[k|m|g]]
//! deterrent-cache verify [--cache-dir DIR] [--no-heal] [--json]
//! ```
//!
//! `stats` also estimates the last campaign's working set from the
//! per-stage file counts and sizes, and warns on stderr when the resolved
//! byte budget (`--max-bytes`, else `DETERRENT_CACHE_MAX_BYTES`) is below
//! it — a budget in that range churns the cache on every rerun (the LRU
//! scan anomaly). The estimate is also in the `--json` output as
//! `working_set_estimate`.
//!
//! `--json` switches `stats` / `verify` from the human table to a single
//! JSON object on stdout, built from the same report structs (the exit
//! codes are unchanged).
//!
//! The cache directory comes from `--cache-dir`, else the
//! `DETERRENT_CACHE_DIR` environment variable. `gc` budgets come from the
//! flags, else `DETERRENT_CACHE_MAX_BYTES`; with no budget at all, `gc`
//! still prunes corrupt files and orphaned `.lru` sidecars.
//!
//! Exit codes — deliberately distinct so CI can gate on them:
//!
//! * `0` — clean: every artifact file's header and FNV-1a checksum
//!   validated (or, for `gc`/`stats`, the operation completed).
//! * `1` — `verify` found corrupt files. With healing (the default) they
//!   were deleted and will simply recompute on the next run; `--no-heal`
//!   only reports them.
//! * `2` — an I/O error prevented inspecting the cache (unreadable
//!   directory or file, missing `--cache-dir`/`DETERRENT_CACHE_DIR`, bad
//!   flags). Corruption was *not* established.

use std::path::PathBuf;
use std::process::ExitCode;

use deterrent_core::cache::{cache_stats, gc, verify, CachePolicy};
use deterrent_core::{parse_bytes, DeterrentConfig};
use telemetry::{obj, Value};

struct Args {
    command: String,
    cache_dir: Option<PathBuf>,
    max_bytes: Option<u64>,
    per_stage_max: Option<u64>,
    heal: bool,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().collect();
    let command = argv
        .get(1)
        .filter(|c| ["stats", "gc", "verify"].contains(&c.as_str()))
        .ok_or("usage: deterrent-cache <stats|gc|verify> [--cache-dir DIR] ...")?
        .clone();
    let mut args = Args {
        command,
        cache_dir: None,
        max_bytes: None,
        per_stage_max: None,
        heal: true,
        json: false,
    };
    let mut i = 2;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value(&mut i)?)),
            "--max-bytes" => {
                args.max_bytes = Some(parse_bytes(&value(&mut i)?).ok_or("bad --max-bytes")?);
            }
            "--per-stage-max" => {
                args.per_stage_max =
                    Some(parse_bytes(&value(&mut i)?).ok_or("bad --per-stage-max")?);
            }
            "--no-heal" => args.heal = false,
            "--json" => args.json = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("deterrent-cache: {message}");
            return ExitCode::from(2);
        }
    };
    let Some(dir) = args.cache_dir.clone().or_else(|| {
        std::env::var_os(DeterrentConfig::CACHE_DIR_ENV)
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    }) else {
        eprintln!(
            "deterrent-cache: no cache directory (--cache-dir or {})",
            DeterrentConfig::CACHE_DIR_ENV
        );
        return ExitCode::from(2);
    };

    match args.command.as_str() {
        "stats" => match cache_stats(&dir) {
            Ok(stats) => {
                // Budget to check against: the explicit flag, else the
                // environment the next run would resolve.
                let budget = args.max_bytes.or_else(|| {
                    std::env::var(DeterrentConfig::CACHE_MAX_BYTES_ENV)
                        .ok()
                        .as_deref()
                        .and_then(parse_bytes)
                });
                let estimate = stats.working_set_estimate();
                if args.json {
                    // The same struct the table renders from, as one JSON
                    // object per invocation.
                    let value = obj([
                        ("cache_dir", Value::str(dir.display().to_string())),
                        (
                            "stages",
                            Value::Arr(
                                stats
                                    .stages
                                    .iter()
                                    .map(|usage| {
                                        obj([
                                            ("stage", Value::str(usage.stage.name())),
                                            ("files", Value::u64(usage.files)),
                                            ("bytes", Value::u64(usage.bytes)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("total_files", Value::u64(stats.total_files())),
                        ("total_bytes", Value::u64(stats.total_bytes())),
                        ("working_set_estimate", Value::u64(estimate)),
                    ]);
                    println!("{}", value.to_json());
                } else {
                    println!("cache {}", dir.display());
                    for usage in stats.stages {
                        println!(
                            "  {:<12} {:>6} file(s) {:>12} bytes",
                            usage.stage.name(),
                            usage.files,
                            usage.bytes
                        );
                    }
                    println!(
                        "  {:<12} {:>6} file(s) {:>12} bytes",
                        "total",
                        stats.total_files(),
                        stats.total_bytes()
                    );
                }
                if budget.is_some_and(|max_bytes| max_bytes < estimate) {
                    eprintln!(
                        "deterrent-cache: warning: max_bytes {} is below the last \
                         campaign's estimated working set ({estimate} bytes) — reruns \
                         will churn the cache (LRU scan anomaly); raise the budget or \
                         use --per-stage-max to shed only the train stage",
                        budget.unwrap_or(0)
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("deterrent-cache: stats failed: {e}");
                ExitCode::from(2)
            }
        },
        "gc" => {
            let env_budget = std::env::var(DeterrentConfig::CACHE_MAX_BYTES_ENV)
                .ok()
                .as_deref()
                .and_then(parse_bytes);
            let policy = CachePolicy {
                max_bytes: args.max_bytes.or(env_budget),
                per_stage_max: args.per_stage_max,
                ..CachePolicy::default()
            };
            match gc(&dir, &policy) {
                Ok(report) => {
                    println!(
                        "gc {}: evicted {} file(s) ({} bytes), removed {} corrupt, \
                         {} orphan sidecar(s), {} stale tmp file(s); {} bytes remain",
                        dir.display(),
                        report.evicted_files,
                        report.evicted_bytes,
                        report.corrupt_removed,
                        report.orphan_sidecars_removed,
                        report.stale_tmp_removed,
                        report.bytes_remaining
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("deterrent-cache: gc failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "verify" => {
            let report = verify(&dir, args.heal);
            if args.json {
                let value = obj([
                    ("cache_dir", Value::str(dir.display().to_string())),
                    ("valid", Value::u64(report.valid)),
                    (
                        "corrupt",
                        Value::Arr(
                            report
                                .corrupt
                                .iter()
                                .map(|p| Value::str(p.display().to_string()))
                                .collect(),
                        ),
                    ),
                    ("healed", Value::Bool(report.healed)),
                    (
                        "io_errors",
                        Value::Arr(
                            report
                                .io_errors
                                .iter()
                                .map(|(path, error)| {
                                    obj([
                                        ("path", Value::str(path.display().to_string())),
                                        ("error", Value::str(error)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]);
                println!("{}", value.to_json());
            } else {
                println!(
                    "verify {}: {} valid, {} corrupt{}",
                    dir.display(),
                    report.valid,
                    report.corrupt.len(),
                    if report.healed && !report.corrupt.is_empty() {
                        " (healed)"
                    } else {
                        ""
                    }
                );
                for path in &report.corrupt {
                    println!("  corrupt: {}", path.display());
                }
                for (path, error) in &report.io_errors {
                    eprintln!("  io error: {}: {error}", path.display());
                }
            }
            if !report.io_errors.is_empty() {
                ExitCode::from(2)
            } else if !report.corrupt.is_empty() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => unreachable!("validated at parse time"),
    }
}
