//! Figure 3: total-loss trend over training steps on c2670, default
//! exploration vs boosted exploration (entropy coefficient 1.0, λ = 0.99).
//!
//! Both exploration cells share the instance's cached analysis and graph
//! (asserted after the grid) — only training reruns.

use deterrent_bench::{BenchInstance, HarnessOptions};
use netlist::synth::BenchmarkProfile;

fn main() {
    let options = HarnessOptions::from_args();
    let instance = BenchInstance::prepare(&BenchmarkProfile::c2670(), &options, 0.1);
    println!(
        "Figure 3 — total loss vs steps on {} ({} rare nets)\n",
        instance.name,
        instance.analysis.len()
    );

    let combos = [
        ("Default exploration", false),
        ("Boosted exploration", true),
    ];
    for (label, boosted) in combos {
        let mut config = options.deterrent_config();
        if !boosted {
            config = config.with_default_exploration();
        }
        let result = instance.run_deterrent(config);
        println!("{label}:");
        println!(
            "  {:>12} {:>14} {:>14} {:>14}",
            "steps", "total loss", "policy loss", "entropy"
        );
        for (steps, losses) in result.metrics.loss_history.iter() {
            println!(
                "  {:>12} {:>14.4} {:>14.4} {:>14.4}",
                steps, losses.total_loss, losses.policy_loss, -losses.entropy_loss
            );
        }
        let final_entropy = result
            .metrics
            .loss_history
            .last()
            .map(|(_, l)| -l.entropy_loss)
            .unwrap_or(0.0);
        println!(
            "  final policy entropy: {final_entropy:.4}  max compatible set: {}\n",
            result.metrics.max_compatible_set
        );
    }
    instance.assert_offline_reuse(combos.len());
    println!("(offline stages shared: analysis and graph computed once for both cells ✓)");
    println!(
        "Shape to verify: with boosted exploration the total loss (driven by the \
         entropy term) stays away from zero for longer, keeping the agent exploring."
    );
    instance.finish(&options);
}
