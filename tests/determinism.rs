//! The exec runtime's contract, checked end to end: every stage of the
//! pipeline produces **bit-identical** results at any thread count.
//!
//! Covered surfaces: signal-probability estimates, harvested witness banks,
//! the compatibility adjacency matrix, and the full pipeline's selected sets
//! and generated pattern sets (which exercise parallel PPO rollout
//! collection).

use deterrent_repro::deterrent_core::{
    CompatBuildOptions, CompatStrategy, CompatibilityGraph, Deterrent, DeterrentConfig,
};
use deterrent_repro::exec::Exec;
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::sim::rare::RareNetAnalysis;
use deterrent_repro::sim::SignalProbabilities;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

#[test]
fn probability_estimates_are_bit_identical_across_thread_counts() {
    let nl = BenchmarkProfile::c2670().scaled(20).generate(7);
    let reference = SignalProbabilities::estimate_with(&nl, 4096, 9, &Exec::serial());
    for threads in THREAD_COUNTS {
        let estimate = SignalProbabilities::estimate_with(&nl, 4096, 9, &Exec::new(threads));
        assert_eq!(
            reference.as_slice(),
            estimate.as_slice(),
            "{threads} threads"
        );
    }
}

#[test]
fn rare_net_analysis_and_witnesses_are_thread_count_invariant() {
    let nl = BenchmarkProfile::c5315().scaled(40).generate(3);
    let reference = RareNetAnalysis::estimate_with(&nl, 0.2, 2048, 5, &Exec::serial());
    for threads in THREAD_COUNTS {
        let analysis = RareNetAnalysis::estimate_with(&nl, 0.2, 2048, 5, &Exec::new(threads));
        assert_eq!(reference.rare_nets(), analysis.rare_nets(), "{threads}");
        let (a, b) = (
            reference.witnesses().expect("bank retained"),
            analysis.witnesses().expect("bank retained"),
        );
        assert_eq!(a.num_patterns(), b.num_patterns());
        for t in 0..a.len() {
            assert_eq!(a.row(t), b.row(t), "{threads} threads, row {t}");
        }
    }
}

#[test]
fn adjacency_matrix_is_bit_identical_across_thread_counts() {
    let nl = BenchmarkProfile::c2670().scaled(20).generate(7);
    let analysis = RareNetAnalysis::estimate(&nl, 0.2, 4096, 5);
    let reference = CompatibilityGraph::build(&nl, &analysis, 1);
    for threads in THREAD_COUNTS {
        let graph = CompatibilityGraph::build(&nl, &analysis, threads);
        assert_eq!(reference.adjacency(), graph.adjacency(), "{threads}");
        assert_eq!(reference.rare_nets(), graph.rare_nets(), "{threads}");
    }
}

#[test]
fn pipeline_patterns_and_sets_are_bit_identical_across_thread_counts() {
    let nl = BenchmarkProfile::c2670().scaled(20).generate(11);
    let run = |threads: usize| {
        let config = DeterrentConfig::fast_preset()
            .with_threshold(0.2)
            .with_episodes(30)
            .with_eval_rollouts(8)
            .with_threads(threads);
        Deterrent::new(&nl, config).run()
    };
    let reference = run(1);
    assert!(
        !reference.patterns.is_empty(),
        "profile must produce patterns"
    );
    for threads in THREAD_COUNTS {
        let result = run(threads);
        assert_eq!(reference.sets, result.sets, "{threads} threads: sets");
        assert_eq!(
            reference.patterns, result.patterns,
            "{threads} threads: patterns"
        );
        assert_eq!(
            reference.rare_nets, result.rare_nets,
            "{threads} threads: rare nets"
        );
        assert_eq!(
            reference.metrics.max_compatible_set, result.metrics.max_compatible_set,
            "{threads} threads: harvest"
        );
        assert_eq!(
            reference.metrics.patterns_witness_reused, result.metrics.patterns_witness_reused,
            "{threads} threads: witness reuse"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Adjacency determinism holds across random profiles, thresholds, and
    /// pattern budgets — not just the hand-picked acceptance profile.
    #[test]
    fn adjacency_determinism_holds_on_random_profiles(
        scale in 10usize..30,
        seed in any::<u64>(),
        theta_percent in 10u32..30,
        patterns_exp in 9u32..12,
    ) {
        let nl = BenchmarkProfile::c2670().scaled(scale).generate(seed);
        let theta = f64::from(theta_percent) / 100.0;
        let analysis = RareNetAnalysis::estimate(&nl, theta, 1usize << patterns_exp, seed ^ 1);
        let serial = CompatibilityGraph::build_with(
            &nl,
            &analysis,
            &CompatBuildOptions { threads: 1, strategy: CompatStrategy::default() },
        );
        let parallel = CompatibilityGraph::build_with(
            &nl,
            &analysis,
            &CompatBuildOptions { threads: 3, strategy: CompatStrategy::default() },
        );
        prop_assert_eq!(serial.adjacency(), parallel.adjacency());
    }
}
