//! Robustness of the persistent disk-backed artifact cache.
//!
//! The contract under test: a cache directory behaves as a pure
//! accelerator. Warm-from-disk runs are bit-identical to cold runs at any
//! thread count; corrupted, truncated, or version-mismatched artifact files
//! silently fall back to recomputation (and are overwritten with valid
//! files); and concurrent sessions sharing one directory never interfere.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use deterrent_repro::deterrent_core::{
    ArtifactStore, DeterrentConfig, DeterrentResult, DeterrentSession,
};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::netlist::Netlist;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty, test-unique cache directory under the system temp dir.
fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "deterrent-disk-cache-{}-{}-{tag}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn test_netlist() -> Netlist {
    BenchmarkProfile::c2670().scaled(20).generate(11)
}

fn test_config() -> DeterrentConfig {
    DeterrentConfig::fast_preset()
        .with_threshold(0.2)
        .with_episodes(30)
        .with_eval_rollouts(8)
}

fn run_with(netlist: &Netlist, config: DeterrentConfig, store: &ArtifactStore) -> DeterrentResult {
    DeterrentSession::with_store(netlist, config, store.clone()).run()
}

fn assert_bit_identical(a: &DeterrentResult, b: &DeterrentResult, label: &str) {
    assert_eq!(a.patterns, b.patterns, "{label}: patterns");
    assert_eq!(a.sets, b.sets, "{label}: sets");
    assert_eq!(a.rare_nets, b.rare_nets, "{label}: rare nets");
    assert_eq!(
        a.rareness_threshold.to_bits(),
        b.rareness_threshold.to_bits(),
        "{label}: threshold"
    );
    assert_eq!(
        a.metrics.max_compatible_set, b.metrics.max_compatible_set,
        "{label}: max compatible set"
    );
    assert_eq!(
        a.metrics.final_mean_reward.to_bits(),
        b.metrics.final_mean_reward.to_bits(),
        "{label}: final mean reward"
    );
    assert_eq!(
        a.metrics.loss_history.len(),
        b.metrics.loss_history.len(),
        "{label}: loss history length"
    );
    for (i, (x, y)) in a
        .metrics
        .loss_history
        .iter()
        .zip(&b.metrics.loss_history)
        .enumerate()
    {
        assert_eq!(x.0, y.0, "{label}: loss step {i}");
        assert_eq!(
            x.1.total_loss.to_bits(),
            y.1.total_loss.to_bits(),
            "{label}: loss value {i}"
        );
    }
    assert_eq!(
        a.metrics.patterns_witness_reused, b.metrics.patterns_witness_reused,
        "{label}: witness reuse"
    );
    assert_eq!(
        a.metrics.pattern_sat_queries, b.metrics.pattern_sat_queries,
        "{label}: pattern SAT queries"
    );
}

/// Every `.dtc` artifact file under `dir`, sorted for determinism.
fn artifact_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let Ok(stages) = fs::read_dir(dir) else {
        return files;
    };
    for stage in stages.flatten() {
        if let Ok(entries) = fs::read_dir(stage.path()) {
            for entry in entries.flatten() {
                if entry.path().extension().is_some_and(|e| e == "dtc") {
                    files.push(entry.path());
                }
            }
        }
    }
    files.sort();
    files
}

#[test]
fn warm_from_disk_is_bit_identical_to_cold_at_any_thread_count() {
    let nl = test_netlist();
    let dir = temp_cache_dir("warm");

    // Cold at 1 thread populates the directory.
    let cold_store = ArtifactStore::with_disk(&dir);
    let cold = run_with(&nl, test_config().with_threads(1), &cold_store);
    assert_eq!(cold_store.counters().total_disk_hits(), 0, "cold run");
    assert_eq!(cold_store.counters().total_misses(), 6);
    assert_eq!(artifact_files(&dir).len(), 6, "one file per stage");

    // Fresh processes (fresh stores) at 1 and 4 threads recompute nothing:
    // thread counts are excluded from the keys, and the codec round-trips
    // every payload bit-exactly.
    for threads in [1usize, 4] {
        let warm_store = ArtifactStore::with_disk(&dir);
        let warm = run_with(&nl, test_config().with_threads(threads), &warm_store);
        let counters = warm_store.counters();
        assert_eq!(
            counters.total_misses(),
            0,
            "warm at {threads} threads recomputes nothing: {counters:?}"
        );
        assert_eq!(counters.total_disk_hits(), 6, "{threads} threads");
        assert_eq!(counters.total_disk_corrupt(), 0, "{threads} threads");
        assert_bit_identical(
            &cold,
            &warm,
            &format!("warm from disk at {threads} threads"),
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_truncated_and_version_mismatched_files_fall_back_to_recompute() {
    let nl = test_netlist();
    let dir = temp_cache_dir("corrupt");
    let cold = run_with(&nl, test_config(), &ArtifactStore::with_disk(&dir));

    let files = artifact_files(&dir);
    assert_eq!(files.len(), 6);
    // Damage every stage's file a different way: garbage header, flipped
    // magic, truncated payload, wrong format version, flipped payload bit.
    for (i, path) in files.iter().enumerate() {
        let mut bytes = fs::read(path).unwrap();
        match i % 5 {
            0 => bytes = b"not a cache artifact at all".to_vec(),
            1 => bytes[0] ^= 0xFF,
            2 => bytes.truncate(bytes.len() / 2),
            3 => bytes[8] = bytes[8].wrapping_add(1),
            _ => {
                let last = bytes.len() - 1;
                bytes[last] ^= 0x01;
            }
        }
        fs::write(path, &bytes).unwrap();
    }

    // The next run silently recomputes everything — no panic, identical
    // results — and counts each damaged file as corrupt.
    let store = ArtifactStore::with_disk(&dir);
    let recomputed = run_with(&nl, test_config(), &store);
    let counters = store.counters();
    assert_eq!(counters.total_disk_hits(), 0, "{counters:?}");
    assert_eq!(counters.total_disk_corrupt(), 6, "{counters:?}");
    assert_eq!(counters.total_misses(), 6, "{counters:?}");
    assert_bit_identical(&cold, &recomputed, "recomputed over corrupt cache");

    // Recomputation overwrote the damaged files: a third run is fully warm.
    let healed = ArtifactStore::with_disk(&dir);
    let warm = run_with(&nl, test_config(), &healed);
    let counters = healed.counters();
    assert_eq!(counters.total_disk_hits(), 6, "{counters:?}");
    assert_eq!(counters.total_misses(), 0, "{counters:?}");
    assert_bit_identical(&cold, &warm, "healed cache");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_sessions_sharing_one_cache_dir_do_not_interfere() {
    let dir = temp_cache_dir("concurrent");

    // Two threads race whole cold pipelines against the same directory
    // (distinct stores, so every artifact is written twice — the writes
    // must not clobber each other mid-file thanks to rename-on-write).
    let results: Vec<DeterrentResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let dir = dir.clone();
                scope.spawn(move || {
                    let nl = test_netlist();
                    run_with(&nl, test_config(), &ArtifactStore::with_disk(dir))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_bit_identical(&results[0], &results[1], "racing cold sessions");

    // Whatever interleaving happened, the directory now serves a fully warm
    // run with valid files only.
    let nl = test_netlist();
    let store = ArtifactStore::with_disk(&dir);
    let warm = run_with(&nl, test_config(), &store);
    let counters = store.counters();
    assert_eq!(counters.total_misses(), 0, "{counters:?}");
    assert_eq!(counters.total_disk_corrupt(), 0, "{counters:?}");
    assert_eq!(counters.total_disk_hits(), 6, "{counters:?}");
    assert_bit_identical(&results[0], &warm, "warm after the race");
    // No stray temp files survived the writers — only artifacts, their
    // access-stamp sidecars, and the root generation-counter file.
    for stage in fs::read_dir(&dir).unwrap().flatten() {
        if stage.path().is_file() {
            assert_eq!(
                stage.file_name().to_string_lossy(),
                "gen.ctr",
                "unexpected leftover file at the cache root"
            );
            continue;
        }
        for entry in fs::read_dir(stage.path()).unwrap().flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            assert!(
                name.ends_with(".dtc") || name.ends_with(".lru"),
                "unexpected leftover file {name:?} in the cache"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cache_dir_config_knob_and_env_var_attach_the_disk_tier() {
    let nl = test_netlist();
    let dir = temp_cache_dir("knob");

    let config = test_config().with_cache_dir(&dir);
    assert_eq!(config.resolved_cache_dir().as_deref(), Some(dir.as_path()));
    let session = DeterrentSession::new(&nl, config);
    assert_eq!(session.store().disk_dir(), Some(dir.as_path()));

    // Without the knob the session is memory-only (the env-var path cannot
    // be exercised here: setting process-wide environment variables would
    // race the other tests in this harness).
    let plain = test_config();
    if std::env::var_os(DeterrentConfig::CACHE_DIR_ENV).is_none() {
        assert_eq!(plain.resolved_cache_dir(), None);
        let session = DeterrentSession::new(&nl, plain);
        assert_eq!(session.store().disk_dir(), None);
    }
    let _ = fs::remove_dir_all(&dir);
}
