//! MiniSat-style variable order heap.
//!
//! A binary max-heap over variable indices keyed by VSIDS activity, with a
//! position index for O(log n) increase-key when an activity is bumped.
//! Replaces the O(vars) linear scan per decision: the solver pops the top
//! until it finds an unassigned variable and re-inserts variables as
//! backtracking unassigns them.
//!
//! The comparison order is **activity descending, variable index ascending**
//! — exactly the tie-breaking of the old linear scan (which kept the first,
//! i.e. lowest-index, variable among equals), so the heap picks the
//! identical decision variable at every step.

/// Indexed binary max-heap of variable indices, ordered by an external
/// activity array.
#[derive(Debug, Clone, Default)]
pub(crate) struct VarOrder {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// `pos[v]` = slot of `v` in `heap`, or `ABSENT`.
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

/// Strict total order: higher activity first, ties to the lower index.
fn before(activity: &[f64], a: u32, b: u32) -> bool {
    let (aa, ab) = (activity[a as usize], activity[b as usize]);
    aa > ab || (aa == ab && a < b)
}

impl VarOrder {
    /// Registers a fresh variable (index = current length of `pos`) and
    /// inserts it into the heap.
    pub(crate) fn push_new_var(&mut self, activity: &[f64]) {
        let v = self.pos.len() as u32;
        self.pos.push(ABSENT);
        self.insert(v, activity);
    }

    /// Whether `v` is currently in the heap.
    pub(crate) fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    /// Inserts `v` (no-op if present).
    pub(crate) fn insert(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        let slot = self.heap.len();
        self.heap.push(v);
        self.pos[v as usize] = slot as u32;
        self.sift_up(slot, activity);
    }

    /// Restores the heap property after `v`'s activity increased (no-op if
    /// `v` is not in the heap).
    pub(crate) fn bumped(&mut self, v: u32, activity: &[f64]) {
        let slot = self.pos[v as usize];
        if slot != ABSENT {
            self.sift_up(slot as usize, activity);
        }
    }

    /// Re-heapifies in place. Needed after a global activity rescale: the
    /// uniform scaling preserves relative order *except* when distinct tiny
    /// activities underflow to equal values, which flips their order to the
    /// index tie-break.
    pub(crate) fn rebuild(&mut self, activity: &[f64]) {
        for slot in (0..self.heap.len() / 2).rev() {
            self.sift_down(slot, activity);
        }
    }

    /// Removes and returns the maximum variable, or `None` if empty.
    pub(crate) fn pop(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = ABSENT;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut slot: usize, activity: &[f64]) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if before(activity, self.heap[slot], self.heap[parent]) {
                self.swap(slot, parent);
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize, activity: &[f64]) {
        loop {
            let left = 2 * slot + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let best_child =
                if right < self.heap.len() && before(activity, self.heap[right], self.heap[left]) {
                    right
                } else {
                    left
                };
            if before(activity, self.heap[best_child], self.heap[slot]) {
                self.swap(slot, best_child);
                slot = best_child;
            } else {
                break;
            }
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order_with_index_ties() {
        let activity = [1.0, 3.0, 3.0, 0.5, 3.0];
        let mut order = VarOrder::default();
        for _ in 0..activity.len() {
            order.push_new_var(&activity);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| order.pop(&activity)).collect();
        // Max activity first; among the 3.0s the lowest index wins.
        assert_eq!(popped, vec![1, 2, 4, 0, 3]);
    }

    #[test]
    fn bump_reorders_and_reinsert_is_idempotent() {
        let mut activity = vec![0.0; 4];
        let mut order = VarOrder::default();
        for _ in 0..4 {
            order.push_new_var(&activity);
        }
        activity[3] = 10.0;
        order.bumped(3, &activity);
        assert_eq!(order.pop(&activity), Some(3));
        assert!(!order.contains(3));
        order.insert(3, &activity);
        order.insert(3, &activity);
        assert!(order.contains(3));
        assert_eq!(order.pop(&activity), Some(3));
        assert_eq!(order.pop(&activity), Some(0));
    }
}
