//! Offline pairwise-compatibility computation over rare nets.

use netlist::Netlist;
use sat::CircuitOracle;
use sim::rare::{RareNet, RareNetAnalysis};

/// Pairwise compatibility of the rare nets of one design.
///
/// Two rare nets are *compatible* when a single input pattern can drive both
/// to their rare values simultaneously. DETERRENT computes this relation for
/// every pair offline (the paper parallelizes it across 64 processes) and
/// uses it for action masking and cheap per-step state transitions.
///
/// Rare nets are referred to by their index into
/// [`CompatibilityGraph::rare_nets`], which preserves the order of the
/// originating [`RareNetAnalysis`].
#[derive(Debug, Clone)]
pub struct CompatibilityGraph {
    rare_nets: Vec<RareNet>,
    /// Row-major adjacency matrix, `adj[i * n + j]`.
    adjacency: Vec<bool>,
    sat_queries: u64,
}

impl CompatibilityGraph {
    /// Computes the graph with `threads` worker threads (at least 1).
    ///
    /// Each worker owns its own SAT oracle over the same netlist, mirroring
    /// the per-process solvers of the paper's offline phase.
    ///
    /// Rare nets whose rare value is individually unjustifiable (possible
    /// when Monte-Carlo probability estimation reports ≈0 for a value the
    /// logic can never produce) are dropped up front: they can never be part
    /// of an activatable trigger, so neither the adversary nor the agent has
    /// any use for them.
    #[must_use]
    pub fn build(netlist: &Netlist, analysis: &RareNetAnalysis, threads: usize) -> Self {
        let mut filter_oracle = CircuitOracle::new(netlist);
        let mut singleton_queries = 0u64;
        let rare_nets: Vec<RareNet> = analysis
            .rare_nets()
            .iter()
            .copied()
            .filter(|r| {
                singleton_queries += 1;
                filter_oracle.is_compatible(&[(r.net, r.rare_value)])
            })
            .collect();
        let n = rare_nets.len();
        let mut adjacency = vec![false; n * n];
        if n == 0 {
            return Self {
                rare_nets,
                adjacency,
                sat_queries: singleton_queries,
            };
        }

        // All unordered pairs (i < j).
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let threads = threads.max(1).min(pairs.len().max(1));
        let chunk_size = pairs.len().div_ceil(threads);

        let mut results: Vec<(usize, usize, bool)> = Vec::with_capacity(pairs.len());
        let mut total_queries = 0u64;
        if threads <= 1 || pairs.len() < 64 {
            let mut oracle = CircuitOracle::new(netlist);
            for &(i, j) in &pairs {
                let compatible = oracle.is_compatible(&[
                    (rare_nets[i].net, rare_nets[i].rare_value),
                    (rare_nets[j].net, rare_nets[j].rare_value),
                ]);
                results.push((i, j, compatible));
            }
            total_queries = oracle.num_queries();
        } else {
            let chunks: Vec<&[(usize, usize)]> = pairs.chunks(chunk_size).collect();
            let worker_outputs = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in &chunks {
                    let chunk: Vec<(usize, usize)> = chunk.to_vec();
                    let rare_nets = &rare_nets;
                    handles.push(scope.spawn(move |_| {
                        let mut oracle = CircuitOracle::new(netlist);
                        let mut out = Vec::with_capacity(chunk.len());
                        for (i, j) in chunk {
                            let compatible = oracle.is_compatible(&[
                                (rare_nets[i].net, rare_nets[i].rare_value),
                                (rare_nets[j].net, rare_nets[j].rare_value),
                            ]);
                            out.push((i, j, compatible));
                        }
                        (out, oracle.num_queries())
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("compatibility worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("compatibility thread scope");
            for (chunk_results, queries) in worker_outputs {
                results.extend(chunk_results);
                total_queries += queries;
            }
        }

        for (i, j, compatible) in results {
            adjacency[i * n + j] = compatible;
            adjacency[j * n + i] = compatible;
        }

        Self {
            rare_nets,
            adjacency,
            sat_queries: singleton_queries + total_queries,
        }
    }

    /// The rare nets the graph is defined over, in analysis order.
    #[must_use]
    pub fn rare_nets(&self) -> &[RareNet] {
        &self.rare_nets
    }

    /// Number of rare nets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rare_nets.len()
    }

    /// Returns `true` when there are no rare nets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rare_nets.is_empty()
    }

    /// Whether rare nets `i` and `j` are pairwise compatible.
    ///
    /// A net is not considered compatible with itself (adding a net twice is
    /// never useful).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn is_compatible(&self, i: usize, j: usize) -> bool {
        assert!(i < self.len() && j < self.len(), "rare-net index out of range");
        i != j && self.adjacency[i * self.len() + j]
    }

    /// Whether `candidate` is pairwise compatible with every member of `set`.
    #[must_use]
    pub fn compatible_with_all(&self, set: &[usize], candidate: usize) -> bool {
        !set.contains(&candidate) && set.iter().all(|&m| self.is_compatible(m, candidate))
    }

    /// Degree (number of compatible partners) of rare net `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn degree(&self, i: usize) -> usize {
        assert!(i < self.len(), "rare-net index out of range");
        (0..self.len()).filter(|&j| self.is_compatible(i, j)).count()
    }

    /// Number of compatible (unordered) pairs.
    #[must_use]
    pub fn num_compatible_pairs(&self) -> usize {
        let n = self.len();
        (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .filter(|&(i, j)| self.is_compatible(i, j))
            .count()
    }

    /// Total SAT queries spent building the graph.
    #[must_use]
    pub fn sat_queries(&self) -> u64 {
        self.sat_queries
    }

    /// The `(net, rare_value)` targets of the rare nets selected by `set`
    /// (indices into [`CompatibilityGraph::rare_nets`]).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn targets(&self, set: &[usize]) -> Vec<(netlist::NetId, bool)> {
        set.iter()
            .map(|&i| (self.rare_nets[i].net, self.rare_nets[i].rare_value))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn graph_is_symmetric_and_irreflexive() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(7);
        let analysis = RareNetAnalysis::estimate(&nl, 0.15, 2048, 1);
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        assert!(graph.len() <= analysis.len());
        for i in 0..graph.len() {
            assert!(!graph.is_compatible(i, i));
            for j in 0..graph.len() {
                assert_eq!(graph.is_compatible(i, j), graph.is_compatible(j, i));
            }
        }
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        let nl = BenchmarkProfile::c5315().scaled(40).generate(3);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 2);
        let serial = CompatibilityGraph::build(&nl, &analysis, 1);
        let parallel = CompatibilityGraph::build(&nl, &analysis, 4);
        assert_eq!(serial.adjacency, parallel.adjacency);
    }

    #[test]
    fn matches_direct_sat_queries() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(5);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 3);
        let graph = CompatibilityGraph::build(&nl, &analysis, 1);
        let mut oracle = CircuitOracle::new(&nl);
        let rare = graph.rare_nets();
        for i in 0..graph.len().min(8) {
            for j in (i + 1)..graph.len().min(8) {
                let expect = oracle.is_compatible(&[
                    (rare[i].net, rare[i].rare_value),
                    (rare[j].net, rare[j].rare_value),
                ]);
                assert_eq!(graph.is_compatible(i, j), expect, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn mutually_exclusive_rare_values_are_incompatible() {
        // In the majority circuit at threshold 0.45, both polarities of many
        // nets are not rare, but t_0_1_2=1 and the OR output maj=0 cannot hold
        // together (any satisfied AND3 term forces maj=1).
        let nl = samples::majority5();
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.45);
        let graph = CompatibilityGraph::build(&nl, &analysis, 1);
        let t = nl.net_by_name("t_0_1_2").unwrap();
        let maj = nl.net_by_name("maj").unwrap();
        let ti = graph.rare_nets().iter().position(|r| r.net == t);
        let mi = graph.rare_nets().iter().position(|r| r.net == maj);
        if let (Some(ti), Some(mi)) = (ti, mi) {
            // t rare value is 1 (p=0.125); maj rare value is 0 (p=0.5)? maj has
            // p(1)=0.5 so it is not rare at 0.45; guard for that case.
            assert!(!graph.is_compatible(ti, mi) || graph.rare_nets()[mi].rare_value);
        }
        assert!(graph.num_compatible_pairs() <= graph.len() * (graph.len().saturating_sub(1)) / 2);
    }

    #[test]
    fn compatible_with_all_and_degree() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(9);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 4);
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        if graph.len() >= 3 {
            // A singleton set is compatible with any neighbour of its element.
            for j in 0..graph.len() {
                assert_eq!(
                    graph.compatible_with_all(&[0], j),
                    graph.is_compatible(0, j)
                );
            }
            // A member is never compatible with a set containing it.
            assert!(!graph.compatible_with_all(&[1], 1));
            let _ = graph.degree(0);
        }
        assert!(graph.sat_queries() > 0 || graph.len() <= 1);
    }

    #[test]
    fn empty_analysis_gives_empty_graph() {
        let nl = samples::c17();
        // c17 NANDs have no nets below 0.15 — but be robust either way.
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.01);
        let graph = CompatibilityGraph::build(&nl, &analysis, 4);
        assert!(graph.len() <= analysis.len());
        if graph.is_empty() {
            assert_eq!(graph.num_compatible_pairs(), 0);
        }
    }
}
