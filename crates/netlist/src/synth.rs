//! Deterministic synthetic benchmark generation.
//!
//! The DETERRENT evaluation uses the ISCAS-85/89 benchmarks (c2670, c5315,
//! c6288, c7552, s13207, s15850, s35932) and an OpenCores 16-bit MIPS
//! processor. Those netlists are not redistributed with this repository, so
//! we reproduce the *profile* of each benchmark instead: a seeded random
//! circuit with the same order of gate count, input/flip-flop count, and a
//! comparable population of rare nets at the paper's default rareness
//! threshold of 0.1 (see `DESIGN.md` for the substitution rationale).
//!
//! Rare nets are created explicitly by planting *rare cones* — trees of
//! AND/NOR gates over independent signals — whose activation probability is
//! approximately `2^-w` for a cone of width `w`. The rest of the circuit is
//! random 1–3-input glue logic, which also contributes moderately rare nets,
//! exactly as real designs do.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{GateKind, NetId, Netlist, NetlistBuilder};

/// Size/shape description of a synthetic benchmark.
///
/// Use one of the associated constructors ([`BenchmarkProfile::c2670`], …) for
/// the circuits evaluated in the paper, or fill the fields directly for custom
/// sweeps. All generation is deterministic given the profile and a seed.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BenchmarkProfile {
    /// Design name used for the generated netlist.
    pub name: String,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of scan flip-flops (0 for the combinational ISCAS-85 circuits).
    pub num_flip_flops: usize,
    /// Total number of combinational gates to generate (excluding
    /// inputs/flip-flops).
    pub num_gates: usize,
    /// Number of rare cones to plant. Each cone contributes one or more nets
    /// whose signal probability is below the default 0.1 threshold.
    pub rare_cones: usize,
    /// Width range (inclusive) of planted rare cones; probability ≈ `2^-w`.
    pub rare_cone_width: (usize, usize),
}

impl BenchmarkProfile {
    /// Profile mirroring ISCAS-85 c2670 (775 gates, 43 rare nets in Table 2).
    #[must_use]
    pub fn c2670() -> Self {
        Self::combinational("c2670", 157, 64, 775, 45)
    }

    /// Profile mirroring ISCAS-85 c5315 (2307 gates, 165 rare nets).
    #[must_use]
    pub fn c5315() -> Self {
        Self::combinational("c5315", 178, 123, 2307, 165)
    }

    /// Profile mirroring ISCAS-85 c6288 (2416 gates, 186 rare nets).
    #[must_use]
    pub fn c6288() -> Self {
        Self::combinational("c6288", 32, 32, 2416, 186)
    }

    /// Profile mirroring ISCAS-85 c7552 (3513 gates, 282 rare nets).
    #[must_use]
    pub fn c7552() -> Self {
        Self::combinational("c7552", 207, 108, 3513, 282)
    }

    /// Profile mirroring ISCAS-89 s13207 (1801 gates, 604 rare nets, full scan).
    #[must_use]
    pub fn s13207() -> Self {
        Self::sequential("s13207", 62, 152, 638, 1801, 604)
    }

    /// Profile mirroring ISCAS-89 s15850 (2412 gates, 649 rare nets, full scan).
    #[must_use]
    pub fn s15850() -> Self {
        Self::sequential("s15850", 77, 150, 534, 2412, 649)
    }

    /// Profile mirroring ISCAS-89 s35932 (4736 gates, 1151 rare nets, full scan).
    #[must_use]
    pub fn s35932() -> Self {
        Self::sequential("s35932", 35, 320, 1728, 4736, 1151)
    }

    /// Profile mirroring the OpenCores 16-bit MIPS processor (23511 gates,
    /// 1005 rare nets, full scan).
    #[must_use]
    pub fn mips() -> Self {
        Self::sequential("MIPS", 64, 64, 540, 23511, 1005)
    }

    /// All eight benchmark profiles in the order of Table 2 of the paper.
    #[must_use]
    pub fn table2() -> Vec<Self> {
        vec![
            Self::c2670(),
            Self::c5315(),
            Self::c6288(),
            Self::c7552(),
            Self::s13207(),
            Self::s15850(),
            Self::s35932(),
            Self::mips(),
        ]
    }

    fn combinational(
        name: &str,
        num_inputs: usize,
        num_outputs: usize,
        num_gates: usize,
        rare_cones: usize,
    ) -> Self {
        Self {
            name: name.to_string(),
            num_inputs,
            num_outputs,
            num_flip_flops: 0,
            num_gates,
            rare_cones,
            rare_cone_width: (4, 6),
        }
    }

    fn sequential(
        name: &str,
        num_inputs: usize,
        num_outputs: usize,
        num_flip_flops: usize,
        num_gates: usize,
        rare_cones: usize,
    ) -> Self {
        Self {
            name: name.to_string(),
            num_inputs,
            num_outputs,
            num_flip_flops,
            num_gates,
            rare_cones,
            rare_cone_width: (4, 6),
        }
    }

    /// Returns a copy of the profile scaled down by `factor` (gate count,
    /// rare cones, I/O and flip-flop counts are divided by `factor`, with
    /// sensible minimums). Used by the test suite and the default benchmark
    /// harness so full pipelines finish in seconds rather than hours; pass
    /// `--full` to the bench binaries to run the paper-sized profiles.
    #[must_use]
    pub fn scaled(&self, factor: usize) -> Self {
        let factor = factor.max(1);
        Self {
            name: format!("{}_div{}", self.name, factor),
            // Keep a healthy number of primary inputs even at aggressive
            // scales: controllability is what makes rare triggers satisfiable,
            // and the experiments need satisfiable multi-net triggers.
            num_inputs: (self.num_inputs / factor).max(24).min(self.num_inputs),
            num_outputs: (self.num_outputs / factor).max(4).min(self.num_outputs),
            num_flip_flops: if self.num_flip_flops == 0 {
                0
            } else {
                (self.num_flip_flops / factor).max(4)
            },
            num_gates: (self.num_gates / factor).max(32),
            rare_cones: (self.rare_cones / factor).max(6),
            rare_cone_width: self.rare_cone_width,
        }
    }

    /// Generates the netlist for this profile with the given RNG seed.
    ///
    /// Generation is deterministic: the same profile and seed always produce
    /// an identical netlist.
    ///
    /// # Panics
    ///
    /// Panics if the profile is degenerate (zero inputs or zero gates); the
    /// built-in profiles never are.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Netlist {
        assert!(self.num_inputs > 0, "profile must have at least one input");
        assert!(self.num_gates > 0, "profile must have at least one gate");
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&self.name));
        let mut b = NetlistBuilder::new(self.name.clone());

        let mut pool: Vec<NetId> = Vec::new();
        for i in 0..self.num_inputs {
            pool.push(b.input(format!("pi{i}")));
        }
        let mut flops = Vec::new();
        for i in 0..self.num_flip_flops {
            // Placeholder data input (patched at the end).
            let q = b.dff(format!("ff{i}"), pool[0]);
            flops.push(q);
            pool.push(q);
        }

        let glue_kinds = [
            (GateKind::Nand, 30u32),
            (GateKind::Nor, 14),
            (GateKind::And, 16),
            (GateKind::Or, 14),
            (GateKind::Not, 10),
            (GateKind::Xor, 8),
            (GateKind::Xnor, 4),
            (GateKind::Buf, 4),
        ];
        let total_weight: u32 = glue_kinds.iter().map(|&(_, w)| w).sum();

        // Interleave rare cones uniformly through the glue logic so their
        // support signals span the whole circuit depth.
        let mut gates_left = self.num_gates;
        let mut cones_left = self.rare_cones;
        let mut gate_idx = 0usize;
        let cone_every = if self.rare_cones == 0 {
            usize::MAX
        } else {
            (self.num_gates / self.rare_cones.max(1)).max(1)
        };

        while gates_left > 0 {
            let plant_cone = cones_left > 0 && gate_idx % cone_every == cone_every - 1;
            if plant_cone {
                let width = rng.gen_range(self.rare_cone_width.0..=self.rare_cone_width.1);
                let used = plant_rare_cone(&mut b, &mut pool, &mut rng, width, gate_idx);
                gates_left = gates_left.saturating_sub(used);
                cones_left -= 1;
            } else {
                let mut pick = rng.gen_range(0..total_weight);
                let mut kind = GateKind::Nand;
                for &(k, w) in &glue_kinds {
                    if pick < w {
                        kind = k;
                        break;
                    }
                    pick -= w;
                }
                let arity = match kind {
                    GateKind::Not | GateKind::Buf => 1,
                    _ => rng.gen_range(2..=3),
                };
                let fanin = pick_fanins(&pool, &mut rng, arity);
                let id = b
                    .gate(kind, format!("g{gate_idx}"), &fanin)
                    .expect("generated gate is valid");
                pool.push(id);
                gates_left -= 1;
            }
            gate_idx += 1;
        }

        // Patch flip-flop data inputs to random internal signals.
        let internal_start = self.num_inputs + self.num_flip_flops;
        for &q in &flops {
            let data = if pool.len() > internal_start {
                pool[rng.gen_range(internal_start..pool.len())]
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            b.set_dff_data(q, data).expect("flop exists");
        }

        // Primary outputs: prefer signals near the end of the pool (deepest).
        let candidates: Vec<NetId> =
            pool[internal_start.min(pool.len().saturating_sub(1))..].to_vec();
        let mut outs: Vec<NetId> = candidates;
        outs.shuffle(&mut rng);
        for &o in outs.iter().take(self.num_outputs.max(1)) {
            b.output(o);
        }

        b.build().expect("generated netlist is structurally valid")
    }
}

/// Plants a rare cone of the given width and returns how many gates it used.
///
/// The cone is a balanced AND/NOR tree over `width` distinct support signals;
/// its root has signal probability roughly `2^-width` (ANDs) or the dual for
/// NOR roots, far below the 0.1 rareness threshold for `width >= 4`.
fn plant_rare_cone(
    b: &mut NetlistBuilder,
    pool: &mut Vec<NetId>,
    rng: &mut StdRng,
    width: usize,
    gate_idx: usize,
) -> usize {
    let support = pick_fanins(pool, rng, width.max(2));
    let invert_root = rng.gen_bool(0.3);
    let mut layer = support;
    let mut used = 0usize;
    let mut level = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for (j, chunk) in layer.chunks(2).enumerate() {
            if chunk.len() == 1 {
                next.push(chunk[0]);
                continue;
            }
            let kind = if layer.len() == 2 && invert_root {
                GateKind::Nor
            } else {
                GateKind::And
            };
            let id = b
                .gate(kind, format!("rc{gate_idx}_{level}_{j}"), chunk)
                .expect("generated cone gate is valid");
            used += 1;
            next.push(id);
        }
        layer = next;
        level += 1;
    }
    pool.push(layer[0]);
    used
}

fn pick_fanins(pool: &[NetId], rng: &mut StdRng, arity: usize) -> Vec<NetId> {
    let arity = arity.min(pool.len());
    let mut chosen = Vec::with_capacity(arity);
    let mut guard = 0;
    while chosen.len() < arity && guard < 64 * arity {
        guard += 1;
        // Bias toward recently created signals for depth, but keep a healthy
        // mix of primary inputs for controllability.
        let idx = if rng.gen_bool(0.6) && pool.len() > 8 {
            let lo = pool.len() * 3 / 4;
            rng.gen_range(lo..pool.len())
        } else {
            rng.gen_range(0..pool.len())
        };
        let cand = pool[idx];
        if !chosen.contains(&cand) {
            chosen.push(cand);
        }
    }
    if chosen.is_empty() {
        chosen.push(pool[0]);
    }
    chosen
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each profile gets a distinct but reproducible RNG stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn generation_is_deterministic() {
        let p = BenchmarkProfile::c2670().scaled(10);
        let a = p.generate(7);
        let c = p.generate(7);
        assert_eq!(bench::write(&a), bench::write(&c));
    }

    #[test]
    fn different_seeds_differ() {
        let p = BenchmarkProfile::c2670().scaled(10);
        let a = p.generate(1);
        let c = p.generate(2);
        assert_ne!(bench::write(&a), bench::write(&c));
    }

    #[test]
    fn gate_count_close_to_profile() {
        let p = BenchmarkProfile::c5315().scaled(8);
        let nl = p.generate(3);
        let target = p.num_gates;
        let got = nl.num_logic_gates();
        assert!(
            got >= target && got <= target + 8,
            "expected ~{target} gates, got {got}"
        );
    }

    #[test]
    fn sequential_profile_has_flops() {
        let p = BenchmarkProfile::s13207().scaled(16);
        let nl = p.generate(11);
        assert!(!nl.flip_flops().is_empty());
        assert_eq!(nl.flip_flops().len(), p.num_flip_flops);
    }

    #[test]
    fn all_table2_profiles_have_distinct_names() {
        let names: Vec<String> = BenchmarkProfile::table2()
            .into_iter()
            .map(|p| p.name)
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn scaled_profile_is_smaller() {
        let full = BenchmarkProfile::mips();
        let small = full.scaled(64);
        assert!(small.num_gates < full.num_gates);
        assert!(small.num_gates >= 32);
    }

    #[test]
    fn generated_netlist_round_trips_through_bench_format() {
        let nl = BenchmarkProfile::c6288().scaled(20).generate(5);
        let text = bench::write(&nl);
        let back = bench::parse(nl.name(), &text).expect("round trip");
        assert_eq!(back.num_gates(), nl.num_gates());
    }
}
