//! Configuration of the DETERRENT pipeline.

use rl::PpoConfig;

use crate::CompatStrategy;

/// When the agent receives its reward (Section 3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RewardMode {
    /// Reward `|s_{t+1}|²` at every compatible step (the final architecture).
    #[default]
    AllSteps,
    /// Reward 0 at intermediate steps and `|s_T|²` at the end of the episode
    /// (the faster but slightly weaker variant of Table 1).
    EndOfEpisode,
}

/// How a candidate action's compatibility with the current state is checked
/// during an environment step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompatCheck {
    /// Use the precomputed pairwise-compatibility graph (the final
    /// architecture; cheap per step).
    #[default]
    PairwiseGraph,
    /// Run a full SAT justification of `state ∪ {action}` on every step (the
    /// naive formulation of Section 3.1; faithful to the paper's "a few
    /// seconds per check" bottleneck and used by the Table 1 ablation).
    ExactSat,
}

/// Every knob of the DETERRENT pipeline.
///
/// The defaults correspond to the paper's final architecture: all-steps
/// reward, action masking, pairwise-graph compatibility checks, and boosted
/// exploration (entropy coefficient 1.0, GAE λ = 0.99).
#[derive(Debug, Clone, PartialEq)]
pub struct DeterrentConfig {
    /// Rareness threshold θ below which nets count as rare (paper default 0.1).
    pub rareness_threshold: f64,
    /// Number of random patterns used to estimate signal probabilities.
    pub probability_patterns: usize,
    /// Reward schedule.
    pub reward_mode: RewardMode,
    /// Whether invalid actions are masked out (Section 3.3).
    pub masking: bool,
    /// Per-step compatibility check implementation.
    pub compat_check: CompatCheck,
    /// How the offline pairwise-compatibility graph is computed: the
    /// simulation-first funnel (default) or one SAT query per pair (the
    /// paper's offline phase). Both yield bit-identical graphs.
    pub compat_strategy: CompatStrategy,
    /// PPO hyper-parameters (entropy coefficient and λ implement Section 3.4).
    pub ppo: PpoConfig,
    /// Number of training episodes.
    pub episodes: usize,
    /// Episode length `T` (maximum actions per episode).
    pub steps_per_episode: usize,
    /// Number of greedy evaluation rollouts used to harvest additional
    /// maximal sets after training.
    pub eval_rollouts: usize,
    /// `k` — how many of the largest distinct compatible sets become test
    /// patterns.
    pub k_patterns: usize,
    /// Worker threads of the deterministic parallel runtime, driving
    /// probability estimation, witness harvesting, every compatibility-funnel
    /// tier, and PPO rollout collection (the paper throws 64 processes at the
    /// offline phase). `0` resolves through [`exec::Exec::new`]: the
    /// `DETERRENT_THREADS` environment variable when set, otherwise all
    /// available cores. Results are bit-identical at any thread count.
    pub threads: usize,
    /// Episodes collected per frozen-policy round during parallel rollout
    /// collection. Fixed independently of the thread count so trajectories
    /// (and therefore training) do not depend on the hardware.
    pub rollout_round: usize,
    /// RNG seed controlling every stochastic component.
    pub seed: u64,
}

impl Default for DeterrentConfig {
    fn default() -> Self {
        Self {
            rareness_threshold: 0.1,
            probability_patterns: 16 * 1024,
            reward_mode: RewardMode::AllSteps,
            masking: true,
            compat_check: CompatCheck::PairwiseGraph,
            compat_strategy: CompatStrategy::default(),
            ppo: PpoConfig::boosted_exploration(),
            episodes: 300,
            steps_per_episode: 64,
            eval_rollouts: 64,
            k_patterns: 32,
            threads: 0,
            rollout_round: 8,
            seed: 0xDE7E88EA7,
        }
    }
}

impl DeterrentConfig {
    /// A configuration sized for unit tests and examples: few episodes, small
    /// networks, small pattern budgets. Finishes in well under a second on
    /// scaled-down benchmark profiles.
    #[must_use]
    pub fn fast_preset() -> Self {
        Self {
            probability_patterns: 4096,
            ppo: PpoConfig {
                hidden_sizes: vec![32, 32],
                batch_size: 128,
                ..PpoConfig::boosted_exploration()
            },
            episodes: 60,
            steps_per_episode: 24,
            eval_rollouts: 16,
            k_patterns: 16,
            ..Self::default()
        }
    }

    /// The paper-style configuration used by the full benchmark harness:
    /// longer training and larger networks.
    #[must_use]
    pub fn paper_preset() -> Self {
        Self {
            episodes: 2000,
            steps_per_episode: 128,
            eval_rollouts: 256,
            k_patterns: 64,
            rollout_round: 16,
            ..Self::default()
        }
    }

    /// Returns a copy with the reward/masking ablation of Figure 2 applied.
    #[must_use]
    pub fn with_ablation(mut self, reward_mode: RewardMode, masking: bool) -> Self {
        self.reward_mode = reward_mode;
        self.masking = masking;
        self
    }

    /// Returns a copy with default (non-boosted) exploration, for the
    /// Figure 3 comparison.
    #[must_use]
    pub fn with_default_exploration(mut self) -> Self {
        self.ppo.entropy_coef = 0.01;
        self.ppo.gae_lambda = 0.95;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_final_architecture() {
        let c = DeterrentConfig::default();
        assert_eq!(c.reward_mode, RewardMode::AllSteps);
        assert!(c.masking);
        assert_eq!(c.compat_check, CompatCheck::PairwiseGraph);
        assert!(matches!(c.compat_strategy, CompatStrategy::Funnel(_)));
        assert!((c.ppo.entropy_coef - 1.0).abs() < 1e-12);
        assert!((c.ppo.gae_lambda - 0.99).abs() < 1e-12);
        assert!((c.rareness_threshold - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ablation_builder() {
        let c = DeterrentConfig::default().with_ablation(RewardMode::EndOfEpisode, false);
        assert_eq!(c.reward_mode, RewardMode::EndOfEpisode);
        assert!(!c.masking);
    }

    #[test]
    fn exploration_toggle() {
        let c = DeterrentConfig::default().with_default_exploration();
        assert!(c.ppo.entropy_coef < 0.5);
        assert!(c.ppo.gae_lambda < 0.99);
    }

    #[test]
    fn presets_differ_in_scale() {
        assert!(DeterrentConfig::fast_preset().episodes < DeterrentConfig::paper_preset().episodes);
    }
}
