//! A minimal, dependency-free JSON value with a canonical writer and a
//! strict parser.
//!
//! Two properties matter for telemetry and are easier to guarantee in ~300
//! lines than to audit in a general-purpose library:
//!
//! - **Canonical output.** Objects are [`BTreeMap`]s, so keys serialize in
//!   sorted order and the same value always produces the same bytes. The
//!   thread-count-invariance gate (`trace-check --canonical`) depends on
//!   this.
//! - **Byte-exact numbers.** [`Value::Num`] stores the number as its raw
//!   source token instead of an `f64`, so parsing a trace line and
//!   re-serializing it round-trips without floating-point drift.

use std::collections::BTreeMap;

/// A JSON value. Numbers are kept as raw literal tokens (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as the literal token it was built or parsed from.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a number value from a `u64`.
    #[must_use]
    pub fn u64(n: u64) -> Self {
        Value::Num(n.to_string())
    }

    /// Builds a number value from an `i64`.
    #[must_use]
    pub fn i64(n: i64) -> Self {
        Value::Num(n.to_string())
    }

    /// Builds a number value from an `f64`. Non-finite values have no JSON
    /// representation and map to `null`.
    #[must_use]
    pub fn f64(n: f64) -> Self {
        if n.is_finite() {
            Value::Num(format!("{n}"))
        } else {
            Value::Null
        }
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// The value as a `u64`, if it is a non-negative integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Serializes the value to its canonical single-line JSON text.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

/// Builds an object value from `(key, value)` pairs (later duplicates win).
#[must_use]
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(tok) => out.push_str(tok),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number token is ASCII")
            .to_string();
        Ok(Value::Num(token))
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require a trailing \uXXXX
                                // low surrogate and combine the pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded char. Input is a &str, so
                    // the encoding is already valid; find its end.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peeked byte exists");
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonically() {
        let text = r#"{"b":1,"a":[true,null,"x\ny",-0.25,1e3],"c":{"k":"\u00e9"}}"#;
        let value = parse(text).unwrap();
        let canonical = value.to_json();
        assert_eq!(
            canonical,
            r#"{"a":[true,null,"x\ny",-0.25,1e3],"b":1,"c":{"k":"é"}}"#
        );
        // Canonical text is a fixed point.
        assert_eq!(parse(&canonical).unwrap().to_json(), canonical);
    }

    #[test]
    fn numbers_keep_their_raw_token() {
        let value = parse("0.30000000000000004").unwrap();
        assert_eq!(value.to_json(), "0.30000000000000004");
        assert_eq!(Value::f64(0.15).to_json(), "0.15");
        assert_eq!(Value::u64(u64::MAX).as_u64(), Some(u64::MAX));
        assert_eq!(Value::f64(f64::NAN), Value::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "1 2", "\"\\x\"", "01a", "nul"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let value = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(value.as_str(), Some("😀"));
        assert!(parse("\"\\ud83d\"").is_err());
    }
}
