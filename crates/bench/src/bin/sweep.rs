//! Perf-trajectory benchmark: a timed fig7-style rareness-threshold sweep
//! that emits a schema-versioned `BENCH_sweep.json` for CI to archive.
//!
//! The sweep runs the full pipeline at four θ values over one shared
//! artifact store, twice: cold (empty store) and warm (same store again).
//! With the split analyze stage the cold sweep performs exactly **one**
//! Monte-Carlo probability estimation — the estimate artifact is keyed
//! without θ — and the warm sweep recomputes nothing; both facts are
//! asserted here, and the wall-clock numbers plus per-stage cache hit
//! rates land in the JSON report so regressions show up as a trajectory,
//! not an anecdote.
//!
//! ```text
//! cargo run --release -p deterrent-bench --bin sweep -- --out BENCH_sweep.json
//! ```
//!
//! The human-readable summary goes to stderr; stdout stays silent so the
//! binary composes with shell pipelines.

use std::time::Instant;

use deterrent_bench::{print_store_summary, HarnessOptions};
use deterrent_core::{ArtifactStore, DeterrentSession, StoreCounters};
use netlist::synth::BenchmarkProfile;

/// Bump when a field changes meaning or disappears; adding fields is
/// backward-compatible and needs no bump.
const SCHEMA_VERSION: u32 = 1;

const THETAS: [f64; 4] = [0.10, 0.11, 0.12, 0.14];

fn out_path() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sweep.json".to_string())
}

/// One full-pipeline pass over every θ; returns total patterns generated
/// (a cheap checksum that the sweep really ran end to end).
fn run_sweep(netlist: &netlist::Netlist, options: &HarnessOptions, store: &ArtifactStore) -> usize {
    THETAS
        .iter()
        .map(|&theta| {
            let config = options.deterrent_config().with_threshold(theta);
            let mut session = DeterrentSession::with_store(netlist, config, store.clone());
            let rare = session.analyze();
            session.run_from(&rare).test_length()
        })
        .sum()
}

/// `"stage": {"mem_hits": H, "disk_hits": D, "computed": C, "hit_rate": R}`
/// for every stage, from the counter *delta* of one sweep pass.
fn stages_json(before: &StoreCounters, after: &StoreCounters) -> String {
    let entries: Vec<String> = after
        .stages()
        .iter()
        .zip(before.stages().iter())
        .map(|((stage, a), (_, b))| {
            let (hits, disk_hits, computed) = (
                a.hits - b.hits,
                a.disk_hits - b.disk_hits,
                a.misses - b.misses,
            );
            let lookups = hits + disk_hits + computed;
            let rate = if lookups == 0 {
                0.0
            } else {
                (hits + disk_hits) as f64 / lookups as f64
            };
            format!(
                "\"{stage}\": {{\"mem_hits\": {hits}, \"disk_hits\": {disk_hits}, \
                 \"computed\": {computed}, \"hit_rate\": {rate:.4}}}"
            )
        })
        .collect();
    format!("{{{}}}", entries.join(", "))
}

fn main() {
    let options = HarnessOptions::from_args();
    let profile = BenchmarkProfile::c6288();
    let netlist = options.netlist(&profile);
    let store = options.store();
    let zero = StoreCounters::default();

    let cold_start = Instant::now();
    let cold_patterns = run_sweep(&netlist, &options, &store);
    let cold_seconds = cold_start.elapsed().as_secs_f64();
    let after_cold = store.counters();

    let warm_start = Instant::now();
    let warm_patterns = run_sweep(&netlist, &options, &store);
    let warm_seconds = warm_start.elapsed().as_secs_f64();
    let after_warm = store.counters();

    // The contract this benchmark exists to track: one estimation per
    // (netlist, seed) however many θ the sweep visits, and a warm sweep
    // that recomputes nothing.
    let estimation_runs_cold = after_cold.estimate.misses + after_cold.estimate.disk_hits;
    assert_eq!(
        estimation_runs_cold, 1,
        "cold sweep must pay for estimation exactly once: {after_cold:?}"
    );
    let warm_computed = after_warm.total_misses() - after_cold.total_misses();
    assert_eq!(
        warm_computed, 0,
        "warm sweep must recompute nothing: {after_warm:?}"
    );
    assert_eq!(cold_patterns, warm_patterns, "cache changed the results");

    let thetas: Vec<String> = THETAS.iter().map(|t| t.to_string()).collect();
    let json = format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"benchmark\": \"theta_sweep\",\n  \
         \"netlist\": \"{}\",\n  \"gates\": {},\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"thetas\": [{}],\n  \"cold_wall_seconds\": {cold_seconds:.6},\n  \
         \"warm_wall_seconds\": {warm_seconds:.6},\n  \
         \"estimation_runs_cold\": {estimation_runs_cold},\n  \
         \"estimation_runs_warm\": {warm_computed},\n  \
         \"total_patterns\": {cold_patterns},\n  \
         \"cold_stages\": {},\n  \"warm_stages\": {}\n}}\n",
        profile.name,
        netlist.num_logic_gates(),
        options.scale,
        options.seed,
        thetas.join(", "),
        stages_json(&zero, &after_cold),
        stages_json(&after_cold, &after_warm),
    );
    let path = out_path();
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));

    eprintln!(
        "[sweep] {} θ values on {} ({} gates): cold {cold_seconds:.3}s, warm {warm_seconds:.3}s, \
         1 estimation — report at {path}",
        THETAS.len(),
        profile.name,
        netlist.num_logic_gates()
    );
    print_store_summary(&store);
    if options.expect_warm {
        deterrent_bench::assert_warm(&store);
    }
}
