//! Gate kinds and two-valued logic evaluation.

use std::fmt;

/// A two-valued logic level.
///
/// The simulator uses 64-way packed words for speed, but scalar evaluation is
/// convenient for reference models, tests, and the SAT encoder.
pub type Logic = bool;

/// The functional kind of a gate in a [`crate::Netlist`].
///
/// The set of kinds mirrors the primitives found in ISCAS-85/89 `.bench`
/// files plus explicit constants. Every gate drives exactly one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// D flip-flop. Under the full-scan assumption its output is a pseudo
    /// primary input and its single fanin is a pseudo primary output.
    Dff,
    /// Buffer (identity).
    Buf,
    /// Inverter.
    Not,
    /// Logical AND of all fanins.
    And,
    /// Logical NAND of all fanins.
    Nand,
    /// Logical OR of all fanins.
    Or,
    /// Logical NOR of all fanins.
    Nor,
    /// Logical XOR (parity) of all fanins.
    Xor,
    /// Logical XNOR (inverted parity) of all fanins.
    Xnor,
    /// Constant logic 0 (no fanin).
    Const0,
    /// Constant logic 1 (no fanin).
    Const1,
}

impl GateKind {
    /// Returns `true` for kinds that take no fanin ([`Input`](Self::Input),
    /// [`Const0`](Self::Const0), [`Const1`](Self::Const1)).
    #[must_use]
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Returns `true` if the gate is combinational (i.e. not an
    /// [`Input`](Self::Input) and not a [`Dff`](Self::Dff)).
    #[must_use]
    pub fn is_combinational(self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Dff) && !self.is_source()
            || matches!(self, GateKind::Const0 | GateKind::Const1)
    }

    /// Minimum number of fanins the kind requires.
    #[must_use]
    pub fn min_fanin(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Dff | GateKind::Buf | GateKind::Not => 1,
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => 1,
        }
    }

    /// Maximum number of fanins the kind allows (`usize::MAX` when unbounded).
    #[must_use]
    pub fn max_fanin(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Dff | GateKind::Buf | GateKind::Not => 1,
            _ => usize::MAX,
        }
    }

    /// Evaluates the gate function on scalar logic values.
    ///
    /// [`Input`](Self::Input) and [`Dff`](Self::Dff) simply forward the first
    /// fanin value if one is provided, otherwise `false`; callers normally
    /// supply their values directly instead of evaluating them.
    ///
    /// # Panics
    ///
    /// Does not panic; an empty fanin slice evaluates constants and identity
    /// kinds to their natural default.
    #[must_use]
    pub fn eval(self, fanin: &[Logic]) -> Logic {
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Input | GateKind::Dff | GateKind::Buf => {
                fanin.first().copied().unwrap_or(false)
            }
            GateKind::Not => !fanin.first().copied().unwrap_or(false),
            GateKind::And => fanin.iter().all(|&v| v),
            GateKind::Nand => !fanin.iter().all(|&v| v),
            GateKind::Or => fanin.iter().any(|&v| v),
            GateKind::Nor => !fanin.iter().any(|&v| v),
            GateKind::Xor => fanin.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Xnor => !fanin.iter().fold(false, |acc, &v| acc ^ v),
        }
    }

    /// Evaluates the gate function on 64-way packed words (one bit per
    /// pattern), the representation used by the bit-parallel simulator.
    #[must_use]
    pub fn eval_packed(self, fanin: &[u64]) -> u64 {
        match self {
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Input | GateKind::Dff | GateKind::Buf => fanin.first().copied().unwrap_or(0),
            GateKind::Not => !fanin.first().copied().unwrap_or(0),
            GateKind::And => fanin.iter().fold(u64::MAX, |acc, &v| acc & v),
            GateKind::Nand => !fanin.iter().fold(u64::MAX, |acc, &v| acc & v),
            GateKind::Or => fanin.iter().fold(0, |acc, &v| acc | v),
            GateKind::Nor => !fanin.iter().fold(0, |acc, &v| acc | v),
            GateKind::Xor => fanin.iter().fold(0, |acc, &v| acc ^ v),
            GateKind::Xnor => !fanin.iter().fold(0, |acc, &v| acc ^ v),
        }
    }

    /// The canonical `.bench` keyword for this kind, if it has one.
    #[must_use]
    pub fn bench_keyword(self) -> Option<&'static str> {
        Some(match self {
            GateKind::Input => return None,
            GateKind::Dff => "DFF",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        })
    }

    /// Parses a `.bench` keyword (case-insensitive) into a kind.
    #[must_use]
    pub fn from_bench_keyword(kw: &str) -> Option<Self> {
        Some(match kw.to_ascii_uppercase().as_str() {
            "DFF" => GateKind::Dff,
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "CONST0" => GateKind::Const0,
            "CONST1" => GateKind::Const1,
            _ => return None,
        })
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bench_keyword() {
            Some(kw) => f.write_str(kw),
            None => f.write_str("INPUT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        assert!(!GateKind::And.eval(&[false, false]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(!GateKind::And.eval(&[false, true]));
        assert!(GateKind::And.eval(&[true, true]));
    }

    #[test]
    fn nand_is_negated_and() {
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(GateKind::Nand.eval(&[a, b]), !GateKind::And.eval(&[a, b]));
            }
        }
    }

    #[test]
    fn or_nor_xor_xnor_truth_tables() {
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(GateKind::Or.eval(&[a, b]), a | b);
                assert_eq!(GateKind::Nor.eval(&[a, b]), !(a | b));
                assert_eq!(GateKind::Xor.eval(&[a, b]), a ^ b);
                assert_eq!(GateKind::Xnor.eval(&[a, b]), !(a ^ b));
            }
        }
    }

    #[test]
    fn not_and_buf() {
        assert!(GateKind::Not.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(!GateKind::Buf.eval(&[false]));
    }

    #[test]
    fn constants() {
        assert!(!GateKind::Const0.eval(&[]));
        assert!(GateKind::Const1.eval(&[]));
        assert_eq!(GateKind::Const0.eval_packed(&[]), 0);
        assert_eq!(GateKind::Const1.eval_packed(&[]), u64::MAX);
    }

    #[test]
    fn multi_input_gates() {
        assert!(GateKind::And.eval(&[true, true, true, true]));
        assert!(!GateKind::And.eval(&[true, true, false, true]));
        assert!(GateKind::Or.eval(&[false, false, true]));
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true]));
    }

    #[test]
    fn packed_matches_scalar_for_all_two_input_patterns() {
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        // Pack the four input combinations into the low 4 bits.
        let a_word: u64 = 0b1100;
        let b_word: u64 = 0b1010;
        for kind in kinds {
            let packed = kind.eval_packed(&[a_word, b_word]);
            for bit in 0..4 {
                let a = (a_word >> bit) & 1 == 1;
                let b = (b_word >> bit) & 1 == 1;
                assert_eq!(
                    (packed >> bit) & 1 == 1,
                    kind.eval(&[a, b]),
                    "{kind} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn bench_keyword_round_trip() {
        for kind in [
            GateKind::Dff,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Const0,
            GateKind::Const1,
        ] {
            let kw = kind.bench_keyword().expect("keyword");
            assert_eq!(GateKind::from_bench_keyword(kw), Some(kind));
        }
        assert_eq!(GateKind::from_bench_keyword("bogus"), None);
    }

    #[test]
    fn fanin_arity_limits() {
        assert_eq!(GateKind::Input.max_fanin(), 0);
        assert_eq!(GateKind::Not.max_fanin(), 1);
        assert_eq!(GateKind::And.max_fanin(), usize::MAX);
        assert_eq!(GateKind::And.min_fanin(), 1);
        assert!(GateKind::Input.is_source());
        assert!(!GateKind::And.is_source());
    }
}
