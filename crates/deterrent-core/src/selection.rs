//! Set selection and SAT-based test-pattern generation (steps 4–5 of the
//! pipeline).

use sat::CircuitOracle;
use sim::TestPattern;

use crate::CompatibilityGraph;

/// A set of rare nets, stored as sorted indices into
/// [`CompatibilityGraph::rare_nets`].
pub type RareNetSet = Vec<usize>;

/// Picks the `k` largest *distinct* sets from the harvested episode-final
/// sets, as the paper does after training.
///
/// Sets are canonicalized (sorted, deduplicated) before comparison; ties are
/// broken deterministically by lexicographic order.
#[must_use]
pub fn select_k_largest(sets: &[Vec<usize>], k: usize) -> Vec<RareNetSet> {
    let mut canonical: Vec<RareNetSet> = sets
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| {
            let mut c = s.clone();
            c.sort_unstable();
            c.dedup();
            c
        })
        .collect();
    canonical.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    canonical.dedup();
    // Drop sets that are strict subsets of an earlier (larger) kept set: they
    // cannot add coverage and would waste test length.
    let mut kept: Vec<RareNetSet> = Vec::new();
    for set in canonical {
        let subsumed = kept
            .iter()
            .any(|larger| set.iter().all(|x| larger.binary_search(x).is_ok()));
        if !subsumed {
            kept.push(set);
            if kept.len() == k {
                break;
            }
        }
    }
    kept
}

/// How the patterns of one [`generate_patterns_with`] call were produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternGenStats {
    /// Sets resolved by reusing a concrete simulation witness — the
    /// estimation run already exhibited a pattern driving the whole set, so
    /// no SAT justification was needed.
    pub witness_reused: u64,
    /// SAT justification queries spent (one per attempt, including the
    /// greedy repair retries of unsatisfiable sets).
    pub sat_queries: u64,
}

/// Generates one test pattern per selected set using the SAT oracle.
///
/// Sets whose joint activation was already *witnessed* during the
/// probability-estimation run skip SAT entirely: the witness bank retained by
/// the [`CompatibilityGraph`] re-materializes the concrete simulated pattern
/// ([`CompatibilityGraph::joint_witness_pattern`]). Pairwise compatibility
/// does not always imply joint satisfiability, so a set whose full
/// conjunction is UNSAT is repaired by greedily dropping its last members
/// until the remainder is satisfiable (singletons of rare nets are always
/// satisfiable by construction of the rare-net analysis, because the rare
/// value was observed in simulation). Duplicate patterns are removed while
/// preserving order.
#[must_use]
pub fn generate_patterns_with(
    oracle: &mut CircuitOracle,
    graph: &CompatibilityGraph,
    sets: &[RareNetSet],
) -> (Vec<TestPattern>, PatternGenStats) {
    let mut stats = PatternGenStats::default();
    let mut patterns: Vec<TestPattern> = Vec::with_capacity(sets.len());
    let push_unique = |patterns: &mut Vec<TestPattern>, pattern: TestPattern| {
        if !patterns.contains(&pattern) {
            patterns.push(pattern);
        }
    };
    for set in sets {
        if let Some(pattern) = graph.joint_witness_pattern(set) {
            stats.witness_reused += 1;
            push_unique(&mut patterns, pattern);
            continue;
        }
        let mut working = set.clone();
        while !working.is_empty() {
            let targets = graph.targets(&working);
            stats.sat_queries += 1;
            if let Some(bits) = oracle.justify(&targets) {
                push_unique(&mut patterns, TestPattern::new(bits));
                break;
            }
            working.pop();
        }
    }
    (patterns, stats)
}

/// [`generate_patterns_with`] without the counters.
#[must_use]
pub fn generate_patterns(
    oracle: &mut CircuitOracle,
    graph: &CompatibilityGraph,
    sets: &[RareNetSet],
) -> Vec<TestPattern> {
    generate_patterns_with(oracle, graph, sets).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::synth::BenchmarkProfile;
    use sim::rare::RareNetAnalysis;
    use sim::Simulator;

    #[test]
    fn k_largest_dedupes_and_sorts_by_size() {
        let sets = vec![
            vec![3, 1],
            vec![1, 3], // duplicate of the first after canonicalization
            vec![5, 2, 9],
            vec![2], // subset of {2,5,9}
            vec![7, 8, 4, 6],
            vec![],
        ];
        let picked = select_k_largest(&sets, 3);
        assert_eq!(picked.len(), 3);
        assert_eq!(picked[0], vec![4, 6, 7, 8]);
        assert_eq!(picked[1], vec![2, 5, 9]);
        assert_eq!(picked[2], vec![1, 3]);
    }

    #[test]
    fn k_larger_than_available_returns_everything_distinct() {
        let sets = vec![vec![1], vec![2], vec![1]];
        let picked = select_k_largest(&sets, 10);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn subsets_are_subsumed() {
        let sets = vec![vec![1, 2, 3], vec![2, 3], vec![3]];
        let picked = select_k_largest(&sets, 10);
        assert_eq!(picked, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn generated_patterns_activate_their_sets() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(14);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 3);
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        if graph.len() < 2 {
            return; // nothing meaningful to test on this seed
        }
        // Build greedy compatible sets as stand-ins for harvested RL sets.
        let mut sets = Vec::new();
        for start in 0..graph.len().min(6) {
            let mut set = vec![start];
            for j in 0..graph.len() {
                if graph.compatible_with_all(&set, j) {
                    set.push(j);
                }
            }
            sets.push(set);
        }
        let selected = select_k_largest(&sets, 4);
        let mut oracle = CircuitOracle::new(&nl);
        let patterns = generate_patterns(&mut oracle, &graph, &selected);
        assert!(!patterns.is_empty());
        let sim = Simulator::new(&nl);
        // Every generated pattern must activate at least one rare net at its
        // rare value (it was produced by justifying such targets).
        for p in &patterns {
            let values = sim.run(p);
            let hits = graph
                .rare_nets()
                .iter()
                .filter(|r| values.value(r.net) == r.rare_value)
                .count();
            assert!(hits > 0, "pattern {p} activates no rare net");
        }
    }

    #[test]
    fn witnessed_sets_skip_sat_and_their_patterns_activate() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(7);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 8192, 5);
        let graph = CompatibilityGraph::build(&nl, &analysis, 1);
        if graph.len() < 2 {
            return;
        }
        // Sim-witnessed pairs exist on this profile (see the funnel tests);
        // each such pair must be generated without any SAT query.
        let mut witnessed_sets = Vec::new();
        for i in 0..graph.len() {
            for j in (i + 1)..graph.len() {
                if graph.joint_witness_pattern(&[i, j]).is_some() {
                    witnessed_sets.push(vec![i, j]);
                }
            }
        }
        assert!(
            !witnessed_sets.is_empty(),
            "profile should have sim-witnessed pairs"
        );
        let mut oracle = CircuitOracle::new(&nl);
        let queries_before = oracle.num_queries();
        let (patterns, stats) = generate_patterns_with(&mut oracle, &graph, &witnessed_sets);
        assert_eq!(stats.witness_reused, witnessed_sets.len() as u64);
        assert_eq!(stats.sat_queries, 0);
        assert_eq!(oracle.num_queries(), queries_before);
        // Reused witnesses are real activating patterns, not just claims
        // (patterns may be fewer than sets after deduplication).
        assert!(!patterns.is_empty());
        let sim = Simulator::new(&nl);
        for set in &witnessed_sets {
            let pattern = graph.joint_witness_pattern(set).unwrap();
            assert!(
                sim.activates(&pattern, &graph.targets(set)),
                "witness pattern must drive its whole set"
            );
        }
    }

    #[test]
    fn duplicate_patterns_are_removed() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(14);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 3);
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        if graph.is_empty() {
            return;
        }
        let mut oracle = CircuitOracle::new(&nl);
        let sets = vec![vec![0], vec![0]];
        let patterns = generate_patterns(&mut oracle, &graph, &sets);
        assert_eq!(patterns.len(), 1);
    }
}
