//! Differential-testing harness guarding the raw-speed SAT core.
//!
//! Every generated instance is solved three ways — the modern default
//! configuration (Luby restarts + learned-clause deletion), a stress
//! configuration with pathologically tight restart/deletion knobs (restart
//! every handful of conflicts, reduce the clause DB from a floor of four),
//! and the legacy pre-deletion configuration — and cross-checked against a
//! brute-force model enumerator (instances stay ≤ 2^12 assignments, well
//! inside enumeration range and inside the debug-build per-decision
//! heap-vs-linear-scan assert budget). The checks:
//!
//! - all three solver configurations report the same verdict as brute force,
//!   both on the initial clause set and after an incremental clause add;
//! - every SAT model actually satisfies the formula and the assumptions;
//! - after UNSAT under assumptions, each solver's reported unsat-assumption
//!   subset draws only from the assumption set and is itself UNSAT in
//!   conjunction with the formula (verified by brute force);
//! - a failing case dumps a `dimacs::write_repro` file to the temp dir and
//!   names it in the failure message, so the instance replays offline.
//!
//! Seeds are deterministic (the proptest stub derives its RNG from the test
//! name), so a failure reproduces by rerunning the test.

use std::fmt::Write as _;

use deterrent_repro::sat::{
    dimacs, Cnf, Lit, RestartPolicy, SolveResult, Solver, SolverConfig, Var,
};
use proptest::prelude::*;

/// Restarts every few conflicts and reduces the learned DB from a floor of
/// four clauses — deliberately pathological so deletion, watch/reason repair,
/// and Luby scheduling fire constantly even on tiny instances.
fn stress_config() -> SolverConfig {
    SolverConfig {
        restarts: RestartPolicy::Luby { unit: 2 },
        clause_deletion: true,
        learnt_cap_min: 4,
        learnt_cap_growth_percent: 105,
        learnt_cap_origin_divisor: 0,
    }
}

/// Brute-force satisfiability of `cnf ∧ assumptions` by total enumeration.
fn brute_force_sat(cnf: &Cnf, assumptions: &[Lit]) -> bool {
    let n = cnf.num_vars();
    assert!(n <= 20, "instance too large to enumerate");
    (0u32..1 << n).any(|mask| {
        let assignment: Vec<bool> = (0..n).map(|v| mask >> v & 1 == 1).collect();
        assumptions
            .iter()
            .all(|l| assignment[l.var().index()] == l.polarity())
            && cnf.eval(&assignment) == Some(true)
    })
}

/// Dumps the instance as a DIMACS repro file and returns a description of
/// where it went, for inclusion in the failure message.
fn dump_repro(cnf: &Cnf, assumptions: &[Lit], tag: &str) -> String {
    let path =
        std::env::temp_dir().join(format!("sat-differential-{}-{tag}.cnf", std::process::id()));
    match std::fs::write(&path, dimacs::write_repro(cnf, assumptions)) {
        Ok(()) => format!("repro dumped to {}", path.display()),
        Err(e) => format!("repro dump failed: {e}"),
    }
}

/// One differential check of `cnf ∧ assumptions` on a live solver, against
/// brute force. Returns an error description on divergence.
fn check_solver(
    name: &str,
    solver: &mut Solver,
    cnf: &Cnf,
    assumptions: &[Lit],
) -> Result<(), String> {
    let expected = brute_force_sat(cnf, assumptions);
    let result = solver.solve(assumptions);
    match &result {
        SolveResult::Sat(model) => {
            if !expected {
                return Err(format!("{name}: SAT but brute force says UNSAT"));
            }
            if cnf.eval(model) != Some(true) {
                return Err(format!("{name}: model does not satisfy the formula"));
            }
            if let Some(l) = assumptions
                .iter()
                .find(|l| model[l.var().index()] != l.polarity())
            {
                return Err(format!("{name}: model violates assumption {l}"));
            }
        }
        SolveResult::Unsat => {
            if expected {
                return Err(format!("{name}: UNSAT but brute force says SAT"));
            }
            let subset = solver.unsat_assumptions().to_vec();
            if let Some(l) = subset.iter().find(|l| !assumptions.contains(l)) {
                return Err(format!("{name}: unsat subset contains non-assumption {l}"));
            }
            if brute_force_sat(cnf, &subset) {
                let mut msg = format!("{name}: reported unsat-assumption subset [");
                for l in &subset {
                    let _ = write!(msg, "{} ", l.to_dimacs());
                }
                msg.push_str("] is satisfiable with the formula");
                return Err(msg);
            }
        }
    }
    Ok(())
}

/// Clause spec → concrete clause over `num_vars` variables.
fn build_clause(spec: &[(prop::sample::Index, bool)], num_vars: usize) -> Vec<Lit> {
    spec.iter()
        .map(|(idx, pol)| Var(idx.index(num_vars) as u32).lit(*pol))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1100))]
    /// The main differential sweep: ≥1000 random instances, each solved in
    /// two increments (initial clause set, then an incremental add) under a
    /// random assumption set, on all three solver configurations.
    #[test]
    fn solver_configurations_agree_with_brute_force(
        num_vars in 3usize..=10,
        clause_specs in prop::collection::vec(
            prop::collection::vec((any::<prop::sample::Index>(), any::<bool>()), 1..4),
            1..37,
        ),
        assumption_specs in prop::collection::vec(
            (any::<prop::sample::Index>(), any::<bool>()),
            0..5,
        ),
        split in any::<prop::sample::Index>(),
    ) {
        let clauses: Vec<Vec<Lit>> = clause_specs
            .iter()
            .map(|spec| build_clause(spec, num_vars))
            .collect();
        let assumptions: Vec<Lit> = assumption_specs
            .iter()
            .map(|(idx, pol)| Var(idx.index(num_vars) as u32).lit(*pol))
            .collect();
        let split = split.index(clauses.len() + 1);

        let mut phase1 = Cnf::with_vars(num_vars);
        for c in &clauses[..split] {
            phase1.add_clause(c.iter().copied());
        }
        let mut full = Cnf::with_vars(num_vars);
        for c in &clauses {
            full.add_clause(c.iter().copied());
        }

        let configs = [
            ("modern", SolverConfig::default()),
            ("stress", stress_config()),
            ("legacy", SolverConfig::legacy()),
        ];
        let mut verdicts: Vec<bool> = Vec::new();
        for (name, config) in configs {
            let mut solver = Solver::from_cnf_with_config(&phase1, config);
            // Instances where phase 1 mentions fewer variables than the
            // assumptions need are still legal: reserve the full range.
            while solver.num_vars() < num_vars {
                solver.new_var();
            }
            // Phase 1: no assumptions.
            if let Err(e) = check_solver(name, &mut solver, &phase1, &[]) {
                let repro = dump_repro(&phase1, &[], &format!("{name}-phase1"));
                prop_assert!(false, "{e} ({repro})");
            }
            // Phase 2: incremental clause add, then solve under assumptions.
            for c in &clauses[split..] {
                solver.add_clause(c.iter().copied());
            }
            if let Err(e) = check_solver(name, &mut solver, &full, &assumptions) {
                let repro = dump_repro(&full, &assumptions, &format!("{name}-phase2"));
                prop_assert!(false, "{e} ({repro})");
            }
            verdicts.push(solver.solve(&assumptions).is_sat());
        }
        // All configurations must agree with each other (they already agree
        // with brute force individually; this pins the pairwise property the
        // harness advertises).
        prop_assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "configurations disagree: {verdicts:?}"
        );
    }

    /// DIMACS round-trip: parse(write(cnf)) reproduces the formula, and the
    /// repro format round-trips the assumption set alongside it.
    #[test]
    fn dimacs_round_trips(
        num_vars in 1usize..=12,
        clause_specs in prop::collection::vec(
            prop::collection::vec((any::<prop::sample::Index>(), any::<bool>()), 1..5),
            0..25,
        ),
        assumption_specs in prop::collection::vec(
            (any::<prop::sample::Index>(), any::<bool>()),
            0..6,
        ),
    ) {
        let mut cnf = Cnf::with_vars(num_vars);
        for spec in &clause_specs {
            cnf.add_clause(build_clause(spec, num_vars));
        }
        let assumptions: Vec<Lit> = assumption_specs
            .iter()
            .map(|(idx, pol)| Var(idx.index(num_vars) as u32).lit(*pol))
            .collect();

        let reparsed = dimacs::parse(&dimacs::write(&cnf)).expect("writer output must parse");
        prop_assert_eq!(&reparsed, &cnf);

        let (cnf2, assumptions2) =
            dimacs::parse_repro(&dimacs::write_repro(&cnf, &assumptions))
                .expect("repro output must parse");
        prop_assert_eq!(&cnf2, &cnf);
        prop_assert_eq!(&assumptions2, &assumptions);
    }
}

/// The solver-level counters visible through the public API behave sanely
/// under the stress configuration: restarts and reductions actually happen
/// across a batch of instances, and the live learned count stays under the
/// (growing) cap.
#[test]
fn stress_configuration_restarts_and_reduces() {
    // A pigeonhole instance (n+1 pigeons, n holes) is UNSAT and forces a
    // conflict-rich resolution search — ideal for exercising restarts and
    // deletion deterministically.
    let pigeons = 6u32;
    let holes = pigeons - 1;
    let mut cnf = Cnf::with_vars((pigeons * holes) as usize);
    let var = |p: u32, h: u32| Var(p * holes + h);
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| var(p, h).positive()));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    let mut solver = Solver::from_cnf_with_config(&cnf, stress_config());
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let stats = solver.stats();
    assert!(stats.restarts > 0, "Luby unit 2 must restart: {stats:?}");
    assert!(stats.reduces > 0, "cap floor 4 must reduce: {stats:?}");
    assert!(stats.deleted_clauses > 0);
    // Deletion must actually bound the live set: the high-water mark stays
    // below the total ever learned. (The live count itself may legitimately
    // exceed the tiny cap when the survivors are binary or locked — those
    // are never deletable.)
    assert!(stats.peak_learnts < stats.learned_clauses);
    assert!(stats.peak_learnts >= solver.live_learnts());
}
