//! Gate-level logic simulation and rare-net analysis.
//!
//! This crate is the stand-in for the commercial logic simulator (Synopsys
//! VCS) used in the DETERRENT paper. It provides:
//!
//! * [`TestPattern`] — an assignment to the scan inputs of a netlist.
//! * [`simulate`] / [`Simulator`] — a 64-way bit-parallel gate-level
//!   simulator under the full-scan assumption.
//! * [`SignalProbabilities`] — Monte-Carlo signal-probability estimation from
//!   random patterns.
//! * [`rare`] — extraction of *rare nets*: nets whose probability of taking
//!   one of the two logic values falls below a rareness threshold. These are
//!   the candidate trigger nets an adversary would use and the action space
//!   of the DETERRENT RL agent.
//!
//! # Example
//!
//! ```
//! use netlist::samples;
//! use sim::{rare::RareNetAnalysis, Simulator, TestPattern};
//!
//! let nl = samples::rare_chain(6);
//! let sim = Simulator::new(&nl);
//! let all_ones = TestPattern::ones(nl.num_scan_inputs());
//! let values = sim.run(&all_ones);
//! // The AND-chain root is activated only by the all-ones pattern.
//! let root = nl.net_by_name("and5").unwrap();
//! assert!(values.value(root));
//!
//! let analysis = RareNetAnalysis::estimate(&nl, 0.1, 2000, 42);
//! assert!(analysis.rare_nets().iter().any(|r| r.net == root));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod cone_sim;
mod pattern;
pub mod probability;
pub mod rare;
mod simulator;
pub mod witness;

pub use compact::CompactTrace;
pub use cone_sim::ConeSimulator;
pub use pattern::TestPattern;
pub use probability::{SignalProbabilities, SimTrace};
pub use rare::RareNetEstimate;
pub use simulator::{simulate, NetValues, PackedValues, Simulator};
pub use witness::{PatternSource, WitnessBank};
