//! Environment interface and a generic episode-based training loop.

use crate::{PpoLosses, PpoTrainer, Transition};

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Observation after the step.
    pub state: Vec<f64>,
    /// Reward for the step.
    pub reward: f64,
    /// Whether the episode has terminated.
    pub done: bool,
}

/// A discrete-action episodic environment.
///
/// `deterrent-core` implements this trait for the compatible-rare-net MDP;
/// the trait is deliberately minimal so baselines and tests can provide toy
/// environments too.
pub trait Environment {
    /// Dimension of the observation vector.
    fn state_dim(&self) -> usize;
    /// Number of discrete actions.
    fn num_actions(&self) -> usize;
    /// Starts a new episode and returns the initial observation.
    fn reset(&mut self) -> Vec<f64>;
    /// Applies `action` and returns the outcome.
    fn step(&mut self, action: usize) -> StepOutcome;
    /// Mask of currently valid actions (empty = all valid). Re-queried after
    /// every step.
    fn action_mask(&self) -> Vec<bool> {
        Vec::new()
    }
    /// Re-seeds the environment's internal randomness, if it has any.
    ///
    /// Parallel rollout collection clones one prototype environment per
    /// episode and calls this with a seed split from the *episode index*, so
    /// episode initial conditions are reproducible and independent of the
    /// thread count. Deterministic environments can ignore it (the default
    /// does nothing).
    fn reseed(&mut self, _seed: u64) {}
}

/// Options for [`train`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainOptions {
    /// Number of episodes to run.
    pub episodes: usize,
    /// Maximum steps per episode (episodes may end earlier via `done`).
    pub max_steps: usize,
    /// Seed recorded in the report (the trainer carries its own RNG).
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            episodes: 100,
            max_steps: 64,
            seed: 0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Total reward obtained in each episode.
    pub episode_rewards: Vec<f64>,
    /// Number of environment steps taken in each episode.
    pub episode_lengths: Vec<usize>,
    /// Loss snapshots `(total_env_steps, losses)` for every PPO update.
    pub losses: Vec<(u64, PpoLosses)>,
    /// Wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
}

impl TrainReport {
    /// Mean episode reward over the last `n` episodes (or all of them if
    /// fewer were run).
    #[must_use]
    pub fn mean_reward_last(&self, n: usize) -> f64 {
        if self.episode_rewards.is_empty() {
            return 0.0;
        }
        let start = self.episode_rewards.len().saturating_sub(n);
        let window = &self.episode_rewards[start..];
        window.iter().sum::<f64>() / window.len() as f64
    }

    /// Best (maximum) episode reward seen.
    #[must_use]
    pub fn best_reward(&self) -> f64 {
        self.episode_rewards
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Episodes completed per minute of wall-clock time.
    #[must_use]
    pub fn episodes_per_minute(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.episode_rewards.len() as f64 / (self.wall_seconds / 60.0)
    }

    /// Environment steps per minute of wall-clock time.
    #[must_use]
    pub fn steps_per_minute(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.episode_lengths.iter().sum::<usize>() as f64 / (self.wall_seconds / 60.0)
    }
}

/// Runs the standard episode loop: sample actions from `trainer`, store
/// transitions, and trigger PPO updates at episode boundaries.
pub fn train<E: Environment>(
    env: &mut E,
    trainer: &mut PpoTrainer,
    options: &TrainOptions,
) -> TrainReport {
    let start = std::time::Instant::now();
    let mut report = TrainReport::default();
    for _ in 0..options.episodes {
        let mut state = env.reset();
        let mut total_reward = 0.0;
        let mut steps = 0usize;
        for _ in 0..options.max_steps {
            let mask = env.action_mask();
            if !mask.is_empty() && !mask.iter().any(|&m| m) {
                break;
            }
            let (action, log_prob, value) = trainer.select_action(&state, &mask);
            let outcome = env.step(action);
            total_reward += outcome.reward;
            steps += 1;
            trainer.record(Transition {
                state: std::mem::take(&mut state),
                mask,
                action,
                reward: outcome.reward,
                done: outcome.done,
                log_prob,
                value,
            });
            state = outcome.state;
            if outcome.done {
                break;
            }
        }
        if let Some(losses) = trainer.update_if_ready() {
            report.losses.push((trainer.total_steps(), losses));
        }
        report.episode_rewards.push(total_reward);
        report.episode_lengths.push(steps);
    }
    report.wall_seconds = start.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PpoConfig;

    /// Corridor environment: the agent starts at position 0 and must walk
    /// right (action 1) to reach position `goal`; walking left ends the
    /// episode with no reward.
    struct Corridor {
        position: usize,
        goal: usize,
    }

    impl Environment for Corridor {
        fn state_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            self.position = 0;
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> StepOutcome {
            if action == 1 {
                self.position += 1;
                if self.position >= self.goal {
                    StepOutcome {
                        state: vec![self.position as f64 / self.goal as f64],
                        reward: 1.0,
                        done: true,
                    }
                } else {
                    StepOutcome {
                        state: vec![self.position as f64 / self.goal as f64],
                        reward: 0.0,
                        done: false,
                    }
                }
            } else {
                StepOutcome {
                    state: vec![self.position as f64 / self.goal as f64],
                    reward: 0.0,
                    done: true,
                }
            }
        }
    }

    #[test]
    fn ppo_solves_corridor() {
        let mut env = Corridor {
            position: 0,
            goal: 4,
        };
        let config = PpoConfig {
            batch_size: 64,
            learning_rate: 0.01,
            hidden_sizes: vec![16],
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(1, 2, &config, 2);
        let report = train(
            &mut env,
            &mut trainer,
            &TrainOptions {
                episodes: 600,
                max_steps: 8,
                seed: 0,
            },
        );
        assert!(
            report.mean_reward_last(100) > 0.7,
            "agent should learn to walk right: {}",
            report.mean_reward_last(100)
        );
        assert!(report.best_reward() >= 1.0);
        assert!(report.episodes_per_minute() > 0.0);
        assert!(report.steps_per_minute() > 0.0);
    }

    #[test]
    fn default_mask_allows_everything() {
        struct NoMask;
        impl Environment for NoMask {
            fn state_dim(&self) -> usize {
                1
            }
            fn num_actions(&self) -> usize {
                3
            }
            fn reset(&mut self) -> Vec<f64> {
                vec![0.0]
            }
            fn step(&mut self, _action: usize) -> StepOutcome {
                StepOutcome {
                    state: vec![0.0],
                    reward: 0.0,
                    done: true,
                }
            }
        }
        assert!(NoMask.action_mask().is_empty());
    }

    #[test]
    fn empty_report_statistics() {
        let report = TrainReport::default();
        assert_eq!(report.mean_reward_last(10), 0.0);
        assert_eq!(report.episodes_per_minute(), 0.0);
    }
}
