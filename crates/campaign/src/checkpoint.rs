//! Crash-safe campaign checkpoints.
//!
//! A [`Checkpoint`] records the rows of every *completed* cell (outcome
//! `Ok` or `Retried` — failed cells are never persisted, so a resumed run
//! retries them) keyed by a content fingerprint of everything that can
//! change the cell's result: the netlist spec, θ, the seed, and the
//! semantic fields of the base config
//! ([`deterrent_core::DeterrentConfig::content_fingerprint`]). Killing a
//! campaign and rerunning it with the same `--checkpoint` file therefore
//! recomputes only the unfinished cells; changing any semantic knob changes
//! the keys and naturally invalidates the stale rows.
//!
//! The file reuses the artifact codec's versioned record container
//! ([`deterrent_core::encode_record`]): magic, format version, a
//! checkpoint-specific tag, and an FNV-1a payload checksum, rewritten
//! atomically (temp file + rename) after every completed cell. A missing,
//! torn, corrupt, or version-skewed file loads as an *empty* checkpoint —
//! the worst case is recomputation, never a wrong report.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use deterrent_core::{decode_record, encode_record};

/// Record tag of campaign checkpoint files inside the shared container
/// format (distinct from every artifact stage tag).
const CHECKPOINT_TAG: u32 = 0x434B_5031; // "CKP1"

/// The persisted slice of one completed cell: everything needed to emit
/// its report row again without recomputing the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedRow {
    /// Retries the cell needed before succeeding (0 = first try).
    pub retries: u32,
    /// Logic gates of the cell's netlist.
    pub gates: u64,
    /// Rare nets found.
    pub rare_nets: u64,
    /// Compatible sets selected.
    pub sets: u64,
    /// Test patterns generated.
    pub patterns: u64,
    /// Largest compatible set harvested.
    pub max_compatible_set: u64,
}

/// A disk-backed map of completed cell keys to their [`SavedRow`]s. All
/// methods take `&self`; the row map is internally locked, so the campaign
/// executor's worker threads can record completions concurrently.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    rows: Mutex<HashMap<u64, SavedRow>>,
}

impl Checkpoint {
    /// Opens the checkpoint at `path`, loading any rows a previous run
    /// persisted. A missing file starts empty; an unreadable or invalid
    /// one (torn write, version skew, foreign bytes) is treated as empty
    /// too — resuming then recomputes everything, which is always safe.
    #[must_use]
    pub fn open(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let rows = fs::read(&path)
            .ok()
            .and_then(|bytes| decode_record(CHECKPOINT_TAG, &bytes).ok())
            .and_then(|payload| parse_rows(&payload))
            .unwrap_or_default();
        Self {
            path: path.clone(),
            rows: Mutex::new(rows),
        }
    }

    /// The row a previous run persisted for `key`, if any.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<SavedRow> {
        self.lock().get(&key).copied()
    }

    /// Number of completed rows currently recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no completed rows are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a completed cell and atomically rewrites the file, so a
    /// kill at any instant leaves either the previous complete checkpoint
    /// or the new complete one on disk.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the rewrite fails; the in-memory row is
    /// kept either way (the next successful record persists it too).
    pub fn record(&self, key: u64, row: SavedRow) -> io::Result<()> {
        let payload = {
            let mut rows = self.lock();
            rows.insert(key, row);
            serialize_rows(&rows)
        };
        let bytes = encode_record(CHECKPOINT_TAG, &payload);
        let temp = self.path.with_extension("tmp");
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        fs::write(&temp, &bytes)?;
        fs::rename(&temp, &self.path)
    }

    /// The file this checkpoint persists to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, SavedRow>> {
        self.rows.lock().expect("checkpoint lock poisoned")
    }
}

/// Serializes the row map in ascending key order (deterministic bytes for
/// a given set of rows, independent of completion order).
fn serialize_rows(rows: &HashMap<u64, SavedRow>) -> Vec<u8> {
    let mut keys: Vec<u64> = rows.keys().copied().collect();
    keys.sort_unstable();
    let mut out = Vec::with_capacity(8 + keys.len() * 52);
    out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
    for key in keys {
        let row = &rows[&key];
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&row.retries.to_le_bytes());
        for v in [
            row.gates,
            row.rare_nets,
            row.sets,
            row.patterns,
            row.max_compatible_set,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Inverse of [`serialize_rows`]; `None` on any structural mismatch.
fn parse_rows(payload: &[u8]) -> Option<HashMap<u64, SavedRow>> {
    const ROW_LEN: usize = 8 + 4 + 5 * 8;
    let count = usize::try_from(u64::from_le_bytes(payload.get(..8)?.try_into().ok()?)).ok()?;
    let body = payload.get(8..)?;
    if body.len() != count.checked_mul(ROW_LEN)? {
        return None;
    }
    let mut rows = HashMap::with_capacity(count);
    for chunk in body.chunks_exact(ROW_LEN) {
        let u64_at = |at: usize| u64::from_le_bytes(chunk[at..at + 8].try_into().expect("8"));
        let key = u64_at(0);
        let retries = u32::from_le_bytes(chunk[8..12].try_into().expect("4"));
        rows.insert(
            key,
            SavedRow {
                retries,
                gates: u64_at(12),
                rare_nets: u64_at(20),
                sets: u64_at(28),
                patterns: u64_at(36),
                max_compatible_set: u64_at(44),
            },
        );
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "deterrent-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn sample(n: u64) -> SavedRow {
        SavedRow {
            retries: n as u32,
            gates: 100 + n,
            rare_nets: 10 + n,
            sets: 4 + n,
            patterns: 4 + n,
            max_compatible_set: 3 + n,
        }
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = temp_path("roundtrip");
        let _ = fs::remove_file(&path);
        let ckpt = Checkpoint::open(&path);
        assert!(ckpt.is_empty(), "missing file starts empty");
        ckpt.record(7, sample(1)).unwrap();
        ckpt.record(9, sample(2)).unwrap();
        let reopened = Checkpoint::open(&path);
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get(7), Some(sample(1)));
        assert_eq!(reopened.get(9), Some(sample(2)));
        assert_eq!(reopened.get(8), None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn serialized_bytes_are_order_independent() {
        let mut a = HashMap::new();
        a.insert(1, sample(1));
        a.insert(2, sample(2));
        let mut b = HashMap::new();
        b.insert(2, sample(2));
        b.insert(1, sample(1));
        assert_eq!(serialize_rows(&a), serialize_rows(&b));
    }

    #[test]
    fn invalid_files_load_as_empty() {
        let path = temp_path("invalid");
        fs::write(&path, b"not a checkpoint at all").unwrap();
        assert!(Checkpoint::open(&path).is_empty(), "foreign bytes");
        // A torn write of a valid record (truncated tail) is empty too.
        let ckpt = Checkpoint::open(&path);
        ckpt.record(1, sample(1)).unwrap();
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(Checkpoint::open(&path).is_empty(), "torn record");
        let _ = fs::remove_file(&path);
    }
}
