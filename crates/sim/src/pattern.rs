//! Test patterns: assignments to the scan inputs of a netlist.

use rand::Rng;
use std::fmt;

/// A single test pattern — one logic value per scan input, in
/// [`netlist::Netlist::scan_inputs`] order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TestPattern {
    bits: Vec<bool>,
}

impl TestPattern {
    /// Creates a pattern from explicit bits.
    #[must_use]
    pub fn new(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// All-zero pattern of the given width.
    #[must_use]
    pub fn zeros(width: usize) -> Self {
        Self {
            bits: vec![false; width],
        }
    }

    /// All-one pattern of the given width.
    #[must_use]
    pub fn ones(width: usize) -> Self {
        Self {
            bits: vec![true; width],
        }
    }

    /// Uniformly random pattern of the given width.
    pub fn random<R: Rng + ?Sized>(width: usize, rng: &mut R) -> Self {
        Self {
            bits: (0..width).map(|_| rng.gen_bool(0.5)).collect(),
        }
    }

    /// Parses a pattern from a string of `0`/`1` characters (other characters
    /// are ignored), e.g. `"1010_1100"`.
    #[must_use]
    pub fn from_bit_string(s: &str) -> Self {
        Self {
            bits: s
                .chars()
                .filter_map(|c| match c {
                    '0' => Some(false),
                    '1' => Some(true),
                    _ => None,
                })
                .collect(),
        }
    }

    /// Number of scan inputs covered by this pattern.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if the pattern has no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The value assigned to scan input `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn bit(&self, idx: usize) -> bool {
        self.bits[idx]
    }

    /// Sets the value of scan input `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_bit(&mut self, idx: usize, value: bool) {
        self.bits[idx] = value;
    }

    /// Flips the value of scan input `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn flip_bit(&mut self, idx: usize) {
        self.bits[idx] = !self.bits[idx];
    }

    /// The underlying bits in scan-input order.
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Iterates over the bits in scan-input order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// Generates `count` uniformly random patterns.
    pub fn random_batch<R: Rng + ?Sized>(width: usize, count: usize, rng: &mut R) -> Vec<Self> {
        (0..count).map(|_| Self::random(width, rng)).collect()
    }
}

impl fmt::Display for TestPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for TestPattern {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Self {
            bits: iter.into_iter().collect(),
        }
    }
}

impl Extend<bool> for TestPattern {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        self.bits.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors() {
        assert_eq!(TestPattern::zeros(4).to_string(), "0000");
        assert_eq!(TestPattern::ones(3).to_string(), "111");
        assert_eq!(TestPattern::from_bit_string("10_1").to_string(), "101");
        assert!(TestPattern::default().is_empty());
    }

    #[test]
    fn bit_manipulation() {
        let mut p = TestPattern::zeros(4);
        p.set_bit(1, true);
        p.flip_bit(3);
        assert_eq!(p.to_string(), "0101");
        assert!(p.bit(1));
        assert!(!p.bit(0));
        assert_eq!(p.width(), 4);
    }

    #[test]
    fn random_is_reproducible_with_seed() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        assert_eq!(
            TestPattern::random(32, &mut rng1),
            TestPattern::random(32, &mut rng2)
        );
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut p: TestPattern = [true, false].into_iter().collect();
        p.extend([true]);
        assert_eq!(p.to_string(), "101");
    }

    #[test]
    fn random_batch_len() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(TestPattern::random_batch(8, 17, &mut rng).len(), 17);
    }
}
