//! The compatible-rare-net-set Markov decision process (Section 3.1).

use netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::{Environment, StepOutcome};
use sat::CircuitOracle;

use crate::{CompatCheck, CompatibilityGraph, DeterrentConfig, RewardMode};

/// The DETERRENT environment.
///
/// * **States** are subsets of the rare nets (represented to the agent as a
///   0/1 vector with one entry per rare net).
/// * **Actions** are rare nets; choosing a net that is compatible with every
///   net already in the state adds it, otherwise the state is unchanged.
/// * **Rewards** are `|s_{t+1}|²` for compatible additions (all-steps mode)
///   or `|s_T|²` granted only at the end of the episode (end-of-episode
///   mode).
/// * **Masking** (when enabled) restricts the action set to nets that are
///   pairwise compatible with the whole current state and not yet members —
///   Theorem 3.1 of the paper shows this loses nothing.
///
/// Episode-final states are recorded and can be drained with
/// [`CompatSetEnv::take_harvest`]; they are the maximal compatible sets the
/// pipeline turns into test patterns.
///
/// The environment is `Clone` and implements [`Environment::reseed`], so
/// parallel rollout collection can give every episode its own copy with an
/// independent, reproducible initial-state stream.
#[derive(Debug, Clone)]
pub struct CompatSetEnv<'a> {
    graph: &'a CompatibilityGraph,
    reward_mode: RewardMode,
    masking: bool,
    compat_check: CompatCheck,
    oracle: Option<CircuitOracle>,
    steps_per_episode: usize,
    members: Vec<usize>,
    membership: Vec<bool>,
    steps_taken: usize,
    rng: StdRng,
    harvest: Vec<Vec<usize>>,
    exact_sat_checks: u64,
}

impl<'a> CompatSetEnv<'a> {
    /// Creates the environment for `graph` using the MDP settings in
    /// `config`. `netlist` is only needed (and only encoded) when
    /// [`CompatCheck::ExactSat`] is selected.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no rare nets.
    #[must_use]
    pub fn new(netlist: &Netlist, graph: &'a CompatibilityGraph, config: &DeterrentConfig) -> Self {
        assert!(!graph.is_empty(), "environment needs at least one rare net");
        let train = &config.train;
        let oracle = match train.compat_check {
            CompatCheck::ExactSat => Some(CircuitOracle::new(netlist)),
            CompatCheck::PairwiseGraph => None,
        };
        Self {
            graph,
            reward_mode: train.reward_mode,
            masking: train.masking,
            compat_check: train.compat_check,
            oracle,
            steps_per_episode: train.steps_per_episode,
            members: Vec::new(),
            membership: vec![false; graph.len()],
            steps_taken: 0,
            rng: StdRng::seed_from_u64(config.seed ^ 0x05ee_de0f),
            harvest: Vec::new(),
            exact_sat_checks: 0,
        }
    }

    /// The current set of member rare-net indices (sorted by insertion
    /// order: the random seed net first).
    #[must_use]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Drains the episode-final sets collected since the last call.
    pub fn take_harvest(&mut self) -> Vec<Vec<usize>> {
        std::mem::take(&mut self.harvest)
    }

    /// Number of exact SAT compatibility checks performed (only non-zero when
    /// [`CompatCheck::ExactSat`] is active).
    #[must_use]
    pub fn exact_sat_checks(&self) -> u64 {
        self.exact_sat_checks
    }

    fn observation(&self) -> Vec<f64> {
        self.membership
            .iter()
            .map(|&m| if m { 1.0 } else { 0.0 })
            .collect()
    }

    fn is_action_compatible(&mut self, action: usize) -> bool {
        if self.membership[action] {
            return false;
        }
        match self.compat_check {
            CompatCheck::PairwiseGraph => self.graph.compatible_with_all(&self.members, action),
            CompatCheck::ExactSat => {
                self.exact_sat_checks += 1;
                let mut set = self.members.clone();
                set.push(action);
                let targets = self.graph.targets(&set);
                self.oracle
                    .as_mut()
                    .expect("exact-SAT mode constructs an oracle")
                    .is_compatible(&targets)
            }
        }
    }

    fn no_action_available(&self) -> bool {
        (0..self.graph.len())
            .all(|j| self.membership[j] || !self.graph.compatible_with_all(&self.members, j))
    }

    fn finish_episode(&mut self) {
        self.harvest.push(self.members.clone());
    }
}

impl Environment for CompatSetEnv<'_> {
    fn state_dim(&self) -> usize {
        self.graph.len()
    }

    fn num_actions(&self) -> usize {
        self.graph.len()
    }

    fn reset(&mut self) -> Vec<f64> {
        self.members.clear();
        self.membership.iter_mut().for_each(|m| *m = false);
        self.steps_taken = 0;
        // The initial state is a singleton containing a random rare net.
        let seed_net = self.rng.gen_range(0..self.graph.len());
        self.members.push(seed_net);
        self.membership[seed_net] = true;
        self.observation()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        let compatible = self.is_action_compatible(action);
        let mut reward = 0.0;
        if compatible {
            self.members.push(action);
            self.membership[action] = true;
            if self.reward_mode == RewardMode::AllSteps {
                let size = self.members.len() as f64;
                reward = size * size;
            }
        }
        self.steps_taken += 1;

        let exhausted = self.masking && self.no_action_available();
        let done = self.steps_taken >= self.steps_per_episode || exhausted;
        if done {
            if self.reward_mode == RewardMode::EndOfEpisode {
                let size = self.members.len() as f64;
                reward += size * size;
            }
            self.finish_episode();
        }
        StepOutcome {
            state: self.observation(),
            reward,
            done,
        }
    }

    fn action_mask(&self) -> Vec<bool> {
        if !self.masking {
            return Vec::new();
        }
        (0..self.graph.len())
            .map(|j| !self.membership[j] && self.graph.compatible_with_all(&self.members, j))
            .collect()
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::synth::BenchmarkProfile;
    use sim::rare::RareNetAnalysis;

    fn setup() -> (Netlist, RareNetAnalysis) {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(12);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 6);
        (nl, analysis)
    }

    #[test]
    fn reset_starts_with_one_member() {
        let (nl, analysis) = setup();
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        let config = DeterrentConfig::fast_preset();
        let mut env = CompatSetEnv::new(&nl, &graph, &config);
        let obs = env.reset();
        assert_eq!(obs.len(), graph.len());
        assert_eq!(obs.iter().filter(|&&x| x > 0.5).count(), 1);
        assert_eq!(env.members().len(), 1);
    }

    #[test]
    fn compatible_step_grows_state_and_pays_squared_reward() {
        let (nl, analysis) = setup();
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        let config = DeterrentConfig::fast_preset();
        let mut env = CompatSetEnv::new(&nl, &graph, &config);
        env.reset();
        let seed = env.members()[0];
        // Find a compatible partner.
        let partner = (0..graph.len()).find(|&j| graph.is_compatible(seed, j));
        if let Some(p) = partner {
            let outcome = env.step(p);
            assert_eq!(env.members().len(), 2);
            assert!((outcome.reward - 4.0).abs() < 1e-12, "reward is |s|² = 4");
        }
    }

    #[test]
    fn incompatible_or_duplicate_action_leaves_state_unchanged() {
        let (nl, analysis) = setup();
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        let config = DeterrentConfig::fast_preset();
        let mut env = CompatSetEnv::new(&nl, &graph, &config);
        env.reset();
        let seed = env.members()[0];
        let outcome = env.step(seed); // re-selecting the member
        assert_eq!(env.members().len(), 1);
        assert_eq!(outcome.reward, 0.0);
    }

    #[test]
    fn mask_excludes_members_and_incompatible_nets() {
        let (nl, analysis) = setup();
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        let config = DeterrentConfig::fast_preset();
        let mut env = CompatSetEnv::new(&nl, &graph, &config);
        env.reset();
        let seed = env.members()[0];
        let mask = env.action_mask();
        assert_eq!(mask.len(), graph.len());
        assert!(!mask[seed], "current members must be masked");
        for (j, &allowed) in mask.iter().enumerate() {
            if allowed {
                assert!(graph.is_compatible(seed, j));
            }
        }
    }

    #[test]
    fn no_masking_returns_empty_mask() {
        let (nl, analysis) = setup();
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        let config = DeterrentConfig::fast_preset().with_ablation(RewardMode::AllSteps, false);
        let mut env = CompatSetEnv::new(&nl, &graph, &config);
        env.reset();
        assert!(env.action_mask().is_empty());
    }

    #[test]
    fn end_of_episode_reward_arrives_only_at_the_end() {
        let (nl, analysis) = setup();
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        let mut config = DeterrentConfig::fast_preset();
        config.train.reward_mode = RewardMode::EndOfEpisode;
        config.train.steps_per_episode = 3;
        let mut env = CompatSetEnv::new(&nl, &graph, &config);
        env.reset();
        let mut rewards = Vec::new();
        for step in 0..3 {
            let outcome = env.step(step % graph.len());
            rewards.push(outcome.reward);
            if outcome.done {
                break;
            }
        }
        let (last, init) = rewards.split_last().unwrap();
        assert!(init.iter().all(|&r| r == 0.0), "no intermediate rewards");
        assert!(*last >= 1.0, "terminal reward is the squared set size");
    }

    #[test]
    fn exact_sat_mode_counts_queries_and_agrees_with_graph() {
        let (nl, analysis) = setup();
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        let mut config = DeterrentConfig::fast_preset();
        config.train.compat_check = CompatCheck::ExactSat;
        let mut env = CompatSetEnv::new(&nl, &graph, &config);
        env.reset();
        let seed = env.members()[0];
        if let Some(p) = (0..graph.len()).find(|&j| graph.is_compatible(seed, j)) {
            let before = env.exact_sat_checks();
            let _ = env.step(p);
            assert_eq!(env.exact_sat_checks(), before + 1);
            assert_eq!(
                env.members().len(),
                2,
                "pairwise-compatible pair is SAT-compatible"
            );
        }
    }

    #[test]
    fn harvest_collects_episode_final_sets() {
        let (nl, analysis) = setup();
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        let mut config = DeterrentConfig::fast_preset();
        config.train.steps_per_episode = 2;
        let mut env = CompatSetEnv::new(&nl, &graph, &config);
        for _ in 0..3 {
            env.reset();
            loop {
                let outcome = env.step(0);
                if outcome.done {
                    break;
                }
            }
        }
        let harvest = env.take_harvest();
        assert_eq!(harvest.len(), 3);
        assert!(env.take_harvest().is_empty(), "harvest drains");
    }
}
