//! Single-pass compacting probability estimation.
//!
//! [`SignalProbabilities::estimate`] discards its simulation words, forcing a
//! second full replay of the pattern stream when witnesses are harvested
//! afterwards ([`crate::WitnessBank::harvest`]), while
//! [`SignalProbabilities::estimate_retaining`] keeps *every* word —
//! O(gates · patterns/64) memory. This module gets both properties at once:
//! one simulation pass that keeps the raw words only of nets that can still
//! be *rare* at some threshold ≤ `retain`, dropping a net's buffered words
//! the moment both of its logic values have provably been seen too often.
//!
//! The drop rule is sound under any chunk partitioning: workers publish
//! their one/zero counts to shared monotone counters, and a net is dropped
//! only when the *observed* count already forces the final probability of
//! both values to ≥ `retain`. Counters only grow toward their final values,
//! so a net whose rarer value ends below `retain` can never satisfy the rule
//! on any worker — its words survive in full. Which non-rare nets get
//! dropped *when* depends on scheduling, so only memory varies with thread
//! count; the returned probabilities and the retained-net word rows are
//! bit-identical to [`SignalProbabilities::estimate_retaining_with`] at any
//! thread count.

use std::sync::atomic::{AtomicU64, Ordering};

use exec::{split_seed, Exec};
use netlist::{GateKind, NetId, Netlist};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{PackedValues, SignalProbabilities, Simulator};

/// The compacted outcome of a single-pass estimation run: full-length packed
/// word rows for exactly the nets whose rarer logic value has estimated
/// probability `< retain`, plus the memory high-water mark of the pass.
#[derive(Debug, Clone)]
pub struct CompactTrace {
    retain: f64,
    num_chunks: usize,
    num_patterns: usize,
    /// Retained nets in ascending [`NetId`] order.
    nets: Vec<NetId>,
    /// Row-major: `words[i * num_chunks + c]` is chunk `c` of `nets[i]`.
    words: Vec<u64>,
    peak_words: usize,
}

impl CompactTrace {
    /// The retention threshold: every net with `min(p, 1-p) < retain` (and
    /// eligible for rareness — not an input or flip-flop) has a full row.
    #[must_use]
    pub fn retain(&self) -> f64 {
        self.retain
    }

    /// Number of 64-pattern chunks per retained row.
    #[must_use]
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// Total number of simulated patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The retained nets, in ascending id order.
    #[must_use]
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// The packed word of `net` in `chunk`, or `None` when the net was not
    /// retained (its rarer value was too common at the `retain` threshold).
    #[must_use]
    pub fn word(&self, chunk: usize, net: NetId) -> Option<u64> {
        let i = self.nets.binary_search(&net).ok()?;
        Some(self.words[i * self.num_chunks + chunk])
    }

    /// Upper bound on the number of packed words simultaneously buffered at
    /// any point of the pass (sum of the per-worker high-water marks). The
    /// whole point of compaction: strictly below the
    /// `gates × patterns/64` a full [`crate::SimTrace`] retention costs.
    #[must_use]
    pub fn peak_words(&self) -> usize {
        self.peak_words
    }
}

/// Estimates signal probabilities and harvests the retained word rows in a
/// single simulation pass over the standard seed-split chunk streams (see
/// [`SignalProbabilities::estimate_with`] — the probabilities are
/// bit-identical to it, at any thread count).
///
/// # Panics
///
/// Panics if `num_patterns` is zero or `retain` is not in `(0, 0.5]`.
#[must_use]
pub fn estimate_compacting_with(
    netlist: &Netlist,
    num_patterns: usize,
    seed: u64,
    retain: f64,
    exec: &Exec,
) -> (SignalProbabilities, CompactTrace) {
    assert!(num_patterns > 0, "need at least one pattern");
    assert!(
        retain > 0.0 && retain <= 0.5,
        "retention threshold must be in (0, 0.5]"
    );
    let chunks = num_patterns.div_ceil(64);
    let n = netlist.num_gates();
    let total = chunks * 64;
    // Only internal combinational nets can be rare (inputs and flip-flops
    // are excluded from rare-net analysis), so only they need word rows.
    let candidate: Vec<bool> = netlist
        .iter()
        .map(|(_, gate)| !matches!(gate.kind, GateKind::Input | GateKind::Dff))
        .collect();
    // Monotone cross-worker value counters. Observed counts never exceed the
    // final ones, so the drop rule below is conservative regardless of how
    // worker progress interleaves.
    let seen_ones: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let seen_zeros: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    // The drop rule mirrors the candidate rule (`rare_value(net).1 < retain`)
    // in the exact same f64 expressions, so rounding can never drop a net
    // the final probabilities declare rare.
    let one_side_common = |ones: u64| (ones as f64 / total as f64) >= retain;
    let zero_side_common =
        |zeros: u64| (1.0 - ((total as u64 - zeros) as f64 / total as f64)) >= retain;
    let blocks = exec.par_ranges(chunks, |range| {
        let sim = Simulator::new(netlist);
        let mut packed = PackedValues::scratch();
        let mut ones = vec![0u64; n];
        let mut rows: Vec<Option<Vec<u64>>> = candidate
            .iter()
            .map(|&c| if c { Some(Vec::new()) } else { None })
            .collect();
        let mut live_words = 0usize;
        let mut peak = 0usize;
        let block_len = range.len();
        for c in range {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, c as u64));
            sim.run_random_batch_into(&mut rng, &mut packed);
            for (id, _) in netlist.iter() {
                let i = id.index();
                let word = packed.word(id);
                let w_ones = u64::from(word.count_ones());
                ones[i] += w_ones;
                if !candidate[i] {
                    continue;
                }
                let obs_ones = seen_ones[i].fetch_add(w_ones, Ordering::Relaxed) + w_ones;
                let obs_zeros =
                    seen_zeros[i].fetch_add(64 - w_ones, Ordering::Relaxed) + (64 - w_ones);
                if let Some(row) = rows[i].as_mut() {
                    if one_side_common(obs_ones) && zero_side_common(obs_zeros) {
                        live_words -= row.len();
                        rows[i] = None;
                    } else {
                        row.push(word);
                        live_words += 1;
                        peak = peak.max(live_words);
                    }
                }
            }
        }
        (block_len, ones, rows, peak)
    });
    // Deterministic merge: per-net one-counts add up in chunk order exactly
    // as in `SignalProbabilities::estimate_with`.
    let mut ones = vec![0u64; n];
    let mut peak_words = 0usize;
    for (_, block_ones, _, peak) in &blocks {
        for (acc, part) in ones.iter_mut().zip(block_ones) {
            *acc += part;
        }
        peak_words += peak;
    }
    let prob_one: Vec<f64> = ones.iter().map(|&c| c as f64 / total as f64).collect();
    let probabilities = SignalProbabilities::from_raw_parts(prob_one, total);
    // Final retention is decided only by the final probabilities — never by
    // what the workers happened to drop — so the retained set and its rows
    // are identical at any thread count.
    let nets: Vec<NetId> = netlist
        .iter()
        .filter(|(id, _)| candidate[id.index()] && probabilities.rare_value(*id).1 < retain)
        .map(|(id, _)| id)
        .collect();
    let mut words = vec![0u64; nets.len() * chunks];
    let mut chunk_base = 0usize;
    for (block_len, _, block_rows, _) in &blocks {
        for (i, net) in nets.iter().enumerate() {
            let row = block_rows[net.index()]
                .as_ref()
                .expect("a net rare at `retain` is never dropped by any worker");
            debug_assert_eq!(row.len(), *block_len);
            words[i * chunks + chunk_base..i * chunks + chunk_base + row.len()]
                .copy_from_slice(row);
        }
        chunk_base += block_len;
    }
    debug_assert_eq!(chunk_base, chunks);
    (
        probabilities,
        CompactTrace {
            retain,
            num_chunks: chunks,
            num_patterns: total,
            nets,
            words,
            peak_words,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::WitnessBank;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn probabilities_match_plain_estimation_bit_exactly() {
        let nl = BenchmarkProfile::c2670().scaled(10).generate(4);
        let plain = SignalProbabilities::estimate(&nl, 2048, 7);
        let (compact, _) = estimate_compacting_with(&nl, 2048, 7, 0.25, &Exec::serial());
        assert_eq!(plain.as_slice(), compact.as_slice());
        assert_eq!(plain.num_patterns(), compact.num_patterns());
    }

    #[test]
    fn retained_rows_match_full_trace_at_any_thread_count() {
        let nl = BenchmarkProfile::c6288().scaled(10).generate(9);
        let (probs, full) = SignalProbabilities::estimate_retaining(&nl, 1024, 5);
        for threads in [1, 2, 4] {
            let exec = Exec::new(threads);
            let (p, trace) = estimate_compacting_with(&nl, 1024, 5, 0.25, &exec);
            assert_eq!(p.as_slice(), probs.as_slice(), "{threads} threads");
            for &net in trace.nets() {
                assert!(p.rare_value(net).1 < 0.25);
                for c in 0..trace.num_chunks() {
                    assert_eq!(
                        trace.word(c, net),
                        Some(full.word(c, net)),
                        "{threads} threads, chunk {c}, net {net}"
                    );
                }
            }
        }
    }

    #[test]
    fn retained_set_is_exactly_the_sub_retain_nets() {
        let nl = BenchmarkProfile::c2670().scaled(10).generate(4);
        let (probs, trace) = estimate_compacting_with(&nl, 4096, 2, 0.2, &Exec::serial());
        for (id, gate) in nl.iter() {
            let eligible = !matches!(gate.kind, GateKind::Input | GateKind::Dff);
            let rare = probs.rare_value(id).1 < 0.2;
            assert_eq!(
                trace.nets().binary_search(&id).is_ok(),
                eligible && rare,
                "net {id}"
            );
        }
    }

    #[test]
    fn peak_retained_words_stay_strictly_below_full_retention() {
        // The acceptance bound of the compacting harvest: the memory
        // high-water mark must be strictly below the O(gates · patterns/64)
        // words a full SimTrace retention would hold.
        let nl = BenchmarkProfile::c2670().scaled(10).generate(4);
        let patterns = 8192;
        let chunks = patterns / 64;
        let (_, trace) = estimate_compacting_with(&nl, patterns, 2, 0.25, &Exec::serial());
        let full_retention = nl.num_gates() * chunks;
        assert!(
            trace.peak_words() < full_retention,
            "peak {} must be strictly below the full-retention bound {}",
            trace.peak_words(),
            full_retention
        );
        // It is not just barely below: most nets are balanced and die within
        // the first few chunks, so compaction should win by a wide margin.
        assert!(
            trace.peak_words() < full_retention / 2,
            "peak {} should be well below {}",
            trace.peak_words(),
            full_retention
        );
    }

    #[test]
    fn compact_rows_reproduce_harvested_witness_banks() {
        let nl = BenchmarkProfile::c6288().scaled(15).generate(3);
        let (probs, trace) = estimate_compacting_with(&nl, 1024, 11, 0.25, &Exec::serial());
        let targets: Vec<(NetId, bool)> = trace
            .nets()
            .iter()
            .map(|&net| (net, probs.rare_value(net).0))
            .collect();
        let replayed = WitnessBank::harvest(&nl, &targets, 1024, 11);
        for (t, &(net, value)) in targets.iter().enumerate() {
            for c in 0..trace.num_chunks() {
                let word = trace.word(c, net).unwrap();
                let oriented = if value { word } else { !word };
                assert_eq!(oriented, replayed.row(t)[c], "target {t} chunk {c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "retention threshold")]
    fn bad_retain_panics() {
        let nl = netlist::samples::c17();
        let _ = estimate_compacting_with(&nl, 64, 1, 0.7, &Exec::serial());
    }
}
