//! The Adam first-order optimizer.

/// Adam optimizer state for a flat parameter vector.
///
/// Operates on the flat parameter/gradient vectors exposed by
/// [`crate::Mlp::parameters`] and [`crate::Mlp::gradients`].
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `num_params` parameters with the given
    /// learning rate and the usual defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    #[must_use]
    pub fn new(num_params: usize, learning_rate: f64) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
            t: 0,
        }
    }

    /// Current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Changes the learning rate (e.g. for schedules).
    pub fn set_learning_rate(&mut self, learning_rate: f64) {
        self.learning_rate = learning_rate;
    }

    /// Applies one Adam update in place: `params -= lr * m̂ / (√v̂ + ε)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` do not match the length given at
    /// construction.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    /// Number of update steps performed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The first- and second-moment vectors (`m`, `v`), for persisting the
    /// optimizer state alongside the parameters it drives.
    #[must_use]
    pub fn moments(&self) -> (&[f64], &[f64]) {
        (&self.m, &self.v)
    }

    /// Rebuilds an optimizer from a persisted state — the inverse of
    /// [`Adam::learning_rate`] / [`Adam::moments`] / [`Adam::steps`]. The
    /// β/ε constants are the construction-time defaults of [`Adam::new`].
    ///
    /// # Panics
    ///
    /// Panics if `m` and `v` differ in length.
    #[must_use]
    pub fn from_raw_state(learning_rate: f64, m: Vec<f64>, v: Vec<f64>, t: u64) -> Self {
        assert_eq!(m.len(), v.len(), "moment vectors must match in length");
        let mut adam = Self::new(m.len(), learning_rate);
        adam.m = m;
        adam.v = v;
        adam.t = t;
        adam
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x - 3)^2, gradient 2(x - 3).
        let mut x = vec![0.0f64];
        let mut adam = Adam::new(1, 0.1);
        for _ in 0..500 {
            let grad = vec![2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &grad);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn minimizes_rosenbrock_ish_2d() {
        // f(x, y) = (1-x)^2 + 10 (y - x^2)^2 — a gentler Rosenbrock.
        let mut p = vec![-1.0f64, 1.0];
        let mut adam = Adam::new(2, 0.02);
        for _ in 0..8000 {
            let (x, y) = (p[0], p[1]);
            let gx = -2.0 * (1.0 - x) - 40.0 * x * (y - x * x);
            let gy = 20.0 * (y - x * x);
            adam.step(&mut p, &[gx, gy]);
        }
        assert!(
            (p[0] - 1.0).abs() < 0.05 && (p[1] - 1.0).abs() < 0.1,
            "{p:?}"
        );
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut adam = Adam::new(1, 0.1);
        adam.set_learning_rate(0.5);
        assert!((adam.learning_rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn wrong_length_panics() {
        let mut adam = Adam::new(2, 0.1);
        let mut p = vec![0.0];
        adam.step(&mut p, &[0.0]);
    }
}
