//! The immutable [`Netlist`] representation.

use std::collections::HashMap;
use std::fmt;

use crate::{GateKind, NetlistError};

/// Identifier of a net (equivalently, of the single gate that drives it).
///
/// Net ids are dense indices into [`Netlist::gates`], so they can be used to
/// index per-net side tables directly via [`NetId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetId(pub u32);

impl NetId {
    /// The net id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NetId> for usize {
    fn from(id: NetId) -> usize {
        id.index()
    }
}

/// A single gate. Each gate drives exactly one net whose id equals the gate's
/// position in [`Netlist::gates`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Gate {
    /// Functional kind.
    pub kind: GateKind,
    /// Nets feeding this gate, in declaration order.
    pub fanin: Vec<NetId>,
    /// Human-readable signal name (unique within the netlist).
    pub name: String,
}

/// An immutable gate-level netlist.
///
/// Construct one with [`crate::NetlistBuilder`], [`crate::bench::parse`], or
/// one of the generators in [`crate::synth`]. After construction the netlist
/// is validated (arity, dangling references, combinational cycles) and a
/// topological order over the combinational gates is precomputed.
///
/// # Full-scan view
///
/// The paper (like MERO, TARMAC, and TGRL) assumes full scan access for
/// sequential designs: every D flip-flop can be loaded and observed through
/// the scan chain. [`Netlist::scan_inputs`] therefore returns the primary
/// inputs *plus* all flip-flop outputs, and test patterns are assignments to
/// that combined set.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    outputs: Vec<NetId>,
    name_to_id: HashMap<String, NetId>,
    /// Primary inputs, in declaration order.
    primary_inputs: Vec<NetId>,
    /// D flip-flops, in declaration order.
    flip_flops: Vec<NetId>,
    /// Topological order over all gates treating PI/DFF as sources.
    topo_order: Vec<NetId>,
    /// Logic level (longest path from a scan input) per net.
    levels: Vec<u32>,
    /// Fanout lists per net.
    fanouts: Vec<Vec<NetId>>,
}

impl Netlist {
    /// Builds and validates a netlist from raw parts.
    ///
    /// Normally called through [`crate::NetlistBuilder::build`].
    ///
    /// # Errors
    ///
    /// Returns an error when a gate has an out-of-range fanin reference or
    /// arity, when the design has no inputs or outputs, or when the
    /// combinational logic contains a cycle.
    pub fn from_parts(
        name: impl Into<String>,
        gates: Vec<Gate>,
        outputs: Vec<NetId>,
    ) -> Result<Self, NetlistError> {
        let name = name.into();
        let n = gates.len();

        let mut name_to_id = HashMap::with_capacity(n);
        let mut primary_inputs = Vec::new();
        let mut flip_flops = Vec::new();

        for (i, gate) in gates.iter().enumerate() {
            let id = NetId(i as u32);
            if name_to_id.insert(gate.name.clone(), id).is_some() {
                return Err(NetlistError::DuplicateName(gate.name.clone()));
            }
            let arity = gate.fanin.len();
            let (min, max) = (gate.kind.min_fanin(), gate.kind.max_fanin());
            if arity < min || arity > max {
                return Err(NetlistError::BadFanin {
                    gate: gate.name.clone(),
                    got: arity,
                    min,
                    max,
                });
            }
            for &f in &gate.fanin {
                if f.index() >= n {
                    return Err(NetlistError::UnknownNet(f.0));
                }
            }
            match gate.kind {
                GateKind::Input => primary_inputs.push(id),
                GateKind::Dff => flip_flops.push(id),
                _ => {}
            }
        }

        for &o in &outputs {
            if o.index() >= n {
                return Err(NetlistError::UnknownNet(o.0));
            }
        }
        if outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        if primary_inputs.is_empty() && flip_flops.is_empty() {
            return Err(NetlistError::NoInputs);
        }

        let (topo_order, levels) = topo_sort(&gates)?;

        let mut fanouts = vec![Vec::new(); n];
        for (i, gate) in gates.iter().enumerate() {
            for &f in &gate.fanin {
                fanouts[f.index()].push(NetId(i as u32));
            }
        }

        Ok(Self {
            name,
            gates,
            outputs,
            name_to_id,
            primary_inputs,
            flip_flops,
            topo_order,
            levels,
            fanouts,
        })
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A stable 64-bit fingerprint of the netlist's *behavioural* content:
    /// every gate's kind and fanin (in net-id order) plus the primary
    /// outputs. Signal names are deliberately excluded — two netlists that
    /// differ only in naming simulate and justify identically.
    ///
    /// The hash (FNV-1a) depends only on the data, never on pointer values or
    /// process state, so it is reproducible across runs and platforms and can
    /// key derived artifacts (rare-net analyses, compatibility graphs).
    #[must_use]
    pub fn content_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.gates.len() as u64);
        for gate in &self.gates {
            mix(gate.kind as u64);
            mix(gate.fanin.len() as u64);
            for &f in &gate.fanin {
                mix(f.index() as u64);
            }
        }
        mix(self.outputs.len() as u64);
        for &o in &self.outputs {
            mix(o.index() as u64);
        }
        mix(self.flip_flops.len() as u64);
        for &ff in &self.flip_flops {
            mix(ff.index() as u64);
        }
        h
    }

    /// All gates, indexed by [`NetId`].
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate driving `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    #[must_use]
    pub fn gate(&self, id: NetId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Total number of gates (including primary inputs and flip-flops).
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of combinational (non-input, non-DFF) gates.
    #[must_use]
    pub fn num_logic_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g.kind, GateKind::Input | GateKind::Dff))
            .count()
    }

    /// Number of primary inputs (excluding scan pseudo-inputs).
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.primary_inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Primary inputs in declaration order.
    #[must_use]
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs in declaration order.
    #[must_use]
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// D flip-flops in declaration order.
    #[must_use]
    pub fn flip_flops(&self) -> &[NetId] {
        &self.flip_flops
    }

    /// Scan inputs under the full-scan assumption: primary inputs followed by
    /// flip-flop outputs. Test patterns are assignments to exactly this list.
    #[must_use]
    pub fn scan_inputs(&self) -> Vec<NetId> {
        let mut v = self.primary_inputs.clone();
        v.extend_from_slice(&self.flip_flops);
        v
    }

    /// Number of scan inputs (pattern width).
    #[must_use]
    pub fn num_scan_inputs(&self) -> usize {
        self.primary_inputs.len() + self.flip_flops.len()
    }

    /// Nets that must be observable under full scan: primary outputs plus
    /// flip-flop data inputs.
    #[must_use]
    pub fn scan_outputs(&self) -> Vec<NetId> {
        let mut v = self.outputs.clone();
        for &ff in &self.flip_flops {
            v.extend_from_slice(&self.gates[ff.index()].fanin);
        }
        v
    }

    /// Looks up a net by its signal name.
    #[must_use]
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.name_to_id.get(name).copied()
    }

    /// Signal name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    #[must_use]
    pub fn net_name(&self, id: NetId) -> &str {
        &self.gates[id.index()].name
    }

    /// Topological order over all gates (sources first). Evaluating gates in
    /// this order guarantees fanins are evaluated before the gates they feed.
    #[must_use]
    pub fn topo_order(&self) -> &[NetId] {
        &self.topo_order
    }

    /// Logic level of `id`: the length of the longest combinational path from
    /// any scan input (sources are level 0).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    #[must_use]
    pub fn level(&self, id: NetId) -> u32 {
        self.levels[id.index()]
    }

    /// Maximum logic level (circuit depth).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Gates fed by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    #[must_use]
    pub fn fanout(&self, id: NetId) -> &[NetId] {
        &self.fanouts[id.index()]
    }

    /// Iterates over `(NetId, &Gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NetId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (NetId(i as u32), g))
    }

    /// Returns the internal nets (everything that is not a scan input), the
    /// candidate pool for rare-net analysis.
    #[must_use]
    pub fn internal_nets(&self) -> Vec<NetId> {
        self.iter()
            .filter(|(_, g)| !matches!(g.kind, GateKind::Input | GateKind::Dff))
            .map(|(id, _)| id)
            .collect()
    }
}

/// Kahn topological sort treating `Input` and `Dff` gates as sources (their
/// fanin edges, i.e. the DFF data inputs, are next-state logic and do not
/// create combinational dependencies under full scan).
fn topo_sort(gates: &[Gate]) -> Result<(Vec<NetId>, Vec<u32>), NetlistError> {
    let n = gates.len();
    let mut levels = vec![0u32; n];

    // Build an explicit fanout map for an O(V + E) sort.
    let mut fanouts: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, gate) in gates.iter().enumerate() {
        if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
            continue;
        }
        for &f in &gate.fanin {
            fanouts[f.index()].push(i);
        }
    }

    let mut indegree = vec![0usize; n];
    for (i, gate) in gates.iter().enumerate() {
        indegree[i] = if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
            0
        } else {
            gate.fanin.len()
        };
    }
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(NetId(u as u32));
        for &v in &fanouts[u] {
            let lvl = levels[u] + 1;
            if lvl > levels[v] {
                levels[v] = lvl;
            }
            indegree[v] -= 1;
            if indegree[v] == 0 {
                queue.push(v);
            }
        }
    }

    if order.len() != n {
        // Find one gate on the cycle for the error message.
        let stuck = (0..n)
            .find(|&i| indegree[i] > 0)
            .map(|i| gates[i].name.clone())
            .unwrap_or_default();
        return Err(NetlistError::CombinationalCycle(stuck));
    }
    Ok((order, levels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let c = b.input("c");
        let g1 = b.gate(GateKind::Nand, "g1", &[a, c]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        b.output(g2);
        b.build().unwrap()
    }

    #[test]
    fn basic_queries() {
        let nl = tiny();
        assert_eq!(nl.name(), "tiny");
        assert_eq!(nl.num_gates(), 4);
        assert_eq!(nl.num_logic_gates(), 2);
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_outputs(), 1);
        assert_eq!(nl.depth(), 2);
        assert_eq!(nl.net_by_name("g1"), Some(NetId(2)));
        assert_eq!(nl.net_name(NetId(0)), "a");
        assert_eq!(nl.fanout(NetId(2)), &[NetId(3)]);
        assert_eq!(nl.internal_nets(), vec![NetId(2), NetId(3)]);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = tiny();
        let order = nl.topo_order();
        let pos = |id: NetId| order.iter().position(|&x| x == id).unwrap();
        for (id, gate) in nl.iter() {
            for &f in &gate.fanin {
                if !matches!(gate.kind, GateKind::Dff) {
                    assert!(pos(f) < pos(id), "{f} must come before {id}");
                }
            }
        }
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = NetlistBuilder::new("dup");
        let a = b.input("a");
        assert!(b.gate(GateKind::Not, "a", &[a]).is_err());
    }

    #[test]
    fn cycle_detection() {
        // Build a cycle manually: g1 = NOT(g2), g2 = NOT(g1).
        let gates = vec![
            Gate {
                kind: GateKind::Input,
                fanin: vec![],
                name: "a".into(),
            },
            Gate {
                kind: GateKind::Not,
                fanin: vec![NetId(2)],
                name: "g1".into(),
            },
            Gate {
                kind: GateKind::Not,
                fanin: vec![NetId(1)],
                name: "g2".into(),
            },
        ];
        let err = Netlist::from_parts("cyc", gates, vec![NetId(1)]).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(_)));
    }

    #[test]
    fn no_outputs_rejected() {
        let gates = vec![Gate {
            kind: GateKind::Input,
            fanin: vec![],
            name: "a".into(),
        }];
        let err = Netlist::from_parts("x", gates, vec![]).unwrap_err();
        assert_eq!(err, NetlistError::NoOutputs);
    }

    #[test]
    fn scan_view_treats_dff_as_pseudo_input() {
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a");
        let q = b.dff("q", NetId(0)); // placeholder fanin, patched below via builder API
        let g = b.gate(GateKind::And, "g", &[a, q]).unwrap();
        b.set_dff_data(q, g).unwrap();
        b.output(g);
        let nl = b.build().unwrap();
        assert_eq!(nl.num_scan_inputs(), 2);
        assert_eq!(nl.scan_inputs(), vec![a, q]);
        // Scan outputs include the DFF data input net.
        assert!(nl.scan_outputs().contains(&g));
        // The DFF's data edge does not create a combinational cycle.
        assert_eq!(nl.depth(), 1);
    }

    #[test]
    fn content_fingerprint_ignores_names_but_not_structure() {
        let build = |gate_name: &str, kind: GateKind| {
            let mut b = crate::NetlistBuilder::new("fp");
            let a = b.input("a");
            let c = b.input("c");
            let g = b.gate(kind, gate_name, &[a, c]).unwrap();
            b.output(g);
            b.build().unwrap()
        };
        let base = build("g", GateKind::And);
        assert_eq!(
            base.content_fingerprint(),
            build("renamed", GateKind::And).content_fingerprint(),
            "names must not affect the fingerprint"
        );
        assert_ne!(
            base.content_fingerprint(),
            build("g", GateKind::Or).content_fingerprint(),
            "function changes must change the fingerprint"
        );
        // Stable across calls.
        assert_eq!(base.content_fingerprint(), base.content_fingerprint());
    }

    #[test]
    fn bad_arity_rejected() {
        let gates = vec![
            Gate {
                kind: GateKind::Input,
                fanin: vec![],
                name: "a".into(),
            },
            Gate {
                kind: GateKind::Not,
                fanin: vec![NetId(0), NetId(0)],
                name: "g".into(),
            },
        ];
        let err = Netlist::from_parts("x", gates, vec![NetId(1)]).unwrap_err();
        assert!(matches!(err, NetlistError::BadFanin { .. }));
    }
}
