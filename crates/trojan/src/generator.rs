//! Random, SAT-validated Trojan sampling.

use netlist::Netlist;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sat::CircuitOracle;
use sim::rare::RareNetAnalysis;

use crate::Trojan;

/// Samples random Trojans whose triggers are drawn from the rare nets of a
/// design and are validated to be activatable (satisfiable) with a SAT check,
/// reproducing the evaluation methodology of the paper.
#[derive(Debug)]
pub struct TrojanGenerator<'a> {
    netlist: &'a Netlist,
    oracle: CircuitOracle,
    rng: StdRng,
    attempts: u64,
    rejected: u64,
}

impl<'a> TrojanGenerator<'a> {
    /// Creates a generator for `netlist` seeded with `seed`.
    #[must_use]
    pub fn new(netlist: &'a Netlist, seed: u64) -> Self {
        Self {
            netlist,
            oracle: CircuitOracle::new(netlist),
            rng: StdRng::seed_from_u64(seed),
            attempts: 0,
            rejected: 0,
        }
    }

    /// Samples one valid Trojan with a trigger of exactly `width` rare nets
    /// drawn from `analysis`. Returns `None` if no satisfiable trigger of the
    /// requested width could be found within a bounded number of attempts.
    pub fn sample(&mut self, analysis: &RareNetAnalysis, width: usize) -> Option<Trojan> {
        let rare = analysis.rare_nets();
        if rare.len() < width || width == 0 {
            return None;
        }
        let outputs = self.netlist.primary_outputs();
        let max_attempts = 200;
        for _ in 0..max_attempts {
            self.attempts += 1;
            let mut indices: Vec<usize> = (0..rare.len()).collect();
            indices.shuffle(&mut self.rng);
            let trigger: Vec<_> = indices[..width]
                .iter()
                .map(|&i| (rare[i].net, rare[i].rare_value))
                .collect();
            if self.oracle.is_compatible(&trigger) {
                let payload_output = outputs[self.rng.gen_range(0..outputs.len())];
                return Some(Trojan::new(trigger, payload_output));
            }
            self.rejected += 1;
        }
        None
    }

    /// Samples up to `count` valid Trojans of the given trigger `width`.
    ///
    /// Fewer Trojans are returned when the design does not admit that many
    /// satisfiable triggers within the attempt budget — small designs at wide
    /// trigger widths legitimately run out.
    pub fn sample_many(
        &mut self,
        analysis: &RareNetAnalysis,
        width: usize,
        count: usize,
    ) -> Vec<Trojan> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            match self.sample(analysis, width) {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out
    }

    /// Total trigger candidates tried so far.
    #[must_use]
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Candidates rejected by the SAT validity check so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::synth::BenchmarkProfile;
    use sim::{Simulator, TestPattern};

    fn small_design() -> Netlist {
        BenchmarkProfile::c2670().scaled(15).generate(21)
    }

    #[test]
    fn sampled_trojans_are_satisfiable() {
        let nl = small_design();
        let analysis = RareNetAnalysis::estimate(&nl, 0.15, 4096, 5);
        assert!(analysis.len() >= 4, "need rare nets for this test");
        let mut gen = TrojanGenerator::new(&nl, 1);
        let trojans = gen.sample_many(&analysis, 2, 10);
        assert!(!trojans.is_empty());
        // Re-validate each trigger independently and check activation in sim.
        let mut oracle = CircuitOracle::new(&nl);
        let sim = Simulator::new(&nl);
        for t in &trojans {
            assert_eq!(t.width(), 2);
            let bits = oracle.justify(&t.trigger).expect("trigger is satisfiable");
            let pattern = TestPattern::new(bits);
            let values = sim.run(&pattern);
            assert!(t.is_triggered_by(&values));
        }
        assert!(gen.attempts() >= trojans.len() as u64);
    }

    #[test]
    fn impossible_width_returns_none() {
        let nl = small_design();
        let analysis = RareNetAnalysis::estimate(&nl, 0.15, 2048, 5);
        let mut gen = TrojanGenerator::new(&nl, 2);
        assert!(gen.sample(&analysis, analysis.len() + 10).is_none());
        assert!(gen.sample(&analysis, 0).is_none());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let nl = small_design();
        let analysis = RareNetAnalysis::estimate(&nl, 0.15, 2048, 5);
        let t1 = TrojanGenerator::new(&nl, 9).sample_many(&analysis, 2, 5);
        let t2 = TrojanGenerator::new(&nl, 9).sample_many(&analysis, 2, 5);
        assert_eq!(t1, t2);
    }

    #[test]
    fn payload_targets_are_primary_outputs() {
        let nl = small_design();
        let analysis = RareNetAnalysis::estimate(&nl, 0.15, 2048, 5);
        let mut gen = TrojanGenerator::new(&nl, 3);
        for t in gen.sample_many(&analysis, 2, 5) {
            assert!(nl.primary_outputs().contains(&t.payload_output));
        }
    }
}
