//! Witness harvesting: mining a Monte-Carlo simulation run for patterns that
//! *prove* rare-net facts.
//!
//! The DETERRENT offline phase asks, for every unordered pair of rare nets,
//! whether one input pattern can drive both to their rare values at once.
//! The probability-estimation run already simulated thousands of random
//! patterns — any pattern under which two rare nets were both observed at
//! their rare values is a constructive *witness* of compatibility, making a
//! SAT query for that pair unnecessary. A [`WitnessBank`] stores, per target
//! `(net, rare_value)`, one bit per simulated pattern ("did this pattern
//! drive the net to that value?"), so a pairwise check is a word-wise AND
//! over the two rows.

use netlist::{NetId, Netlist};

use crate::probability::SimTrace;
use crate::{Simulator, TestPattern};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-target witness bitmaps harvested from a simulation run.
///
/// Row `t` has one bit per simulated pattern; bit set means the pattern drove
/// `targets[t].0` to `targets[t].1`. Padding bits of the final partial chunk
/// are always zero, so row intersections never produce false witnesses.
#[derive(Debug, Clone)]
pub struct WitnessBank {
    targets: Vec<(NetId, bool)>,
    num_chunks: usize,
    num_patterns: usize,
    /// Row-major: `rows[t * num_chunks + c]`.
    rows: Vec<u64>,
}

impl WitnessBank {
    /// Builds the bank for `targets` from a retained simulation trace —
    /// zero additional simulation work.
    #[must_use]
    pub fn from_trace(trace: &SimTrace, targets: &[(NetId, bool)]) -> Self {
        let num_chunks = trace.num_chunks();
        let mut rows = Vec::with_capacity(targets.len() * num_chunks);
        for &(net, value) in targets {
            for c in 0..num_chunks {
                let word = trace.word(c, net);
                let oriented = if value { word } else { !word };
                rows.push(oriented & trace.chunk_mask(c));
            }
        }
        Self {
            targets: targets.to_vec(),
            num_chunks,
            num_patterns: trace.num_patterns(),
            rows,
        }
    }

    /// Re-simulates the `num_patterns` random patterns generated from `seed`
    /// (the same stream [`crate::SignalProbabilities::estimate`] uses) and
    /// harvests witnesses for `targets` only. This is the fallback when the
    /// original estimation trace was not retained; memory stays proportional
    /// to `targets.len()` rather than the netlist size.
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is zero.
    #[must_use]
    pub fn harvest(
        netlist: &Netlist,
        targets: &[(NetId, bool)],
        num_patterns: usize,
        seed: u64,
    ) -> Self {
        assert!(num_patterns > 0, "need at least one pattern");
        let num_chunks = num_patterns.div_ceil(64);
        if targets.is_empty() {
            // Nothing to harvest; skip the simulation replay entirely.
            return Self {
                targets: Vec::new(),
                num_chunks,
                num_patterns: num_chunks * 64,
                rows: Vec::new(),
            };
        }
        let sim = Simulator::new(netlist);
        let mut rng = StdRng::seed_from_u64(seed);
        let width = netlist.num_scan_inputs();
        let mut rows = vec![0u64; targets.len() * num_chunks];
        for c in 0..num_chunks {
            let batch = TestPattern::random_batch(width, 64, &mut rng);
            let packed = sim.run_batch(&batch);
            for (t, &(net, value)) in targets.iter().enumerate() {
                let word = packed.word(net);
                rows[t * num_chunks + c] = if value { word } else { !word };
            }
        }
        Self {
            targets: targets.to_vec(),
            num_chunks,
            num_patterns: num_chunks * 64,
            rows,
        }
    }

    /// The harvested targets, in row order.
    #[must_use]
    pub fn targets(&self) -> &[(NetId, bool)] {
        &self.targets
    }

    /// Number of targets (rows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` when the bank holds no targets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of patterns each row covers.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The witness bitmap of target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn row(&self, t: usize) -> &[u64] {
        &self.rows[t * self.num_chunks..(t + 1) * self.num_chunks]
    }

    /// Whether any simulated pattern drove target `t` to its value — a
    /// constructive proof that the target is individually justifiable.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn has_witness(&self, t: usize) -> bool {
        self.row(t).iter().any(|&w| w != 0)
    }

    /// Number of simulated patterns witnessing target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn witness_count(&self, t: usize) -> u64 {
        self.row(t).iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Whether some single simulated pattern drove targets `a` and `b` to
    /// their values simultaneously — a constructive proof of pairwise
    /// compatibility requiring two ANDs per 64 patterns.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[must_use]
    pub fn pair_witnessed(&self, a: usize, b: usize) -> bool {
        self.row(a)
            .iter()
            .zip(self.row(b))
            .any(|(&x, &y)| x & y != 0)
    }

    /// Whether some single simulated pattern drove *every* target in `set` to
    /// its value at once (generalizes [`WitnessBank::pair_witnessed`]).
    #[must_use]
    pub fn set_witnessed(&self, set: &[usize]) -> bool {
        if set.is_empty() {
            return false;
        }
        (0..self.num_chunks).any(|c| {
            set.iter()
                .fold(u64::MAX, |acc, &t| acc & self.rows[t * self.num_chunks + c])
                != 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalProbabilities;
    use netlist::samples;

    #[test]
    fn trace_and_harvest_agree_on_random_run() {
        let nl = samples::majority5();
        let targets: Vec<(NetId, bool)> = nl
            .internal_nets()
            .into_iter()
            .map(|id| (id, true))
            .collect();
        let (_, trace) = SignalProbabilities::estimate_retaining(&nl, 512, 11);
        let from_trace = WitnessBank::from_trace(&trace, &targets);
        let harvested = WitnessBank::harvest(&nl, &targets, 512, 11);
        assert_eq!(from_trace.num_patterns(), harvested.num_patterns());
        for t in 0..targets.len() {
            assert_eq!(from_trace.row(t), harvested.row(t), "target {t}");
        }
    }

    #[test]
    fn rare_chain_witness_counts_match_theory() {
        let nl = samples::rare_chain(4);
        let root = nl.net_by_name("and3").unwrap();
        let (_, trace) = SignalProbabilities::exhaustive_retaining(&nl);
        let bank = WitnessBank::from_trace(&trace, &[(root, true), (root, false)]);
        // Exactly one of the 16 exhaustive patterns sets the AND-chain root.
        assert_eq!(bank.witness_count(0), 1);
        assert_eq!(bank.witness_count(1), 15);
        assert!(bank.has_witness(0));
        // The same pattern cannot drive the root to 1 and 0 at once.
        assert!(!bank.pair_witnessed(0, 1));
    }

    #[test]
    fn partial_chunk_padding_is_masked() {
        // rare_chain(3) has 3 inputs -> 8 exhaustive patterns, one partial
        // chunk. Inverted rows must not leak witnesses from the padding bits.
        let nl = samples::rare_chain(3);
        let root = nl.net_by_name("and2").unwrap();
        let (_, trace) = SignalProbabilities::exhaustive_retaining(&nl);
        let bank = WitnessBank::from_trace(&trace, &[(root, false)]);
        assert_eq!(bank.witness_count(0), 7, "7 of 8 patterns give root=0");
    }

    #[test]
    fn pair_witnesses_prove_compatibility() {
        let nl = samples::c17();
        let (_, trace) = SignalProbabilities::exhaustive_retaining(&nl);
        let g10 = nl.net_by_name("G10").unwrap();
        let g1 = nl.net_by_name("G1").unwrap();
        let bank = WitnessBank::from_trace(&trace, &[(g10, false), (g1, false), (g1, true)]);
        // G10 = NAND(G1, G3) = 0 forces G1 = 1: no joint witness with G1=0,
        // but plenty with G1=1.
        assert!(!bank.pair_witnessed(0, 1));
        assert!(bank.pair_witnessed(0, 2));
        assert!(bank.set_witnessed(&[0, 2]));
        assert!(!bank.set_witnessed(&[]));
    }
}
