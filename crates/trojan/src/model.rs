//! The Trojan data model and infected-netlist construction.

use netlist::{Gate, GateKind, NetId, Netlist, NetlistError};

/// A hardware Trojan: a conjunctive trigger over rare nets plus a payload
/// that flips one primary output when the trigger fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trojan {
    /// Trigger conditions: every `(net, value)` pair must hold simultaneously
    /// for the Trojan to activate.
    pub trigger: Vec<(NetId, bool)>,
    /// The primary output whose value the payload corrupts.
    pub payload_output: NetId,
}

impl Trojan {
    /// Creates a Trojan from its trigger conditions and payload target.
    #[must_use]
    pub fn new(trigger: Vec<(NetId, bool)>, payload_output: NetId) -> Self {
        Self {
            trigger,
            payload_output,
        }
    }

    /// Trigger width (number of trigger nets).
    #[must_use]
    pub fn width(&self) -> usize {
        self.trigger.len()
    }

    /// Returns `true` if the given complete net-value assignment activates
    /// the trigger.
    #[must_use]
    pub fn is_triggered_by(&self, values: &sim::NetValues) -> bool {
        self.trigger.iter().all(|&(net, v)| values.value(net) == v)
    }
}

/// Builds the HT-infected version of `netlist` for `trojan`.
///
/// The infected design contains the original logic plus a trigger AND-tree
/// (with inverters where a trigger net's rare value is 0) and an XOR payload
/// splice on the targeted primary output — the classic combinational Trojan
/// structure from the MERO/TARMAC/TGRL literature (Figure 1 of the paper).
///
/// # Errors
///
/// Returns an error if the payload output or a trigger net does not belong to
/// `netlist`, or if the spliced netlist fails validation.
pub fn infect(netlist: &Netlist, trojan: &Trojan) -> Result<Netlist, NetlistError> {
    let n = netlist.num_gates() as u32;
    for &(net, _) in &trojan.trigger {
        if net.index() >= netlist.num_gates() {
            return Err(NetlistError::UnknownNet(net.0));
        }
    }
    if trojan.payload_output.index() >= netlist.num_gates() {
        return Err(NetlistError::UnknownNet(trojan.payload_output.0));
    }

    let mut gates: Vec<Gate> = netlist.gates().to_vec();
    let mut next_id = n;
    let mut fresh = |gates: &mut Vec<Gate>, kind: GateKind, name: String, fanin: Vec<NetId>| {
        let id = NetId(next_id);
        next_id += 1;
        gates.push(Gate { kind, fanin, name });
        id
    };

    // Trigger inputs: invert nets whose rare value is 0.
    let mut trigger_lits = Vec::with_capacity(trojan.trigger.len());
    for (i, &(net, value)) in trojan.trigger.iter().enumerate() {
        if value {
            trigger_lits.push(net);
        } else {
            let inv = fresh(&mut gates, GateKind::Not, format!("ht_inv_{i}"), vec![net]);
            trigger_lits.push(inv);
        }
    }
    // Trigger = AND of all (possibly inverted) trigger nets.
    let trigger_net = if trigger_lits.len() == 1 {
        trigger_lits[0]
    } else {
        fresh(
            &mut gates,
            GateKind::And,
            "ht_trigger".to_string(),
            trigger_lits,
        )
    };
    // Payload: corrupted output = original XOR trigger.
    let corrupted = fresh(
        &mut gates,
        GateKind::Xor,
        "ht_payload".to_string(),
        vec![trojan.payload_output, trigger_net],
    );

    // Replace the targeted output with the corrupted signal.
    let outputs: Vec<NetId> = netlist
        .primary_outputs()
        .iter()
        .map(|&o| {
            if o == trojan.payload_output {
                corrupted
            } else {
                o
            }
        })
        .collect();

    Netlist::from_parts(format!("{}_ht", netlist.name()), gates, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use sim::{Simulator, TestPattern};

    #[test]
    fn trojan_width_and_construction() {
        let nl = samples::c17();
        let g10 = nl.net_by_name("G10").unwrap();
        let g22 = nl.net_by_name("G22").unwrap();
        let t = Trojan::new(vec![(g10, false)], g22);
        assert_eq!(t.width(), 1);
    }

    #[test]
    fn infected_netlist_differs_only_when_triggered() {
        let nl = samples::rare_chain(4);
        let root = nl.net_by_name("and3").unwrap();
        let any = nl.net_by_name("any").unwrap();
        let trojan = Trojan::new(vec![(root, true)], any);
        let infected = infect(&nl, &trojan).unwrap();

        let sim_golden = Simulator::new(&nl);
        let sim_bad = Simulator::new(&infected);
        let out_golden = nl.primary_outputs()[1];
        let out_bad = infected.primary_outputs()[1];

        // Non-triggering pattern: outputs agree.
        let quiet = TestPattern::from_bit_string("0111");
        assert_eq!(
            sim_golden.run(&quiet).value(out_golden),
            sim_bad.run(&quiet).value(out_bad)
        );
        // Triggering pattern (all ones): outputs differ.
        let fire = TestPattern::ones(4);
        assert_ne!(
            sim_golden.run(&fire).value(out_golden),
            sim_bad.run(&fire).value(out_bad)
        );
    }

    #[test]
    fn inverted_trigger_values_are_honoured() {
        let nl = samples::c17();
        let g10 = nl.net_by_name("G10").unwrap();
        let g11 = nl.net_by_name("G11").unwrap();
        let g23 = nl.net_by_name("G23").unwrap();
        let trojan = Trojan::new(vec![(g10, false), (g11, false)], g23);
        let infected = infect(&nl, &trojan).unwrap();
        assert!(infected.net_by_name("ht_inv_0").is_some());
        assert!(infected.net_by_name("ht_trigger").is_some());
        assert!(infected.net_by_name("ht_payload").is_some());
        assert_eq!(infected.num_outputs(), nl.num_outputs());
    }

    #[test]
    fn is_triggered_by_checks_all_conditions() {
        let nl = samples::c17();
        let sim = Simulator::new(&nl);
        let g10 = nl.net_by_name("G10").unwrap();
        let g11 = nl.net_by_name("G11").unwrap();
        let g22 = nl.net_by_name("G22").unwrap();
        let trojan = Trojan::new(vec![(g10, false), (g11, false)], g22);
        // G10=0 needs G1=G3=1; G11=0 needs G3=G6=1.
        let values = sim.run(&TestPattern::from_bit_string("10110"));
        assert!(trojan.is_triggered_by(&values));
        let values = sim.run(&TestPattern::zeros(5));
        assert!(!trojan.is_triggered_by(&values));
    }

    #[test]
    fn unknown_net_rejected() {
        let nl = samples::c17();
        let bogus = NetId(999);
        let out = nl.primary_outputs()[0];
        assert!(infect(&nl, &Trojan::new(vec![(bogus, true)], out)).is_err());
    }
}
