//! The daemon's bounded, priority-ordered job queue.
//!
//! Connection handlers push; the single dispatcher thread pops. Ordering
//! is priority-descending with FIFO among equal priorities (the
//! daemon-assigned submission sequence number breaks ties), so a burst of
//! default-priority jobs runs in arrival order. The sequence number is
//! assigned by the *caller* (the daemon reserves it before writing the
//! `ack` frame, so the ack is on the wire before any job output can race
//! it). The queue is bounded — a full queue rejects the submit instead of
//! buffering unboundedly — and closable: after [`JobQueue::close`],
//! pushes fail and pops drain what remains, then return `None`.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds its capacity in not-yet-dispatched jobs.
    Full,
    /// The daemon is draining; no new jobs are accepted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Full => "job queue is full",
            Self::Closed => "daemon is draining and no longer accepts jobs",
        })
    }
}

struct Entry<T> {
    priority: u64,
    seq: u64,
    job: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then *lower* sequence number
        // (earlier submission) first.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct State<T> {
    heap: BinaryHeap<Entry<T>>,
    closed: bool,
}

/// A bounded priority/FIFO queue connecting connection handlers to the
/// dispatcher.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for JobQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> JobQueue<T> {
    /// An empty queue holding at most `capacity` undispatched jobs
    /// (`capacity` 0 is clamped to 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `job` under the caller-assigned sequence number `seq`
    /// (strictly increasing per daemon; ties on `priority` dispatch in
    /// `seq` order).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`] — both hand the job back so the caller can
    /// still report the rejection over its connection.
    pub fn push(&self, priority: u64, seq: u64, job: T) -> Result<(), (PushError, T)> {
        let mut state = self.lock();
        if state.closed {
            return Err((PushError::Closed, job));
        }
        if state.heap.len() >= self.capacity {
            return Err((PushError::Full, job));
        }
        state.heap.push(Entry { priority, seq, job });
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (highest priority, FIFO among
    /// equals) or the queue is closed *and* drained, which returns `None`.
    pub fn pop(&self) -> Option<(u64, T)> {
        let mut state = self.lock();
        loop {
            if let Some(entry) = state.heap.pop() {
                return Some((entry.seq, entry.job));
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Marks the queue closed: pushes fail from now on, pops drain the
    /// backlog and then return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Number of jobs waiting (not including any job currently running).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().heap.len()
    }

    /// `true` when no jobs are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_priorities_and_priority_wins() {
        let queue = JobQueue::new(8);
        queue.push(0, 0, "first").unwrap();
        queue.push(0, 1, "second").unwrap();
        queue.push(5, 2, "urgent").unwrap();
        queue.push(0, 3, "third").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| {
            if queue.is_empty() {
                None
            } else {
                queue.pop().map(|(_, job)| job)
            }
        })
        .collect();
        assert_eq!(order, vec!["urgent", "first", "second", "third"]);
    }

    #[test]
    fn bounded_and_closable() {
        let queue = JobQueue::new(2);
        queue.push(0, 0, 1).unwrap();
        queue.push(0, 1, 2).unwrap();
        assert_eq!(queue.push(0, 2, 3), Err((PushError::Full, 3)));
        queue.close();
        assert_eq!(queue.push(9, 3, 4), Err((PushError::Closed, 4)));
        // Closed queues still drain.
        assert_eq!(queue.pop().map(|(_, j)| j), Some(1));
        assert_eq!(queue.pop().map(|(_, j)| j), Some(2));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let queue = std::sync::Arc::new(JobQueue::new(4));
        let waiter = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.push(1, 0, 42).unwrap();
        assert_eq!(waiter.join().unwrap().map(|(_, j)| j), Some(42));

        let drained = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert_eq!(drained.join().unwrap(), None);
    }
}
