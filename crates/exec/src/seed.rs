//! Seed splitting: one independent RNG stream per task index.
//!
//! Parallel random-pattern generation must not depend on which worker thread
//! runs which task, so a single master seed is *split* into per-task seeds by
//! a strong 64-bit mix (the SplitMix64 finalizer, applied twice over the
//! seed/stream combination). Each task then seeds its own generator from its
//! split seed — the stream assignment is a pure function of `(seed, index)`.

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of stream `stream` from the master `seed`.
///
/// The mapping is a pure function: the same `(seed, stream)` pair always
/// yields the same split seed, regardless of thread count or call order.
/// Distinct streams of one master seed are decorrelated by two rounds of the
/// SplitMix64 finalizer over the golden-ratio-weighted stream index.
#[must_use]
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let z = seed ^ mix(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    mix(z.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// A master seed viewed as an indexable family of per-task seeds.
///
/// Thin convenience wrapper over [`split_seed`] for call sites that pass the
/// family around (e.g. episode collection handing stream `i` to episode `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    seed: u64,
}

impl SeedStream {
    /// Wraps a master seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The master seed.
    #[must_use]
    pub fn master(&self) -> u64 {
        self.seed
    }

    /// The split seed of stream `i`.
    #[must_use]
    pub fn stream(&self, i: u64) -> u64 {
        split_seed(self.seed, i)
    }

    /// A derived family whose streams are disjoint from this one's (for
    /// independent sub-purposes of one master seed, e.g. training rollouts vs
    /// greedy evaluation rollouts).
    #[must_use]
    pub fn fork(&self, label: u64) -> Self {
        Self {
            seed: split_seed(self.seed ^ 0xF0E2_5EED_C0FF_EE01, label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic_and_stream_sensitive() {
        assert_eq!(split_seed(42, 0), split_seed(42, 0));
        assert_ne!(split_seed(42, 0), split_seed(42, 1));
        assert_ne!(split_seed(42, 0), split_seed(43, 0));
        // Stream 0 is not the identity on the master seed.
        assert_ne!(split_seed(42, 0), 42);
    }

    #[test]
    fn neighbouring_streams_share_no_obvious_structure() {
        let a = split_seed(7, 100);
        let b = split_seed(7, 101);
        // Avalanche: roughly half the bits should differ.
        let differing = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "only {differing} bits differ"
        );
    }

    #[test]
    fn seed_stream_matches_split_seed() {
        let fam = SeedStream::new(9);
        assert_eq!(fam.stream(3), split_seed(9, 3));
        assert_eq!(fam.master(), 9);
        assert_ne!(fam.fork(0).stream(0), fam.stream(0));
        assert_ne!(fam.fork(0), fam.fork(1));
    }
}
