//! A TGRL-style baseline (Pan & Mishra, ASP-DAC 2021): RL over test-pattern
//! bit flips guided by a rareness/testability heuristic.

use netlist::Netlist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{PpoConfig, PpoTrainer, Transition};
use sim::rare::RareNetAnalysis;
use sim::{Simulator, TestPattern};

use crate::TestGenerator;

/// Reimplementation of the TGRL idea.
///
/// TGRL's states and actions are *test patterns* and *probabilistic bit
/// flips*: starting from a random pattern, an RL agent flips input bits to
/// maximize a heuristic combining the rareness and testability of the nets
/// the pattern activates. Every improving pattern encountered along the way
/// is emitted. The approach attains good coverage, but — as the paper points
/// out — only with a very large number of patterns, because the search is not
/// organized around joint (set-level) trigger conditions.
///
/// This reproduction keeps the architecture (PPO over bit-flip actions, a
/// rareness-weighted activation score as reward) while using the same
/// from-scratch RL substrate as DETERRENT, so the comparison isolates the
/// *formulation* difference rather than the learning machinery.
#[derive(Debug, Clone)]
pub struct Tgrl {
    episodes: usize,
    seed: u64,
}

impl Tgrl {
    /// Creates a TGRL-style generator that runs `episodes` bit-flip episodes.
    #[must_use]
    pub fn new(episodes: usize, seed: u64) -> Self {
        Self {
            episodes: episodes.max(1),
            seed,
        }
    }

    /// Rareness-weighted activation score of a pattern: the sum over rare
    /// nets activated at their rare value of `1 / max(p, ε)`, so rarer nets
    /// contribute more (the rareness part of TGRL's heuristic; testability is
    /// folded into the same weight in this reproduction).
    fn score(values: &sim::NetValues, analysis: &RareNetAnalysis) -> f64 {
        analysis
            .rare_nets()
            .iter()
            .filter(|r| values.value(r.net) == r.rare_value)
            .map(|r| 1.0 / r.probability.max(1e-3))
            .sum()
    }
}

impl TestGenerator for Tgrl {
    fn name(&self) -> &'static str {
        "TGRL"
    }

    fn generate(&mut self, netlist: &Netlist, analysis: &RareNetAnalysis) -> Vec<TestPattern> {
        let width = netlist.num_scan_inputs();
        let sim = Simulator::new(netlist);
        let mut rng = StdRng::seed_from_u64(self.seed);
        if analysis.is_empty() {
            return vec![TestPattern::random(width, &mut rng)];
        }

        let config = PpoConfig {
            hidden_sizes: vec![32],
            batch_size: 128,
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(width, width, &config, self.seed);
        let steps_per_episode = width.clamp(4, 48);
        let mut emitted: Vec<TestPattern> = Vec::new();

        for _ in 0..self.episodes {
            let mut pattern = TestPattern::random(width, &mut rng);
            let mut best_score = Self::score(&sim.run(&pattern), analysis);
            if best_score > 0.0 && !emitted.contains(&pattern) {
                emitted.push(pattern.clone());
            }
            for _ in 0..steps_per_episode {
                let state: Vec<f64> = pattern.iter().map(f64::from).collect();
                let (bit, log_prob, value) = trainer.select_action(&state, &[]);
                pattern.flip_bit(bit);
                let score = Self::score(&sim.run(&pattern), analysis);
                let reward = score - best_score;
                if score > best_score {
                    best_score = score;
                }
                // TGRL emits every pattern that excites rare logic, which is
                // exactly why its test sets are large.
                if score > 0.0 && !emitted.contains(&pattern) {
                    emitted.push(pattern.clone());
                }
                trainer.record(Transition {
                    state,
                    mask: vec![],
                    action: bit,
                    reward,
                    done: false,
                    log_prob,
                    value,
                });
            }
            trainer.update_if_ready();
        }
        if emitted.is_empty() {
            emitted.push(TestPattern::random(width, &mut rng));
        }
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn emits_many_patterns_that_excite_rare_nets() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(4);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 1);
        let mut gen = Tgrl::new(20, 3);
        let patterns = gen.generate(&nl, &analysis);
        assert!(!patterns.is_empty());
        let sim = Simulator::new(&nl);
        for p in patterns.iter().take(20) {
            let values = sim.run(p);
            assert!(analysis
                .rare_nets()
                .iter()
                .any(|r| values.value(r.net) == r.rare_value));
        }
    }

    #[test]
    fn test_length_is_much_larger_than_episode_count_budgeted_patterns() {
        // The defining weakness reproduced: TGRL's emitted pattern count grows
        // with search effort.
        let nl = BenchmarkProfile::c2670().scaled(25).generate(4);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 1);
        let short = Tgrl::new(5, 3).generate(&nl, &analysis).len();
        let long = Tgrl::new(40, 3).generate(&nl, &analysis).len();
        assert!(long >= short);
    }

    #[test]
    fn handles_no_rare_nets() {
        let nl = samples::c17();
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.01);
        let patterns = Tgrl::new(3, 1).generate(&nl, &analysis);
        assert_eq!(patterns.len(), 1);
    }
}
