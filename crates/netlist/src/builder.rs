//! Incremental construction of [`Netlist`]s.

use crate::{Gate, GateKind, NetId, Netlist, NetlistError};
use std::collections::HashSet;

/// Builder for [`Netlist`].
///
/// The builder assigns dense [`NetId`]s in creation order and defers full
/// validation (arity, cycles, dangling references) to [`NetlistBuilder::build`].
///
/// # Example
///
/// ```
/// use netlist::{GateKind, NetlistBuilder};
///
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("mux");
/// let s = b.input("s");
/// let a = b.input("a");
/// let c = b.input("c");
/// let ns = b.gate(GateKind::Not, "ns", &[s])?;
/// let t0 = b.gate(GateKind::And, "t0", &[ns, a])?;
/// let t1 = b.gate(GateKind::And, "t1", &[s, c])?;
/// let y = b.gate(GateKind::Or, "y", &[t0, t1])?;
/// b.output(y);
/// let nl = b.build()?;
/// assert_eq!(nl.num_outputs(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    outputs: Vec<NetId>,
    names: HashSet<String>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a design called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            gates: Vec::new(),
            outputs: Vec::new(),
            names: HashSet::new(),
        }
    }

    fn push(&mut self, kind: GateKind, name: String, fanin: Vec<NetId>) -> NetId {
        let id = NetId(self.gates.len() as u32);
        self.names.insert(name.clone());
        self.gates.push(Gate { kind, fanin, name });
        id
    }

    /// Declares a primary input. Duplicate names are reported at
    /// [`build`](Self::build) time.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        self.push(GateKind::Input, name.into(), vec![])
    }

    /// Declares a D flip-flop whose data input is `data`. Under full scan the
    /// flip-flop output behaves as a pseudo primary input.
    pub fn dff(&mut self, name: impl Into<String>, data: NetId) -> NetId {
        self.push(GateKind::Dff, name.into(), vec![data])
    }

    /// Rewires the data input of an existing flip-flop, useful when the
    /// next-state logic is only known after the flop has been declared.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if `ff` is not a flip-flop created
    /// by this builder.
    pub fn set_dff_data(&mut self, ff: NetId, data: NetId) -> Result<(), NetlistError> {
        match self.gates.get_mut(ff.index()) {
            Some(gate) if gate.kind == GateKind::Dff => {
                gate.fanin = vec![data];
                Ok(())
            }
            _ => Err(NetlistError::UnknownNet(ff.0)),
        }
    }

    /// Adds a combinational gate of `kind` named `name` with the given fanins.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already taken or the arity is invalid
    /// for `kind`.
    pub fn gate(
        &mut self,
        kind: GateKind,
        name: impl Into<String>,
        fanin: &[NetId],
    ) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        if fanin.len() < kind.min_fanin() || fanin.len() > kind.max_fanin() {
            return Err(NetlistError::BadFanin {
                gate: name,
                got: fanin.len(),
                min: kind.min_fanin(),
                max: kind.max_fanin(),
            });
        }
        Ok(self.push(kind, name, fanin.to_vec()))
    }

    /// Adds a constant-0 driver.
    pub fn const0(&mut self, name: impl Into<String>) -> NetId {
        self.push(GateKind::Const0, name.into(), vec![])
    }

    /// Adds a constant-1 driver.
    pub fn const1(&mut self, name: impl Into<String>) -> NetId {
        self.push(GateKind::Const1, name.into(), vec![])
    }

    /// Marks `id` as a primary output.
    pub fn output(&mut self, id: NetId) {
        self.outputs.push(id);
    }

    /// Number of gates added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if no gates have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Finalizes and validates the netlist.
    ///
    /// # Errors
    ///
    /// Propagates any structural error found by [`Netlist::from_parts`].
    pub fn build(self) -> Result<Netlist, NetlistError> {
        Netlist::from_parts(self.name, self.gates, self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a");
        let c = b.input("c");
        assert_eq!(a, NetId(0));
        assert_eq!(c, NetId(1));
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn duplicate_gate_name_is_error() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a");
        b.gate(GateKind::Not, "g", &[a]).unwrap();
        assert!(matches!(
            b.gate(GateKind::Not, "g", &[a]),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn arity_checked_at_add_time() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a");
        assert!(matches!(
            b.gate(GateKind::Not, "g", &[a, a]),
            Err(NetlistError::BadFanin { .. })
        ));
        assert!(matches!(
            b.gate(GateKind::And, "h", &[]),
            Err(NetlistError::BadFanin { .. })
        ));
    }

    #[test]
    fn set_dff_data_rejects_non_flops() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a");
        assert!(b.set_dff_data(a, a).is_err());
    }

    #[test]
    fn constants_build() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a");
        let one = b.const1("one");
        let g = b.gate(GateKind::And, "g", &[a, one]).unwrap();
        b.output(g);
        let nl = b.build().unwrap();
        assert_eq!(nl.num_gates(), 3);
    }
}
