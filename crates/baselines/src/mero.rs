//! MERO: multiple excitation of rare occurrences (Chakraborty et al., CHES
//! 2009).

use netlist::Netlist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::rare::RareNetAnalysis;
use sim::{Simulator, TestPattern};

use crate::TestGenerator;

/// The MERO N-detect heuristic.
///
/// MERO draws a large pool of random patterns and keeps a pattern whenever it
/// activates some rare net that has not yet been activated `n` times. The
/// hypothesis is that once every rare net has been individually excited `n`
/// times, the kept patterns are likely to have activated many joint trigger
/// conditions too. As the paper notes, this works moderately well on small
/// designs and collapses on large ones.
#[derive(Debug, Clone)]
pub struct Mero {
    n_detect: usize,
    pool_size: usize,
    seed: u64,
}

impl Mero {
    /// Creates a MERO generator that tries to activate every rare net
    /// `n_detect` times using a pool of `pool_size` random candidates.
    #[must_use]
    pub fn new(n_detect: usize, pool_size: usize, seed: u64) -> Self {
        Self {
            n_detect: n_detect.max(1),
            pool_size: pool_size.max(1),
            seed,
        }
    }
}

impl TestGenerator for Mero {
    fn name(&self) -> &'static str {
        "MERO"
    }

    fn generate(&mut self, netlist: &Netlist, analysis: &RareNetAnalysis) -> Vec<TestPattern> {
        let sim = Simulator::new(netlist);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rare = analysis.rare_nets();
        let mut counts = vec![0usize; rare.len()];
        let mut kept = Vec::new();
        let width = netlist.num_scan_inputs();

        let mut processed = 0usize;
        while processed < self.pool_size {
            let batch_len = 64.min(self.pool_size - processed);
            let batch = TestPattern::random_batch(width, batch_len, &mut rng);
            let packed = sim.run_batch(&batch);
            for (p, pattern) in batch.iter().enumerate() {
                let mut useful = false;
                for (ri, r) in rare.iter().enumerate() {
                    if counts[ri] < self.n_detect && packed.value(r.net, p) == r.rare_value {
                        counts[ri] += 1;
                        useful = true;
                    }
                }
                if useful {
                    kept.push(pattern.clone());
                }
            }
            processed += batch_len;
            // Early exit once every rare net reached the N-detect target.
            if counts.iter().all(|&c| c >= self.n_detect) {
                break;
            }
        }
        if kept.is_empty() {
            // Degenerate designs with no rare nets still get one pattern so the
            // evaluation pipeline has something to measure.
            kept.push(TestPattern::random(width, &mut rng));
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn keeps_patterns_that_excite_rare_nets() {
        let nl = samples::rare_chain(5);
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.3);
        let mut gen = Mero::new(2, 2000, 7);
        let patterns = gen.generate(&nl, &analysis);
        assert!(!patterns.is_empty());
        // Every kept pattern activates at least one rare net at its rare value.
        let sim = Simulator::new(&nl);
        for p in &patterns {
            let values = sim.run(p);
            assert!(analysis
                .rare_nets()
                .iter()
                .any(|r| values.value(r.net) == r.rare_value));
        }
    }

    #[test]
    fn pattern_count_grows_with_n_detect() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(6);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 2);
        let small = Mero::new(1, 3000, 3).generate(&nl, &analysis).len();
        let large = Mero::new(5, 3000, 3).generate(&nl, &analysis).len();
        assert!(large >= small);
    }

    #[test]
    fn no_rare_nets_still_returns_a_pattern() {
        let nl = samples::c17();
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.01);
        assert!(analysis.is_empty());
        let patterns = Mero::new(2, 100, 1).generate(&nl, &analysis);
        assert_eq!(patterns.len(), 1);
    }
}
