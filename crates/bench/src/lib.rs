//! Shared plumbing for the benchmark harness.
//!
//! Every table and figure of the DETERRENT paper has a corresponding binary
//! in `src/bin/` (`table1`, `table2`, `fig2`, `fig3`, `fig5`, `fig6`,
//! `fig7`). The binaries share the helpers in this library: building the
//! benchmark netlists (scaled down by default so the whole suite runs in
//! minutes on a laptop; pass `--full` for paper-sized profiles), planting the
//! Trojan populations, and running each test-generation technique.
//!
//! Every DETERRENT run goes through a [`deterrent_core::DeterrentSession`]
//! backed by the instance's shared [`ArtifactStore`], so an ablation grid
//! (Table 1, Figures 2–3) performs rare-net analysis and compatibility-graph
//! construction exactly once per `(netlist, θ)` — the binaries assert this
//! via the store's hit/miss counters ([`BenchInstance::assert_offline_reuse`]).
//!
//! # Example
//!
//! [`HarnessOptions`] turns the shared CLI flags into scaled netlists and
//! a matching pipeline configuration:
//!
//! ```
//! use deterrent_bench::HarnessOptions;
//! use netlist::synth::BenchmarkProfile;
//!
//! let options = HarnessOptions::default(); // --scale 20, seed 2022
//! let nl = options.netlist(&BenchmarkProfile::c2670());
//! assert!(nl.num_logic_gates() < 775, "profiles are shrunk by default");
//! let config = options.deterrent_config();
//! assert_eq!(config.seed, options.seed);
//! assert!(config.cache_policy.is_unbounded(), "no --cache-max-bytes given");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use baselines::{Atpg, Mero, RandomPatterns, Tarmac, TestGenerator, Tgrl};
use deterrent_core::{ArtifactStore, DeterrentConfig, DeterrentResult, DeterrentSession};
use netlist::synth::BenchmarkProfile;
use netlist::Netlist;
use sim::rare::RareNetAnalysis;
use sim::TestPattern;
use telemetry::{JsonlSink, Telemetry, TraceSink, TRACE_OUT_ENV_VAR};
use trojan::{CoverageEvaluator, Trojan, TrojanGenerator};

/// How aggressively the paper-sized benchmark profiles are shrunk.
///
/// The default scale of 20 turns c2670's 775 gates into ≈ 40 and MIPS's
/// 23 511 into ≈ 1 175, keeping every experiment's *shape* while finishing in
/// seconds. `--full` (scale 1) reproduces the paper-sized profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessOptions {
    /// Divisor applied to every benchmark profile.
    pub scale: usize,
    /// Number of Trojans planted per benchmark (the paper uses 100).
    pub num_trojans: usize,
    /// Trigger width of the planted Trojans (the paper's default is 4).
    pub trigger_width: usize,
    /// Master seed.
    pub seed: u64,
    /// Persistent artifact-cache directory (`--cache-dir`). Also honours
    /// the `DETERRENT_CACHE_DIR` environment variable when unset; `None`
    /// with no variable means memory-only caching.
    pub cache_dir: Option<PathBuf>,
    /// Cache size budget in bytes (`--cache-max-bytes`, `k`/`m`/`g`
    /// suffixes accepted). Also honours `DETERRENT_CACHE_MAX_BYTES` when
    /// unset; `None` with no variable means unbounded.
    pub cache_max_bytes: Option<u64>,
    /// `--slim-policy`: persist train-stage artifacts with the slim codec
    /// variant (~3× smaller; warm runs see a truncated loss history).
    pub slim_policy: bool,
    /// `--expect-warm`: after the run, assert that the persistent cache
    /// served every stage (zero recomputations) — the CI cache-reuse gate.
    pub expect_warm: bool,
    /// `--trace-out FILE`: write a JSONL telemetry trace of every session
    /// the harness runs. Also honours `DETERRENT_TRACE_OUT` when unset;
    /// `None` with no variable disables telemetry entirely. Tracing is
    /// out-of-band: stdout is byte-identical with or without it.
    pub trace_out: Option<PathBuf>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self {
            scale: 20,
            num_trojans: 50,
            trigger_width: 4,
            seed: 2022,
            cache_dir: None,
            cache_max_bytes: None,
            slim_policy: false,
            expect_warm: false,
            trace_out: None,
        }
    }
}

impl HarnessOptions {
    /// Parses command-line arguments: `--full` (paper-sized), `--scale N`,
    /// `--trojans N`, `--width N`, `--seed N`, `--cache-dir DIR`,
    /// `--cache-max-bytes N[k|m|g]`, `--slim-policy`, `--expect-warm`,
    /// `--trace-out FILE`.
    #[must_use]
    pub fn from_args() -> Self {
        let mut options = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => {
                    options.scale = 1;
                    options.num_trojans = 100;
                }
                "--scale" if i + 1 < args.len() => {
                    options.scale = args[i + 1].parse().unwrap_or(options.scale);
                    i += 1;
                }
                "--trojans" if i + 1 < args.len() => {
                    options.num_trojans = args[i + 1].parse().unwrap_or(options.num_trojans);
                    i += 1;
                }
                "--width" if i + 1 < args.len() => {
                    options.trigger_width = args[i + 1].parse().unwrap_or(options.trigger_width);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    options.seed = args[i + 1].parse().unwrap_or(options.seed);
                    i += 1;
                }
                "--cache-dir" if i + 1 < args.len() => {
                    options.cache_dir = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--cache-max-bytes" if i + 1 < args.len() => {
                    options.cache_max_bytes = deterrent_core::parse_bytes(&args[i + 1]);
                    i += 1;
                }
                "--slim-policy" => {
                    options.slim_policy = true;
                }
                "--expect-warm" => {
                    options.expect_warm = true;
                }
                "--trace-out" if i + 1 < args.len() => {
                    options.trace_out = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        if options.trace_out.is_none() {
            if let Ok(path) = std::env::var(TRACE_OUT_ENV_VAR) {
                if !path.trim().is_empty() {
                    options.trace_out = Some(PathBuf::from(path));
                }
            }
        }
        options
    }

    /// A telemetry handle honouring `--trace-out` / `DETERRENT_TRACE_OUT`:
    /// a JSONL sink on the named file, or the zero-cost disabled handle
    /// when no trace was requested (or the file cannot be created — the
    /// harness warns and runs untraced rather than failing an experiment).
    #[must_use]
    pub fn telemetry(&self) -> Telemetry {
        match &self.trace_out {
            Some(path) => match JsonlSink::create(path) {
                Ok(sink) => {
                    let sinks: Vec<Box<dyn TraceSink>> = vec![Box::new(sink)];
                    Telemetry::new(sinks)
                }
                Err(e) => {
                    eprintln!("[bench] cannot create trace file {}: {e}", path.display());
                    Telemetry::disabled()
                }
            },
            None => Telemetry::disabled(),
        }
    }

    /// An artifact store honouring the harness cache knobs: disk-backed
    /// when `--cache-dir` (or `DETERRENT_CACHE_DIR`) names a directory —
    /// bounded per `--cache-max-bytes` / `DETERRENT_CACHE_MAX_BYTES` and
    /// slimmed per `--slim-policy` — memory-only otherwise.
    #[must_use]
    pub fn store(&self) -> ArtifactStore {
        let config = self.deterrent_config();
        match config.resolved_cache_dir() {
            Some(dir) => ArtifactStore::with_disk_policy(dir, config.resolved_cache_policy()),
            None => ArtifactStore::new(),
        }
    }

    /// Builds the netlist for `profile` at the configured scale.
    #[must_use]
    pub fn netlist(&self, profile: &BenchmarkProfile) -> Netlist {
        let scaled = if self.scale <= 1 {
            profile.clone()
        } else {
            profile.scaled(self.scale)
        };
        scaled.generate(self.seed)
    }

    /// A DETERRENT configuration sized to the harness scale. The analysis
    /// section matches what [`BenchInstance::prepare`] runs (8192 patterns at
    /// the harness seed), so grid cells built on this config share the
    /// instance's cached [`deterrent_core::RareArtifact`].
    #[must_use]
    pub fn deterrent_config(&self) -> DeterrentConfig {
        let base = if self.scale <= 1 {
            DeterrentConfig::paper_preset()
        } else {
            DeterrentConfig::fast_preset()
                .with_episodes(120)
                .with_eval_rollouts(48)
                .with_k_patterns(24)
        };
        let mut base = base
            .with_probability_patterns(BenchInstance::ANALYSIS_PATTERNS)
            .with_seed(self.seed);
        if let Some(dir) = &self.cache_dir {
            base = base.with_cache_dir(dir.clone());
        }
        base.cache_policy.max_bytes = self.cache_max_bytes;
        base.cache_policy.slim_policy = self.slim_policy;
        base
    }
}

/// One prepared benchmark instance: the netlist, its rare-net analysis, a
/// planted Trojan population, and the artifact store every DETERRENT run on
/// this instance shares.
#[derive(Debug)]
pub struct BenchInstance {
    /// Benchmark name (from the profile).
    pub name: String,
    /// The golden netlist.
    pub netlist: Netlist,
    /// Rare-net analysis at the given threshold (a clone of the cached
    /// artifact's payload, kept for Trojan generation and reporting).
    pub analysis: RareNetAnalysis,
    /// The planted Trojans used for coverage evaluation.
    pub trojans: Vec<Trojan>,
    /// The analysis configuration the instance was prepared with; every
    /// [`BenchInstance::run_deterrent`] call is pinned to it so grid cells
    /// hit the cached artifacts.
    config: DeterrentConfig,
    store: ArtifactStore,
    telemetry: Telemetry,
}

impl BenchInstance {
    /// Probability-estimation pattern budget used by every instance.
    pub const ANALYSIS_PATTERNS: usize = 8192;

    /// Prepares a benchmark instance for `profile`: generate the netlist, run
    /// rare-net analysis at `threshold` (cached in the instance store), and
    /// plant the Trojan population.
    ///
    /// When the design does not admit triggers of the requested width the
    /// width is reduced (down to 2) until sampling succeeds — the scaled-down
    /// profiles occasionally need this.
    #[must_use]
    pub fn prepare(profile: &BenchmarkProfile, options: &HarnessOptions, threshold: f64) -> Self {
        let netlist = options.netlist(profile);
        let config = options.deterrent_config().with_threshold(threshold);
        let store = options.store();
        let telemetry = options.telemetry();
        let analysis = {
            let mut session = DeterrentSession::with_store(&netlist, config.clone(), store.clone());
            session.set_telemetry(telemetry.clone(), None);
            session.analyze().analysis().clone()
        };
        let mut generator = TrojanGenerator::new(&netlist, options.seed ^ 0x7707);
        let mut width = options.trigger_width;
        let mut trojans = Vec::new();
        while width >= 2 {
            trojans = generator.sample_many(&analysis, width, options.num_trojans);
            if trojans.len() >= options.num_trojans.min(10) {
                break;
            }
            width -= 1;
        }
        Self {
            name: profile.name.clone(),
            netlist,
            analysis,
            trojans,
            config,
            store,
            telemetry,
        }
    }

    /// The artifact store shared by every DETERRENT run on this instance.
    #[must_use]
    pub fn store(&self) -> ArtifactStore {
        self.store.clone()
    }

    /// Trigger coverage (%) of `patterns` against the planted Trojans.
    #[must_use]
    pub fn coverage(&self, patterns: &[TestPattern]) -> f64 {
        if self.trojans.is_empty() {
            return 0.0;
        }
        CoverageEvaluator::new(&self.netlist, self.trojans.clone())
            .evaluate(patterns)
            .coverage_percent()
    }

    /// Full coverage report (for cumulative curves).
    #[must_use]
    pub fn coverage_report(&self, patterns: &[TestPattern]) -> trojan::CoverageReport {
        CoverageEvaluator::new(&self.netlist, self.trojans.clone()).evaluate(patterns)
    }

    /// Runs the DETERRENT pipeline on this instance through a session
    /// sharing the instance store, so repeated calls (ablation grids) reuse
    /// the cached analysis and graph.
    ///
    /// The config's analysis section and seed are pinned to the instance's;
    /// `k` (the number of compatible sets turned into patterns) and the
    /// number of greedy evaluation rollouts are scaled with the rare-net
    /// count, mirroring how the paper tunes `k` per benchmark (e.g. 1304
    /// patterns for MIPS but only 8 for c2670).
    #[must_use]
    pub fn run_deterrent(&self, mut config: DeterrentConfig) -> DeterrentResult {
        config.analysis = self.config.analysis;
        config.seed = self.config.seed;
        config.select.k_patterns = config.select.k_patterns.max(self.analysis.len());
        config.select.eval_rollouts = config.select.eval_rollouts.max(self.analysis.len());
        let mut session = DeterrentSession::with_store(&self.netlist, config, self.store.clone());
        session.set_telemetry(self.telemetry.clone(), None);
        session.run()
    }

    /// Asserts (via the store's hit/miss counters) that an ablation grid of
    /// `cells` DETERRENT runs performed rare-net analysis and
    /// compatibility-graph construction at most **once** for this instance —
    /// computed on a cold cache, or loaded from the persistent disk tier on
    /// a warm one, but never recomputed by a grid cell.
    ///
    /// # Panics
    ///
    /// Panics when any cell recomputed the analysis or the graph.
    pub fn assert_offline_reuse(&self, cells: usize) {
        let counters = self.store.counters();
        assert_eq!(
            counters.analyze.misses + counters.analyze.disk_hits,
            1,
            "rare-net analysis must enter the store exactly once per (netlist, θ); counters: {counters:?}"
        );
        assert_eq!(
            counters.analyze.hits, cells as u64,
            "every grid cell must reuse the prepared analysis; counters: {counters:?}"
        );
        assert_eq!(
            counters.build_graph.misses + counters.build_graph.disk_hits,
            1,
            "the compatibility graph must enter the store exactly once per (netlist, θ); counters: {counters:?}"
        );
        assert_eq!(
            counters.build_graph.hits,
            cells.saturating_sub(1) as u64,
            "every later grid cell must reuse the graph; counters: {counters:?}"
        );
    }

    /// Epilogue every bench binary calls after its experiment: prints the
    /// per-stage store counters to **stderr** (stdout stays byte-identical
    /// between cold and warm runs, which the CI cache-reuse gate compares)
    /// and, under `--expect-warm`, asserts the persistent cache served every
    /// stage.
    ///
    /// # Panics
    ///
    /// Panics when `--expect-warm` was given and any stage recomputed, hit
    /// a corrupt file, or the store has no disk tier at all.
    pub fn finish(&self, options: &HarnessOptions) {
        print_store_summary(&self.store);
        if self.telemetry.is_enabled() {
            self.telemetry.flush_metrics();
        }
        if options.expect_warm {
            assert_warm(&self.store);
        }
    }
}

/// Prints one stderr line per stage with the store's tier-by-tier counters,
/// in a stable machine-greppable format:
///
/// ```text
/// [store] analyze: mem_hits=2 disk_hits=1 computed=0 disk_misses=0 corrupt=0
/// ```
///
/// `computed` is the number of lookups no cache tier could serve (the
/// stage's `misses` counter). The CI cache-reuse gate greps these lines to
/// prove a warm run recomputed nothing.
pub fn print_store_summary(store: &ArtifactStore) {
    eprint!("{}", store.summary());
}

/// Asserts every stage of the run was served from the cache — zero
/// recomputations and zero corrupt files (the `--expect-warm` contract).
///
/// # Panics
///
/// Panics when the store has no disk tier, recomputed any stage, or hit a
/// corrupt artifact file.
pub fn assert_warm(store: &ArtifactStore) {
    let counters = store.counters();
    assert!(
        store.disk_dir().is_some(),
        "--expect-warm requires --cache-dir (or DETERRENT_CACHE_DIR)"
    );
    assert_eq!(
        counters.total_misses(),
        0,
        "--expect-warm: every stage must be served from the cache; counters: {counters:?}"
    );
    assert_eq!(
        counters.total_disk_corrupt(),
        0,
        "--expect-warm: no artifact file may be corrupt; counters: {counters:?}"
    );
    assert!(
        counters.total_disk_hits() > 0,
        "--expect-warm: the disk tier never served anything — was the cache populated?; counters: {counters:?}"
    );
    eprintln!(
        "[store] --expect-warm satisfied: {} disk hit(s), 0 recomputations",
        counters.total_disk_hits()
    );
}

/// Coverage and test length of one technique on one benchmark (a cell group
/// of Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct TechniqueResult {
    /// Technique name.
    pub technique: String,
    /// Number of test patterns.
    pub test_length: usize,
    /// Trigger coverage in percent.
    pub coverage: f64,
}

/// Runs every baseline plus DETERRENT on `instance` and returns one
/// [`TechniqueResult`] per technique, in Table 2 column order.
#[must_use]
pub fn run_all_techniques(
    instance: &BenchInstance,
    options: &HarnessOptions,
) -> Vec<TechniqueResult> {
    let seed = options.seed;
    let mut results = Vec::new();

    // TGRL first: its test length sets the budget for Random and TARMAC, the
    // same protocol the paper uses for a fair comparison.
    let tgrl_episodes = if options.scale <= 1 { 400 } else { 40 };
    let tgrl_patterns =
        Tgrl::new(tgrl_episodes, seed).generate(&instance.netlist, &instance.analysis);
    let budget = tgrl_patterns.len().max(8);

    let random_patterns =
        RandomPatterns::new(budget, seed).generate(&instance.netlist, &instance.analysis);
    let atpg_patterns = Atpg::new(seed).generate(&instance.netlist, &instance.analysis);
    let tarmac_patterns = Tarmac::new(budget, seed).generate(&instance.netlist, &instance.analysis);
    let mero_patterns =
        Mero::new(5, budget * 50, seed).generate(&instance.netlist, &instance.analysis);
    let deterrent = instance.run_deterrent(options.deterrent_config());

    for (name, patterns) in [
        ("Random", &random_patterns),
        ("TestMAX", &atpg_patterns),
        ("MERO", &mero_patterns),
        ("TARMAC", &tarmac_patterns),
        ("TGRL", &tgrl_patterns),
        ("DETERRENT", &deterrent.patterns),
    ] {
        results.push(TechniqueResult {
            technique: name.to_string(),
            test_length: patterns.len(),
            coverage: instance.coverage(patterns),
        });
    }
    results
}

/// Formats a Table-2-style row group as aligned text.
#[must_use]
pub fn format_results_table(
    design: &str,
    rare_nets: usize,
    gates: usize,
    rows: &[TechniqueResult],
) -> String {
    let mut out = format!(
        "{design}: {gates} gates, {rare_nets} rare nets\n  {:<28} {:>12} {:>10}\n",
        "technique", "test length", "cov (%)"
    );
    for r in rows {
        out.push_str(&format!(
            "  {:<28} {:>12} {:>10.1}\n",
            r.technique, r.test_length, r.coverage
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_and_scaling() {
        let options = HarnessOptions::default();
        assert_eq!(options.scale, 20);
        let nl = options.netlist(&BenchmarkProfile::c2670());
        assert!(nl.num_logic_gates() < 200);
    }

    #[test]
    fn prepare_produces_trojans_and_coverage_runs() {
        let options = HarnessOptions {
            num_trojans: 10,
            trigger_width: 2,
            ..HarnessOptions::default()
        };
        let instance = BenchInstance::prepare(&BenchmarkProfile::c2670(), &options, 0.2);
        assert!(!instance.trojans.is_empty());
        let random = RandomPatterns::new(32, 1).generate(&instance.netlist, &instance.analysis);
        let cov = instance.coverage(&random);
        assert!((0.0..=100.0).contains(&cov));
    }

    #[test]
    fn grid_cells_share_the_offline_stages() {
        let options = HarnessOptions {
            num_trojans: 5,
            trigger_width: 2,
            ..HarnessOptions::default()
        };
        let instance = BenchInstance::prepare(&BenchmarkProfile::c2670(), &options, 0.2);
        let base = options.deterrent_config().with_episodes(20);
        let a = instance.run_deterrent(base.clone());
        let b = instance.run_deterrent(
            base.clone()
                .with_ablation(deterrent_core::RewardMode::EndOfEpisode, true),
        );
        instance.assert_offline_reuse(2);
        assert_eq!(a.rare_nets, b.rare_nets, "both cells saw the same graph");
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let rows = vec![
            TechniqueResult {
                technique: "Random".into(),
                test_length: 10,
                coverage: 12.5,
            },
            TechniqueResult {
                technique: "DETERRENT".into(),
                test_length: 3,
                coverage: 99.0,
            },
        ];
        let text = format_results_table("c2670", 43, 775, &rows);
        assert!(text.contains("Random") && text.contains("DETERRENT"));
        assert!(text.contains("99.0"));
    }
}
