//! Criterion benchmarks of the end-to-end pipelines: DETERRENT and each
//! baseline on a scaled c2670 profile. One benchmark per Table 2 technique
//! plus the reward-mode ablation of Table 1 / Figure 2.

use baselines::{Atpg, RandomPatterns, Tarmac, TestGenerator, Tgrl};
use criterion::{criterion_group, criterion_main, Criterion};
use deterrent_core::{Deterrent, DeterrentConfig, RewardMode};
use netlist::synth::BenchmarkProfile;
use sim::rare::RareNetAnalysis;

fn setup() -> (netlist::Netlist, RareNetAnalysis) {
    let nl = BenchmarkProfile::c2670().scaled(25).generate(3);
    let analysis = RareNetAnalysis::estimate(&nl, 0.2, 4096, 3);
    (nl, analysis)
}

fn small_config() -> DeterrentConfig {
    DeterrentConfig::fast_preset()
        .with_episodes(30)
        .with_eval_rollouts(8)
        .with_k_patterns(8)
}

fn bench_deterrent(c: &mut Criterion) {
    let (nl, analysis) = setup();
    c.bench_function("pipeline/deterrent_allsteps_masked", |b| {
        b.iter(|| Deterrent::new(&nl, small_config()).run_with_analysis(&analysis))
    });
    c.bench_function("pipeline/deterrent_endofepisode", |b| {
        b.iter(|| {
            let config = small_config().with_ablation(RewardMode::EndOfEpisode, true);
            Deterrent::new(&nl, config).run_with_analysis(&analysis)
        })
    });
    c.bench_function("pipeline/deterrent_no_masking", |b| {
        b.iter(|| {
            let config = small_config().with_ablation(RewardMode::AllSteps, false);
            Deterrent::new(&nl, config).run_with_analysis(&analysis)
        })
    });
}

fn bench_baselines(c: &mut Criterion) {
    let (nl, analysis) = setup();
    c.bench_function("pipeline/random_64", |b| {
        b.iter(|| RandomPatterns::new(64, 1).generate(&nl, &analysis))
    });
    c.bench_function("pipeline/tarmac_16_cliques", |b| {
        b.iter(|| Tarmac::new(16, 1).generate(&nl, &analysis))
    });
    c.bench_function("pipeline/tgrl_10_episodes", |b| {
        b.iter(|| Tgrl::new(10, 1).generate(&nl, &analysis))
    });
    c.bench_function("pipeline/atpg", |b| {
        b.iter(|| Atpg::new(1).generate(&nl, &analysis))
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_deterrent, bench_baselines
}
criterion_main!(pipeline);
