//! The staged DETERRENT session — the crate's primary API.
//!
//! A [`DeterrentSession`] binds one netlist to one [`DeterrentConfig`] and
//! exposes the pipeline as six explicit, individually cacheable stages:
//!
//! | stage | method | artifact |
//! |---|---|---|
//! | ❶ probability estimation | [`DeterrentSession::estimate`] | [`ProbArtifact`] |
//! | ❷ rare-net thresholding | [`DeterrentSession::analyze`] | [`RareArtifact`] |
//! | ❸ compatibility graph | [`DeterrentSession::build_graph`] | [`GraphArtifact`] |
//! | ❹ PPO training | [`DeterrentSession::train`] | [`PolicyArtifact`] |
//! | ❺ harvest & selection | [`DeterrentSession::select`] | [`SetsArtifact`] |
//! | ❻ pattern generation | [`DeterrentSession::generate`] | [`crate::DeterrentResult`] |
//!
//! Each artifact is cheaply clonable and keyed by the netlist fingerprint,
//! the stage's own config section, the seed, and the upstream artifact's key
//! — never the thread count. The estimate stage's key deliberately excludes
//! the rareness threshold θ: [`DeterrentSession::analyze`] always resolves
//! through [`DeterrentSession::estimate`] and layers θ on top, so a θ-sweep
//! pays for Monte-Carlo estimation exactly once per (netlist, seed) and
//! re-thresholds cheaply per θ. Sessions that share an [`ArtifactStore`]
//! (see [`DeterrentSession::with_store`]) therefore recompute only the
//! stages whose inputs actually changed, which is exactly what the paper's
//! evaluation grids need: Table 1 and Figures 2–3 rerun the same
//! netlist/graph under reward/masking/exploration ablations, and the
//! threshold-transfer experiment shares one estimation across every θ.
//!
//! All stages run on **one** shared deterministic executor, so estimation,
//! graph construction, and rollout collection all contribute to the final
//! [`crate::TrainingMetrics::exec_stats`]. Results are bit-identical to the
//! monolithic [`crate::Deterrent::run`] wrapper at any thread count.

use std::time::Instant;

use exec::{Exec, ExecStats};
use netlist::Netlist;
use rl::{train_parallel_observed, CollectOptions, ParallelTrainOptions, PpoTrainer};
use sat::CircuitOracle;
use sim::rare::RareNetAnalysis;
use sim::RareNetEstimate;
use telemetry::{Span, SpanContext, Telemetry};

use crate::artifact::{
    graph_key, imported_rare_key, patterns_key, policy_key, prob_key, rare_key, sets_key,
    GeneratedPatterns, PatternsArtifact, ProbArtifact, SelectedSets, TrainedPolicy,
};
use crate::{
    generate_patterns_with, select_k_largest, ArtifactStore, CacheEvents, CompatSetEnv,
    CompatibilityGraph, DeterrentConfig, DeterrentResult, GraphArtifact, PolicyArtifact,
    RareArtifact, RunObserver, SetsArtifact, Stage, StageCounters, StageMetrics, TrainingMetrics,
};

/// In-flight telemetry for one stage invocation: the open span plus the
/// counter baselines needed to report per-stage deltas when it closes.
struct StageTrace {
    span: Span,
    exec_before: ExecStats,
    counters_before: StageCounters,
    events_before: CacheEvents,
}

/// A staged DETERRENT pipeline bound to one netlist and one configuration.
///
/// See the module docs for the stage/artifact model. The typical
/// single-run flow is [`DeterrentSession::run`]; grids drive the stages
/// explicitly or share an [`ArtifactStore`] across per-cell sessions.
///
/// # Example
///
/// ```
/// use deterrent_core::{ArtifactStore, DeterrentConfig, DeterrentSession, RewardMode};
/// use netlist::synth::BenchmarkProfile;
///
/// let netlist = BenchmarkProfile::c2670().scaled(30).generate(1);
/// let config = DeterrentConfig::fast_preset().with_threshold(0.2);
/// let store = ArtifactStore::new();
///
/// // Cell 1: the final architecture.
/// let mut session = DeterrentSession::with_store(&netlist, config.clone(), store.clone());
/// let baseline = session.run();
///
/// // Cell 2: reward ablation — analysis and graph are served from the store.
/// let ablated = config.with_ablation(RewardMode::EndOfEpisode, true);
/// let mut session = DeterrentSession::with_store(&netlist, ablated, store.clone());
/// let _ = session.run();
/// assert_eq!(store.counters().analyze.misses, 1);
/// assert_eq!(store.counters().build_graph.misses, 1);
/// assert!(!baseline.patterns.is_empty());
/// ```
pub struct DeterrentSession<'a> {
    netlist: &'a Netlist,
    netlist_fp: u64,
    config: DeterrentConfig,
    exec: Exec,
    store: ArtifactStore,
    observers: Vec<Box<dyn RunObserver + 'a>>,
    telemetry: Telemetry,
    trace_parent: Option<SpanContext>,
}

impl std::fmt::Debug for DeterrentSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeterrentSession")
            .field("netlist", &self.netlist.name())
            .field("netlist_fp", &self.netlist_fp)
            .field("config", &self.config)
            .field("threads", &self.exec.threads())
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl<'a> DeterrentSession<'a> {
    /// Creates a session with a fresh private [`ArtifactStore`]. When the
    /// config names a cache directory (the `cache_dir` knob or the
    /// `DETERRENT_CACHE_DIR` environment variable,
    /// [`DeterrentConfig::resolved_cache_dir`]), the store is backed by the
    /// persistent disk tier there — bounded and slimmed per the config's
    /// [`DeterrentConfig::resolved_cache_policy`] — so artifacts survive
    /// the process and a repeat invocation recomputes nothing.
    #[must_use]
    pub fn new(netlist: &'a Netlist, config: DeterrentConfig) -> Self {
        let store = match config.resolved_cache_dir() {
            Some(dir) => ArtifactStore::with_disk_policy(dir, config.resolved_cache_policy()),
            None => ArtifactStore::new(),
        };
        Self::with_store(netlist, config, store)
    }

    /// Creates a session sharing `store` — the way ablation grids reuse the
    /// stages whose inputs did not change between cells.
    #[must_use]
    pub fn with_store(netlist: &'a Netlist, config: DeterrentConfig, store: ArtifactStore) -> Self {
        let exec = Exec::new(config.threads);
        Self {
            netlist,
            netlist_fp: netlist.content_fingerprint(),
            config,
            exec,
            store,
            observers: Vec::new(),
            telemetry: Telemetry::disabled(),
            trace_parent: None,
        }
    }

    /// The netlist the session is bound to.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DeterrentConfig {
        &self.config
    }

    /// Replaces the configuration — the idiomatic way to step one session
    /// through an ablation grid. Already-cached artifacts stay valid; only
    /// stages whose config section changed will recompute. Changing the
    /// thread knob rebuilds the executor (and resets its stats).
    pub fn set_config(&mut self, config: DeterrentConfig) {
        if config.threads != self.config.threads {
            self.exec = Exec::new(config.threads);
            // A rebuilt executor must keep reporting into the same trace.
            self.exec
                .set_telemetry(self.telemetry.clone(), self.trace_parent.clone());
        }
        self.config = config;
    }

    /// Attaches a telemetry handle. Every stage invocation then emits one
    /// span named after the stage — a child of `parent` when given (the
    /// campaign parents stage spans under the cell attempt) — carrying its
    /// [`StageMetrics`] plus cache-tier and executor deltas, and the
    /// session executor emits per-dispatch `exec.call` spans. Telemetry is
    /// strictly out-of-band: artifacts, caching, and results are
    /// unaffected. A disabled handle detaches.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, parent: Option<SpanContext>) {
        self.exec.set_telemetry(telemetry.clone(), parent.clone());
        self.telemetry = telemetry;
        self.trace_parent = parent;
    }

    /// A handle to the session's artifact store (clones share the cache).
    #[must_use]
    pub fn store(&self) -> ArtifactStore {
        self.store.clone()
    }

    /// Task/timing counters of the session's shared executor, accumulated
    /// across every stage run so far (estimation, witness harvest, funnel
    /// tiers, rollout collection). Cache hits contribute nothing — the work
    /// never ran.
    #[must_use]
    pub fn exec_stats(&self) -> ExecStats {
        self.exec.stats()
    }

    /// Registers a progress observer. Observers are per-session (not stored
    /// in artifacts) and strictly passive. Observers may borrow from the
    /// surrounding scope (any lifetime outliving the session's netlist
    /// borrow) — campaign drivers register forwarding observers that hold
    /// a reference to a shared progress sink.
    pub fn add_observer(&mut self, observer: Box<dyn RunObserver + 'a>) {
        self.observers.push(observer);
    }

    fn notify_started(&mut self, stage: Stage) {
        for o in &mut self.observers {
            o.stage_started(stage);
        }
    }

    /// Opens the stage span and snapshots the counters it will report
    /// deltas against. `None` when telemetry is disabled.
    fn begin_stage_trace(&self, stage: Stage) -> Option<StageTrace> {
        if !self.telemetry.is_enabled() {
            return None;
        }
        let span = match &self.trace_parent {
            Some(ctx) => self.telemetry.child_span(ctx, stage.name()),
            None => self.telemetry.span(stage.name()),
        };
        Some(StageTrace {
            span,
            exec_before: self.exec.stats(),
            counters_before: self.store.counters().stage(stage),
            events_before: self.store.cache_events(),
        })
    }

    /// Closes the stage span with the stage's [`StageMetrics`] as
    /// deterministic attributes and the cache-tier / executor / timing
    /// deltas as nondeterministic ones. Everything downstream of *which
    /// session computed a shared artifact* — `cache_hit`, executor deltas,
    /// store tier counters — is scheduling-dependent when the store is
    /// shared (a concurrent session may compute the artifact first), so
    /// only the stage identity and its deterministic payload size stay in
    /// `attrs`.
    fn finish_stage_trace(&self, trace: Option<StageTrace>, metrics: &StageMetrics) {
        let Some(mut trace) = trace else { return };
        let span = &mut trace.span;
        span.attr_str("stage", metrics.stage.name());
        span.attr_u64("items", metrics.items);
        span.vary("cache_hit", telemetry::Value::Bool(metrics.cache_hit));
        let exec = self.exec.stats();
        span.vary_u64(
            "exec_calls",
            exec.calls.saturating_sub(trace.exec_before.calls),
        );
        span.vary_u64(
            "exec_tasks",
            exec.tasks.saturating_sub(trace.exec_before.tasks),
        );
        let wall_ns = (metrics.wall_seconds * 1e9) as u64;
        span.vary_u64("wall_ns", wall_ns);
        span.vary_u64(
            "exec_busy_ns",
            exec.busy_nanos.saturating_sub(trace.exec_before.busy_nanos),
        );
        let c = self.store.counters().stage(metrics.stage);
        let b = trace.counters_before;
        span.vary_u64("store_mem_hits", c.hits.saturating_sub(b.hits));
        span.vary_u64("store_computed", c.misses.saturating_sub(b.misses));
        span.vary_u64("store_disk_hits", c.disk_hits.saturating_sub(b.disk_hits));
        span.vary_u64(
            "store_disk_misses",
            c.disk_misses.saturating_sub(b.disk_misses),
        );
        span.vary_u64(
            "store_disk_corrupt",
            c.disk_corrupt.saturating_sub(b.disk_corrupt),
        );
        let e = self.store.cache_events();
        let eb = trace.events_before;
        span.vary_u64("cache_corrupt", e.corrupt.saturating_sub(eb.corrupt));
        span.vary_u64(
            "cache_version_mismatch",
            e.version_mismatch.saturating_sub(eb.version_mismatch),
        );
        span.vary_u64("cache_io", e.io.saturating_sub(eb.io));
        span.vary_u64(
            "cache_evictions",
            e.budget_evictions.saturating_sub(eb.budget_evictions),
        );
        self.telemetry
            .histogram("stage.wall_nanos")
            .observe_nanos(wall_ns);
        trace.span.close();
    }

    fn notify_finished(&mut self, metrics: StageMetrics) {
        for o in &mut self.observers {
            o.stage_finished(&metrics);
        }
    }

    /// Stage ❶ — Monte-Carlo probability estimation with the single-pass
    /// compacting witness harvest, at the configured pattern budget,
    /// retention ceiling, and seed. Cached by (netlist, pattern budget,
    /// retention ceiling, seed) — the rareness threshold θ is deliberately
    /// absent, so every θ of a sweep shares this artifact.
    pub fn estimate(&mut self) -> ProbArtifact {
        let key = prob_key(self.netlist_fp, &self.config.analysis, self.config.seed);
        self.notify_started(Stage::Estimate);
        let trace = self.begin_stage_trace(Stage::Estimate);
        let start = Instant::now();
        let (artifact, cache_hit) = match self.store.lookup_prob(key) {
            Some(found) => (found, true),
            None => {
                let estimate = RareNetEstimate::estimate_with(
                    self.netlist,
                    self.config.analysis.effective_retain(),
                    self.config.analysis.probability_patterns,
                    self.config.seed,
                    &self.exec,
                );
                let artifact = ProbArtifact::new(key, estimate);
                self.store.insert_prob(&artifact);
                (artifact, false)
            }
        };
        let metrics = StageMetrics {
            stage: Stage::Estimate,
            wall_seconds: start.elapsed().as_secs_f64(),
            cache_hit,
            items: artifact.num_candidates() as u64,
        };
        self.finish_stage_trace(trace, &metrics);
        self.notify_finished(metrics);
        artifact
    }

    /// Stage ❷ — rare-net analysis at the configured threshold θ: resolves
    /// the shared [`DeterrentSession::estimate`] artifact (cache or
    /// compute), then thresholds it. Cached by (prob key, θ); the
    /// thresholding itself is a pure prefix slice, so a new θ over a warm
    /// estimate costs no simulation at all — the result is bit-identical to
    /// a from-scratch analysis at that θ.
    pub fn analyze(&mut self) -> RareArtifact {
        let probs = self.estimate();
        let theta = self.config.analysis.rareness_threshold;
        let key = rare_key(probs.key, theta);
        self.notify_started(Stage::Analyze);
        let trace = self.begin_stage_trace(Stage::Analyze);
        let start = Instant::now();
        let (artifact, cache_hit) = match self.store.lookup_rare(key) {
            Some(found) => (found, true),
            None => {
                let artifact = RareArtifact::new(key, probs.estimate().threshold(theta));
                self.store.insert_rare(&artifact);
                (artifact, false)
            }
        };
        let metrics = StageMetrics {
            stage: Stage::Analyze,
            wall_seconds: start.elapsed().as_secs_f64(),
            cache_hit,
            items: artifact.len() as u64,
        };
        self.finish_stage_trace(trace, &metrics);
        self.notify_finished(metrics);
        artifact
    }

    /// Registers an externally computed analysis as a [`RareArtifact`],
    /// keyed by its *content* so equal analyses share downstream artifacts.
    /// This is how the legacy [`crate::Deterrent::run_with_analysis`] path
    /// and callers with bespoke estimation settings enter the session world.
    pub fn import_analysis(&mut self, analysis: RareNetAnalysis) -> RareArtifact {
        let key = imported_rare_key(self.netlist_fp, &analysis);
        self.notify_started(Stage::Analyze);
        let trace = self.begin_stage_trace(Stage::Analyze);
        let start = Instant::now();
        let (artifact, cache_hit) = match self.store.lookup_rare(key) {
            Some(found) => (found, true),
            None => {
                let artifact = RareArtifact::new(key, analysis);
                self.store.insert_rare(&artifact);
                (artifact, false)
            }
        };
        let metrics = StageMetrics {
            stage: Stage::Analyze,
            wall_seconds: start.elapsed().as_secs_f64(),
            cache_hit,
            items: artifact.len() as u64,
        };
        self.finish_stage_trace(trace, &metrics);
        self.notify_finished(metrics);
        artifact
    }

    /// Stage ❸ — pairwise-compatibility graph over `rare`'s rare nets.
    /// Cached by (rare key, compat config); built on the session executor.
    pub fn build_graph(&mut self, rare: &RareArtifact) -> GraphArtifact {
        let key = graph_key(rare.key, &self.config.compat);
        self.notify_started(Stage::BuildGraph);
        let mut trace = self.begin_stage_trace(Stage::BuildGraph);
        let start = Instant::now();
        let (artifact, cache_hit) = match self.store.lookup_graph(key) {
            Some(found) => (found, true),
            None => {
                let graph = CompatibilityGraph::build_on(
                    self.netlist,
                    rare.analysis(),
                    self.config.compat.strategy,
                    &self.exec,
                );
                let artifact = GraphArtifact::new(
                    key,
                    graph,
                    rare.analysis().threshold(),
                    start.elapsed().as_secs_f64(),
                );
                self.store.insert_graph(&artifact);
                (artifact, false)
            }
        };
        let metrics = StageMetrics {
            stage: Stage::BuildGraph,
            wall_seconds: start.elapsed().as_secs_f64(),
            cache_hit,
            items: artifact.graph().stats().pairs_total,
        };
        if let Some(trace) = trace.as_mut() {
            // The effective enumeration-budget constants are fitted from a
            // *sequential* probe over deterministically-ordered pairs, so
            // they are thread-count-independent → attrs. The aggregate
            // solver counters depend on how tier-3 work was chunked across
            // workers (each worker owns an incremental solver whose learned
            // clauses carry across its chunk) → vary.
            let s = artifact.graph().stats();
            let span = &mut trace.span;
            span.attr_u64("budget_sat_base_word_ops", s.budget_sat_base_word_ops);
            span.attr_u64(
                "budget_sat_per_gate_word_ops",
                s.budget_sat_per_gate_word_ops,
            );
            span.attr_u64("budget_probe_queries", s.budget_probe_queries);
            span.attr_bool("budget_self_tuned", s.budget_self_tuned);
            span.vary_u64("sat_decisions", s.solver.decisions);
            span.vary_u64("sat_conflicts", s.solver.conflicts);
            span.vary_u64("sat_propagations", s.solver.propagations);
            span.vary_u64("sat_learned_clauses", s.solver.learned_clauses);
            span.vary_u64("sat_restarts", s.solver.restarts);
            span.vary_u64("sat_reduces", s.solver.reduces);
            span.vary_u64("sat_deleted_clauses", s.solver.deleted_clauses);
            span.vary_u64("sat_peak_learnts", s.solver.peak_learnts);
        }
        self.finish_stage_trace(trace, &metrics);
        self.notify_finished(metrics);
        artifact
    }

    /// Stage ❹ — PPO training over the compatible-set MDP of `graph`.
    /// Cached by (graph key, train config, seed). Emits
    /// [`RunObserver::training_round`] after every frozen-policy round when
    /// it actually trains.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no rare nets (check
    /// [`CompatibilityGraph::is_empty`] first, or use
    /// [`DeterrentSession::run`] which short-circuits to an empty result).
    pub fn train(&mut self, graph: &GraphArtifact) -> PolicyArtifact {
        let key = policy_key(graph.key, &self.config.train, self.config.seed);
        self.notify_started(Stage::Train);
        let trace = self.begin_stage_trace(Stage::Train);
        let start = Instant::now();
        let (artifact, cache_hit) = match self.store.lookup_policy(key) {
            Some(found) => (found, true),
            None => {
                let train = self.config.train.clone();
                let proto_env = CompatSetEnv::new(self.netlist, graph.graph(), &self.config);
                let mut trainer = PpoTrainer::new(
                    graph.graph().len(),
                    graph.graph().len(),
                    &train.ppo,
                    self.config.seed,
                );
                let options = ParallelTrainOptions {
                    episodes: train.episodes,
                    max_steps: train.steps_per_episode,
                    round_episodes: train.rollout_round,
                    seed: self.config.seed,
                };
                let finish =
                    |env: &mut CompatSetEnv<'_>| (env.take_harvest(), env.exact_sat_checks());
                let mut observers = std::mem::take(&mut self.observers);
                let outcome = train_parallel_observed(
                    &proto_env,
                    &mut trainer,
                    &options,
                    &self.exec,
                    finish,
                    |progress| {
                        for o in &mut observers {
                            o.training_round(progress);
                        }
                    },
                );
                self.observers = observers;
                let training_seconds = start.elapsed().as_secs_f64();

                let mut harvested_sets = Vec::new();
                let mut env_sat_checks = 0u64;
                for (sets, checks) in outcome.harvests {
                    harvested_sets.extend(sets);
                    env_sat_checks += checks;
                }
                let final_mean_reward = outcome
                    .report
                    .mean_reward_last(train.episodes.div_ceil(10).max(1));
                let artifact = PolicyArtifact::new(
                    key,
                    TrainedPolicy {
                        trainer,
                        report: outcome.report,
                        harvested_sets,
                        env_sat_checks,
                        training_seconds,
                        final_mean_reward,
                    },
                );
                self.store.insert_policy(&artifact);
                (artifact, false)
            }
        };
        let metrics = StageMetrics {
            stage: Stage::Train,
            wall_seconds: start.elapsed().as_secs_f64(),
            cache_hit,
            items: self.config.train.episodes as u64,
        };
        self.finish_stage_trace(trace, &metrics);
        self.notify_finished(metrics);
        artifact
    }

    /// Stage ❺ — greedy evaluation rollouts from the trained policy plus
    /// `k`-largest selection over the combined training + evaluation
    /// harvest. Cached by (policy key, select config, seed).
    ///
    /// The evaluation episode streams continue where the training streams
    /// ended (`first_episode = episodes`), so training and evaluation never
    /// share an RNG stream.
    pub fn select(&mut self, graph: &GraphArtifact, policy: &PolicyArtifact) -> SetsArtifact {
        debug_assert_eq!(
            policy_key(graph.key, &self.config.train, self.config.seed),
            policy.key,
            "select: the policy artifact does not belong to this graph/config"
        );
        let key = sets_key(policy.key, &self.config.select, self.config.seed);
        self.notify_started(Stage::Select);
        let trace = self.begin_stage_trace(Stage::Select);
        let start = Instant::now();
        let (artifact, cache_hit) = match self.store.lookup_sets(key) {
            Some(found) => (found, true),
            None => {
                let proto_env = CompatSetEnv::new(self.netlist, graph.graph(), &self.config);
                let finish =
                    |env: &mut CompatSetEnv<'_>| (env.take_harvest(), env.exact_sat_checks());
                let eval = rl::collect_episodes(
                    &proto_env,
                    &policy.policy().trainer,
                    &CollectOptions {
                        count: self.config.select.eval_rollouts,
                        max_steps: self.config.train.steps_per_episode,
                        seed: self.config.seed,
                        first_episode: self.config.train.episodes as u64,
                        greedy: true,
                    },
                    &self.exec,
                    finish,
                );

                let mut harvested: Vec<Vec<usize>> = policy.policy().harvested_sets.clone();
                let mut eval_env_sat_checks = 0u64;
                for outcome in eval {
                    let (sets, checks) = outcome.harvest;
                    harvested.extend(sets);
                    eval_env_sat_checks += checks;
                }
                let max_compatible_set = harvested.iter().map(Vec::len).max().unwrap_or(0);
                let harvested_total = harvested.len();
                let sets = select_k_largest(&harvested, self.config.select.k_patterns);
                let artifact = SetsArtifact::new(
                    key,
                    SelectedSets {
                        sets,
                        max_compatible_set,
                        eval_env_sat_checks,
                        harvested_total,
                    },
                );
                self.store.insert_sets(&artifact);
                (artifact, false)
            }
        };
        let metrics = StageMetrics {
            stage: Stage::Select,
            wall_seconds: start.elapsed().as_secs_f64(),
            cache_hit,
            items: artifact.sets().len() as u64,
        };
        self.finish_stage_trace(trace, &metrics);
        self.notify_finished(metrics);
        artifact
    }

    /// Stage ❻ — SAT/witness pattern generation over the selected sets,
    /// assembling the final [`DeterrentResult`]. Cached by (sets key) as a
    /// [`PatternsArtifact`], so a fully warm session performs zero SAT
    /// justification; the surrounding result still composes live session
    /// state (executor stats, thread count).
    pub fn generate(
        &mut self,
        graph: &GraphArtifact,
        policy: &PolicyArtifact,
        sets: &SetsArtifact,
    ) -> DeterrentResult {
        let key = patterns_key(sets.key);
        self.notify_started(Stage::Generate);
        let trace = self.begin_stage_trace(Stage::Generate);
        let start = Instant::now();
        let (generated, cache_hit) = match self.store.lookup_patterns(key) {
            Some(found) => (found, true),
            None => {
                let mut oracle = CircuitOracle::new(self.netlist);
                let (patterns, gen_stats) =
                    generate_patterns_with(&mut oracle, graph.graph(), sets.sets());
                let artifact = PatternsArtifact::new(
                    key,
                    GeneratedPatterns {
                        patterns,
                        stats: gen_stats,
                    },
                );
                self.store.insert_patterns(&artifact);
                (artifact, false)
            }
        };
        let gen_stats = generated.generated().stats;
        let patterns = generated.patterns().to_vec();

        let trained = policy.policy();
        let selected = sets.selected();
        let stats = graph.graph().stats();
        let metrics = TrainingMetrics {
            episodes_per_minute: trained.report.episodes_per_minute(),
            steps_per_minute: trained.report.steps_per_minute(),
            max_compatible_set: selected.max_compatible_set,
            final_mean_reward: trained.final_mean_reward,
            loss_history: trained.trainer.loss_history().to_vec(),
            training_seconds: trained.training_seconds,
            compat_sat_queries: graph.graph().sat_queries(),
            compat_pairs_total: stats.pairs_total,
            compat_pairs_witnessed: stats.pairs_sim_witnessed,
            compat_pairs_pruned: stats.pairs_structurally_pruned,
            compat_pairs_enumerated: stats.pairs_cone_enumerated,
            compat_pairs_sat: stats.pairs_sat_resolved,
            compat_budget_sat_base_word_ops: stats.budget_sat_base_word_ops,
            compat_budget_sat_per_gate_word_ops: stats.budget_sat_per_gate_word_ops,
            compat_budget_probe_queries: stats.budget_probe_queries,
            compat_budget_self_tuned: stats.budget_self_tuned,
            compat_solver: stats.solver,
            env_sat_checks: trained.env_sat_checks + selected.eval_env_sat_checks,
            threads_used: self.exec.threads(),
            compat_build_seconds: graph.build_seconds,
            patterns_witness_reused: gen_stats.witness_reused,
            pattern_sat_queries: gen_stats.sat_queries,
            exec_stats: self.exec.stats(),
        };

        let result = DeterrentResult {
            patterns,
            sets: sets.sets().to_vec(),
            rare_nets: graph.graph().rare_nets().to_vec(),
            rareness_threshold: graph.rareness_threshold,
            metrics,
        };
        let metrics = StageMetrics {
            stage: Stage::Generate,
            wall_seconds: start.elapsed().as_secs_f64(),
            cache_hit,
            items: result.patterns.len() as u64,
        };
        self.finish_stage_trace(trace, &metrics);
        self.notify_finished(metrics);
        result
    }

    /// Runs all six stages: estimate → analyze → build_graph → train →
    /// select → generate. Bit-identical to the legacy monolithic
    /// [`crate::Deterrent::run`] at any thread count.
    pub fn run(&mut self) -> DeterrentResult {
        let rare = self.analyze();
        self.run_from(&rare)
    }

    /// Runs the pipeline from an existing rare-net artifact (stages ❸–❻).
    pub fn run_from(&mut self, rare: &RareArtifact) -> DeterrentResult {
        let graph = self.build_graph(rare);
        if graph.graph().is_empty() {
            return DeterrentResult {
                patterns: Vec::new(),
                sets: Vec::new(),
                rare_nets: Vec::new(),
                rareness_threshold: graph.rareness_threshold,
                metrics: TrainingMetrics {
                    compat_sat_queries: graph.graph().sat_queries(),
                    compat_pairs_total: graph.graph().stats().pairs_total,
                    threads_used: self.exec.threads(),
                    compat_build_seconds: graph.build_seconds,
                    exec_stats: self.exec.stats(),
                    ..TrainingMetrics::default()
                },
            };
        }
        let policy = self.train(&graph);
        let sets = self.select(&graph, &policy);
        self.generate(&graph, &policy, &sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompatCheck, RecordingObserver, RewardMode};
    use netlist::synth::BenchmarkProfile;

    fn small_netlist() -> Netlist {
        BenchmarkProfile::c2670().scaled(20).generate(3)
    }

    fn fast_config() -> DeterrentConfig {
        DeterrentConfig::fast_preset().with_threshold(0.2)
    }

    #[test]
    fn staged_run_equals_monolithic_run() {
        let nl = small_netlist();
        let config = fast_config();
        let mut session = DeterrentSession::new(&nl, config.clone());
        let rare = session.analyze();
        let graph = session.build_graph(&rare);
        let policy = session.train(&graph);
        let sets = session.select(&graph, &policy);
        let staged = session.generate(&graph, &policy, &sets);

        let monolithic = crate::Deterrent::new(&nl, config).run();
        assert_eq!(staged.patterns, monolithic.patterns);
        assert_eq!(staged.sets, monolithic.sets);
        assert_eq!(staged.rare_nets, monolithic.rare_nets);
        assert_eq!(
            staged.metrics.max_compatible_set,
            monolithic.metrics.max_compatible_set
        );
        assert_eq!(
            staged.metrics.env_sat_checks,
            monolithic.metrics.env_sat_checks
        );
    }

    #[test]
    fn observers_see_stages_and_rounds() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let nl = small_netlist();
        let config = fast_config().with_episodes(20);
        let recorder = Rc::new(RefCell::new(RecordingObserver::default()));
        let mut session = DeterrentSession::new(&nl, config.clone());
        session.add_observer(Box::new(recorder.clone()));
        let _ = session.run();
        {
            let rec = recorder.borrow();
            assert_eq!(rec.started, Stage::ALL.to_vec());
            assert_eq!(rec.finished.len(), 6);
            assert!(rec.finished.iter().all(|m| !m.cache_hit), "cold run");
            // 20 episodes in rounds of 8 → 3 rounds.
            assert_eq!(rec.rounds.len(), 3);
            assert_eq!(rec.rounds.last().unwrap().episodes_done, 20);
        }

        // A warm rerun over the same store reports cache hits and no rounds.
        let warm = Rc::new(RefCell::new(RecordingObserver::default()));
        let mut session2 = DeterrentSession::with_store(&nl, config, session.store());
        session2.add_observer(Box::new(warm.clone()));
        let _ = session2.run();
        let rec = warm.borrow();
        assert!(rec
            .finished
            .iter()
            .filter(|m| m.stage != Stage::Generate)
            .all(|m| m.cache_hit));
        assert!(rec.rounds.is_empty(), "cached policies emit no rounds");
    }

    #[test]
    fn shared_store_reuses_upstream_stages_across_ablation_cells() {
        let nl = small_netlist();
        let store = ArtifactStore::new();
        let base = fast_config().with_episodes(20);
        let cells = [
            base.clone(),
            base.clone().with_ablation(RewardMode::EndOfEpisode, true),
            base.clone().with_ablation(RewardMode::AllSteps, false),
            base.clone().with_compat_check(CompatCheck::ExactSat),
        ];
        for config in cells {
            let mut session = DeterrentSession::with_store(&nl, config, store.clone());
            let _ = session.run();
        }
        let counters = store.counters();
        assert_eq!(counters.estimate.misses, 1, "one estimation for the grid");
        assert_eq!(counters.estimate.hits, 3);
        assert_eq!(counters.analyze.misses, 1, "one analysis for the grid");
        assert_eq!(counters.analyze.hits, 3);
        assert_eq!(counters.build_graph.misses, 1, "one graph for the grid");
        assert_eq!(counters.build_graph.hits, 3);
        assert_eq!(counters.train.misses, 4, "every cell trains differently");
    }

    #[test]
    fn theta_sweep_shares_one_estimation() {
        let nl = small_netlist();
        let store = ArtifactStore::new();
        for theta in [0.10, 0.12, 0.14, 0.2] {
            let mut session = DeterrentSession::with_store(
                &nl,
                fast_config().with_threshold(theta),
                store.clone(),
            );
            let swept = session.analyze();
            // Each θ cell is bit-identical to a from-scratch analysis.
            let fresh = RareNetAnalysis::estimate(&nl, theta, 4096, DeterrentConfig::DEFAULT_SEED);
            assert_eq!(swept.analysis().rare_nets(), fresh.rare_nets());
            assert_eq!(
                swept.analysis().witnesses().unwrap().raw_rows(),
                fresh.witnesses().unwrap().raw_rows()
            );
        }
        let c = store.counters();
        assert_eq!(c.estimate.misses, 1, "one estimation per (netlist, seed)");
        assert_eq!(c.estimate.hits, 3);
        assert_eq!(c.analyze.misses, 4, "one cheap thresholding per θ");
    }

    #[test]
    fn set_config_steps_one_session_through_a_grid() {
        let nl = small_netlist();
        let base = fast_config().with_episodes(20);
        let mut session = DeterrentSession::new(&nl, base.clone());
        let a = session.run();
        session.set_config(base.clone().with_ablation(RewardMode::EndOfEpisode, true));
        let b = session.run();
        let counters = session.store().counters();
        assert_eq!(counters.analyze.misses, 1);
        assert_eq!(counters.build_graph.misses, 1);
        assert_eq!(counters.train.misses, 2);
        assert_eq!(a.rare_nets, b.rare_nets, "same graph under both rewards");
    }

    #[test]
    fn empty_graph_short_circuits() {
        let nl = netlist::samples::c17();
        let config = DeterrentConfig::fast_preset().with_threshold(0.01);
        let mut session = DeterrentSession::new(&nl, config);
        let result = session.run();
        assert!(result.patterns.is_empty());
        assert!(result.sets.is_empty());
    }

    #[test]
    fn faulted_disk_tier_heals_to_bit_identical_results() {
        use crate::{CachePolicy, FaultKind, FaultPlan};

        let root = std::env::temp_dir().join(format!(
            "deterrent-fault-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let nl = small_netlist();
        let config = fast_config().with_episodes(20);

        // Cold run populates the disk tier.
        let cold_store = ArtifactStore::with_disk(&root);
        let cold = DeterrentSession::with_store(&nl, config.clone(), cold_store).run();

        // First warm run: every disk load returns corrupt bytes (full-rate
        // corruption fires once per site), recovery recomputes and re-stores,
        // and the result must not change.
        let plan = FaultPlan::quiet(5).with_rate(FaultKind::CorruptRead, 1000);
        let store = ArtifactStore::with_disk_policy_faults(
            &root,
            CachePolicy::default(),
            Some(plan.clone()),
        );
        let warm = DeterrentSession::with_store(&nl, config.clone(), store.clone()).run();
        assert_eq!(warm.patterns, cold.patterns, "faults never change results");
        assert_eq!(warm.rare_nets, cold.rare_nets);
        assert_eq!(warm.sets, cold.sets);

        let counts = plan.counts();
        assert!(
            counts.corrupt_reads >= 1,
            "full-rate corrupt reads fired: {counts:?}"
        );
        let events = store.cache_events();
        assert_eq!(
            events.corrupt, counts.corrupt_reads,
            "every injected corruption was classified and counted"
        );
        let counters = store.counters();
        for (_, c) in counters.stages() {
            assert_eq!(
                c.misses,
                c.disk_misses + c.disk_corrupt,
                "the tier invariant holds under faults"
            );
        }
        assert!(
            counters.total_disk_corrupt() >= 1,
            "faults surfaced as corrupt-lookup misses"
        );

        // Second warm run, fresh memory tier, fresh schedule: every disk
        // interaction hits an injected I/O error instead. Same healed result.
        let io_plan = FaultPlan::quiet(7).with_rate(FaultKind::IoError, 1000);
        let io_store = ArtifactStore::with_disk_policy_faults(
            &root,
            CachePolicy::default(),
            Some(io_plan.clone()),
        );
        let io_warm = DeterrentSession::with_store(&nl, config, io_store.clone()).run();
        assert_eq!(
            io_warm.patterns, cold.patterns,
            "io faults heal identically"
        );
        let io_counts = io_plan.counts();
        assert!(
            io_counts.io_errors >= 1,
            "full-rate io errors fired: {io_counts:?}"
        );
        let io_events = io_store.cache_events();
        assert!(
            io_events.io >= 1,
            "injected io failures were classified and counted: {io_events:?}"
        );
        for (_, c) in io_store.counters().stages() {
            assert_eq!(c.misses, c.disk_misses + c.disk_corrupt);
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn telemetry_spans_cover_every_stage() {
        use telemetry::{MemorySink, SpanContext, Telemetry};

        let nl = small_netlist();
        let sink = MemorySink::new();
        let tele = Telemetry::new(vec![Box::new(sink.clone())]);
        let parent = SpanContext {
            id: 42,
            path: "campaign/cell.0/attempt.0".to_string(),
        };
        let mut session = DeterrentSession::new(&nl, fast_config());
        session.set_telemetry(tele.clone(), Some(parent.clone()));
        let result = session.run();

        let events = sink.events();
        let stage_spans: Vec<_> = events
            .iter()
            .filter(|e| Stage::ALL.iter().any(|s| s.name() == e.name))
            .collect();
        assert_eq!(stage_spans.len(), 6, "one span per stage");
        for (stage, span) in Stage::ALL.iter().zip(&stage_spans) {
            assert_eq!(span.name, stage.name(), "stages emit in pipeline order");
            assert_eq!(span.parent, parent.id);
            assert_eq!(span.path, format!("{}/{}", parent.path, stage.name()));
            assert_eq!(span.attr_str("stage"), Some(stage.name()));
            assert_eq!(
                span.vary.get("cache_hit").and_then(|v| v.as_bool()),
                Some(false)
            );
            assert!(span.vary_u64("wall_ns").is_some());
            assert!(span.vary_u64("store_computed").is_some());
        }
        // The session executor's dispatch spans ride along under the same
        // parent, and their count matches the executor's own counters.
        let dispatches = events.iter().filter(|e| e.name == "exec.call").count() as u64;
        assert_eq!(dispatches, result.metrics.exec_stats.calls);
        assert_eq!(
            tele.counter("exec.tasks").get(),
            result.metrics.exec_stats.tasks
        );
        // A warm rerun flags every pre-generate stage as a cache hit.
        let warm_sink = MemorySink::new();
        let warm_tele = Telemetry::new(vec![Box::new(warm_sink.clone())]);
        let mut warm = DeterrentSession::with_store(&nl, fast_config(), session.store());
        warm.set_telemetry(warm_tele, None);
        let _ = warm.run();
        for event in warm_sink.events() {
            if Stage::ALL.iter().any(|s| s.name() == event.name) && event.name != "generate" {
                assert_eq!(
                    event.vary.get("cache_hit").and_then(|v| v.as_bool()),
                    Some(true),
                    "warm {} must be a cache hit",
                    event.name
                );
                assert_eq!(event.parent, 0, "no parent context → root spans");
                assert_eq!(event.path, event.name);
            }
        }
    }

    #[test]
    fn exec_stats_cover_estimation() {
        let nl = small_netlist();
        let mut session = DeterrentSession::new(&nl, fast_config());
        let _ = session.analyze();
        let after_analyze = session.exec_stats();
        assert!(
            after_analyze.calls >= 1,
            "the single compacting estimation pass must run on the session \
             executor, got {after_analyze:?}"
        );
        let rare = session.analyze();
        let result = session.run_from(&rare);
        assert!(result.metrics.exec_stats.calls >= after_analyze.calls);
        assert!(result.metrics.exec_stats.tasks >= after_analyze.tasks);
    }
}
