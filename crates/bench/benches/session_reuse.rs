//! Criterion benchmark of the staged session's artifact reuse: the same
//! four-cell reward × masking ablation grid (Figure 2's shape) run cold —
//! every cell recomputes everything in a private store — versus warm — all
//! cells share one pre-populated store, so analysis, graph, training, and
//! selection are served from cache and only pattern generation re-executes.
//! A third pair times a four-θ rareness-threshold sweep (Figure 7's shape):
//! the estimate artifact is keyed without θ, so even a cold sweep pays for
//! Monte-Carlo estimation once and re-thresholds cheaply per θ.
//!
//! The warm/cold gap is the wall-clock value of the session API for
//! evaluation grids and campaign sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use deterrent_core::{ArtifactStore, DeterrentConfig, DeterrentSession, RewardMode};
use netlist::synth::BenchmarkProfile;
use netlist::Netlist;

fn setup() -> Netlist {
    BenchmarkProfile::c2670().scaled(25).generate(3)
}

fn grid_configs() -> Vec<DeterrentConfig> {
    let base = DeterrentConfig::fast_preset()
        .with_threshold(0.2)
        .with_episodes(30)
        .with_eval_rollouts(8)
        .with_k_patterns(8);
    [
        (RewardMode::AllSteps, true),
        (RewardMode::AllSteps, false),
        (RewardMode::EndOfEpisode, true),
        (RewardMode::EndOfEpisode, false),
    ]
    .into_iter()
    .map(|(reward, masking)| base.clone().with_ablation(reward, masking))
    .collect()
}

fn run_grid(netlist: &Netlist, store: &ArtifactStore) -> usize {
    grid_configs()
        .into_iter()
        .map(|config| {
            let mut session = DeterrentSession::with_store(netlist, config, store.clone());
            session.run().patterns.len()
        })
        .sum()
}

fn run_theta_sweep(netlist: &Netlist, store: &ArtifactStore) -> usize {
    let base = DeterrentConfig::fast_preset().with_probability_patterns(8192);
    [0.10, 0.12, 0.14, 0.2]
        .into_iter()
        .map(|theta| {
            let mut session = DeterrentSession::with_store(
                netlist,
                base.clone().with_threshold(theta),
                store.clone(),
            );
            session.analyze().len()
        })
        .sum()
}

fn bench_session_reuse(c: &mut Criterion) {
    let netlist = setup();

    c.bench_function("session/cold_ablation_grid", |b| {
        b.iter(|| run_grid(&netlist, &ArtifactStore::new()))
    });

    // Pre-populate once; each iteration then reuses every cached stage.
    let warm_store = ArtifactStore::new();
    let _ = run_grid(&netlist, &warm_store);
    c.bench_function("session/warm_ablation_grid", |b| {
        b.iter(|| run_grid(&netlist, &warm_store))
    });

    // θ-sweep: even cold, all four thresholds share one estimation — the
    // split analyze artifact is what this pair tracks over time.
    c.bench_function("session/cold_theta_sweep", |b| {
        b.iter(|| run_theta_sweep(&netlist, &ArtifactStore::new()))
    });
    let warm_sweep_store = ArtifactStore::new();
    let _ = run_theta_sweep(&netlist, &warm_sweep_store);
    c.bench_function("session/warm_theta_sweep", |b| {
        b.iter(|| run_theta_sweep(&netlist, &warm_sweep_store))
    });
}

criterion_group! {
    name = session_reuse;
    config = Criterion::default().sample_size(10);
    targets = bench_session_reuse
}
criterion_main!(session_reuse);
