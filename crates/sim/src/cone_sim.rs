//! Exhaustive cone simulation: exact joint-justifiability verdicts without
//! SAT.
//!
//! A set of targets can only be constrained by the gates in the union of
//! their fanin cones, and that cone reads only a subset of the scan inputs
//! (its *support*). When the support is small — common for the deep, narrow
//! cones rare nets sit on — simply enumerating every assignment of the
//! support inputs with 64-way packed words decides the query **exactly**:
//! either some assignment drives all targets at once (compatible, with a
//! concrete witness) or provably none does (incompatible). Unlike random
//! witness mining this resolves *both* polarities, so it can discharge the
//! incompatible pairs that would otherwise always fall through to SAT.

use netlist::{GateKind, NetId, Netlist};

/// Words whose bit `b` equals bit `t` of the pattern index `b`, for
/// `t < 6` — the classic exhaustive-enumeration seed masks.
const SEED_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Reusable exhaustive cone decider bound to one netlist.
///
/// Scratch buffers are shared across [`ConeSimulator::decide`] calls, so a
/// long run of pair queries allocates only once.
#[derive(Debug, Clone)]
pub struct ConeSimulator<'a> {
    netlist: &'a Netlist,
    support_limit: u32,
    /// Scan-input position per net (`u32::MAX` = not a scan input).
    scan_pos: Vec<u32>,
    /// Position of each net in the netlist's topological order.
    topo_pos: Vec<u32>,
    /// Stamped visited buffer for cone DFS.
    visited: Vec<u64>,
    stamp: u64,
    /// Packed value per net, valid for cone nets of the current chunk.
    words: Vec<u64>,
    fanin_buf: Vec<u64>,
}

impl<'a> ConeSimulator<'a> {
    /// Creates a decider that enumerates supports of up to `support_limit`
    /// scan inputs (`2^support_limit` assignments; 20 ≈ one million, still
    /// microseconds for the small cones this targets).
    ///
    /// # Panics
    ///
    /// Panics if `support_limit` exceeds 26 (the enumeration would stop being
    /// "cheap" in any meaningful sense).
    #[must_use]
    pub fn new(netlist: &'a Netlist, support_limit: u32) -> Self {
        assert!(support_limit <= 26, "support limit above 2^26 is not cheap");
        let n = netlist.num_gates();
        let mut scan_pos = vec![u32::MAX; n];
        for (pos, si) in netlist.scan_inputs().into_iter().enumerate() {
            scan_pos[si.index()] = pos as u32;
        }
        let mut topo_pos = vec![0u32; n];
        for (pos, &id) in netlist.topo_order().iter().enumerate() {
            topo_pos[id.index()] = pos as u32;
        }
        Self {
            netlist,
            support_limit,
            scan_pos,
            topo_pos,
            visited: vec![0; n],
            stamp: 0,
            words: vec![0; n],
            fanin_buf: Vec::with_capacity(8),
        }
    }

    /// The configured support limit.
    #[must_use]
    pub fn support_limit(&self) -> u32 {
        self.support_limit
    }

    /// Decides exactly whether some input pattern drives every `(net, value)`
    /// pair in `targets` simultaneously, by enumerating all assignments of
    /// the scan inputs in the union fanin-cone support.
    ///
    /// Returns `None` when the support exceeds the configured limit (the
    /// query is then better left to SAT), `Some(verdict)` otherwise.
    #[must_use]
    pub fn decide(&mut self, targets: &[(NetId, bool)]) -> Option<bool> {
        let limit = self.support_limit;
        self.decide_if(targets, |support, _| support <= limit)
    }

    /// Like [`ConeSimulator::decide`], but the caller chooses per query
    /// whether enumeration is worthwhile: after the union cone is collected,
    /// `admit(support_size, cone_size)` is consulted (cone size counts every
    /// net in the union transitive fanin, inputs included). Returning `false`
    /// declines the query (`None`), leaving it to SAT.
    ///
    /// This is the hook for cost-model-driven budgets — enumeration costs
    /// `2^support / 64 · cone_size` word operations, which the caller can
    /// weigh against its estimate of a SAT query on the same cone. The
    /// configured support limit still applies as a hard ceiling.
    #[must_use]
    pub fn decide_if(
        &mut self,
        targets: &[(NetId, bool)],
        admit: impl FnOnce(u32, usize) -> bool,
    ) -> Option<bool> {
        if targets.is_empty() {
            return Some(true);
        }
        // ── Collect the union cone and its support. ────────────────────────
        self.stamp += 1;
        let stamp = self.stamp;
        let mut stack: Vec<NetId> = Vec::new();
        for &(net, _) in targets {
            if self.visited[net.index()] != stamp {
                self.visited[net.index()] = stamp;
                stack.push(net);
            }
        }
        let mut cone: Vec<NetId> = Vec::new();
        let mut support: Vec<(NetId, usize)> = Vec::new();
        while let Some(id) = stack.pop() {
            cone.push(id);
            let pos = self.scan_pos[id.index()];
            if pos != u32::MAX {
                support.push((id, pos as usize));
            }
            let gate = self.netlist.gate(id);
            if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            for &f in &gate.fanin {
                if self.visited[f.index()] != stamp {
                    self.visited[f.index()] = stamp;
                    stack.push(f);
                }
            }
        }
        let k = support.len() as u32;
        if k > self.support_limit || !admit(k, cone.len()) {
            return None;
        }

        // Evaluation order: the netlist's topological order restricted to the
        // cone's combinational gates.
        cone.sort_unstable_by_key(|id| self.topo_pos[id.index()]);

        // ── Enumerate all 2^k assignments, 64 per chunk. ───────────────────
        let total: u64 = 1u64 << k;
        let chunks = total.div_ceil(64).max(1);
        for chunk in 0..chunks {
            for (t, &(net, _)) in support.iter().enumerate() {
                self.words[net.index()] = if t < 6 {
                    SEED_MASKS[t]
                } else if (chunk >> (t - 6)) & 1 == 1 {
                    u64::MAX
                } else {
                    0
                };
            }
            for &id in &cone {
                let gate = self.netlist.gate(id);
                if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
                    continue;
                }
                self.fanin_buf.clear();
                self.fanin_buf
                    .extend(gate.fanin.iter().map(|&f| self.words[f.index()]));
                self.words[id.index()] = gate.kind.eval_packed(&self.fanin_buf);
            }
            // Patterns past `total` in a sub-64 enumeration repeat earlier
            // assignments of the support inputs, so no masking is needed for
            // an existence check.
            let joint = targets.iter().fold(u64::MAX, |acc, &(net, value)| {
                let w = self.words[net.index()];
                acc & if value { w } else { !w }
            });
            if joint != 0 {
                return Some(true);
            }
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn agrees_with_known_c17_facts() {
        let nl = samples::c17();
        let mut decider = ConeSimulator::new(&nl, 16);
        let g10 = nl.net_by_name("G10").unwrap();
        let g1 = nl.net_by_name("G1").unwrap();
        // G10 = NAND(G1, G3) = 0 forces G1 = 1.
        assert_eq!(decider.decide(&[(g10, false), (g1, false)]), Some(false));
        assert_eq!(decider.decide(&[(g10, false), (g1, true)]), Some(true));
        assert_eq!(decider.decide(&[(g10, true)]), Some(true));
        assert_eq!(decider.decide(&[(g10, true), (g10, false)]), Some(false));
        assert_eq!(decider.decide(&[]), Some(true));
    }

    #[test]
    fn respects_the_support_limit() {
        let nl = samples::adder4();
        let cout = nl.net_by_name("cout3").unwrap();
        // cout3's cone reads all 9 scan inputs.
        let mut tight = ConeSimulator::new(&nl, 4);
        assert_eq!(tight.decide(&[(cout, true)]), None);
        let mut loose = ConeSimulator::new(&nl, 9);
        assert_eq!(loose.decide(&[(cout, true)]), Some(true));
    }

    #[test]
    fn decide_if_consults_the_predicate_with_cone_facts() {
        let nl = samples::c17();
        let g22 = nl.net_by_name("G22").unwrap();
        let mut decider = ConeSimulator::new(&nl, 16);
        // Record what the predicate sees, then decline.
        let mut seen = None;
        assert_eq!(
            decider.decide_if(&[(g22, true)], |support, cone| {
                seen = Some((support, cone));
                false
            }),
            None,
            "a declining predicate must leave the query to SAT"
        );
        let (support, cone) = seen.expect("predicate consulted");
        // G22's cone reads G1, G2, G3, G6 and spans G10/G16/G11/G22 + inputs.
        assert_eq!(support, 4);
        assert_eq!(cone, 8);
        // Admitting yields the same verdict as the plain limit path.
        assert_eq!(decider.decide_if(&[(g22, true)], |_, _| true), Some(true));
        assert_eq!(decider.decide(&[(g22, true)]), Some(true));
    }

    #[test]
    fn rare_chain_root_both_polarities() {
        let nl = samples::rare_chain(6);
        let root = nl.net_by_name("and5").unwrap();
        let any = nl.net_by_name("any").unwrap();
        let mut decider = ConeSimulator::new(&nl, 10);
        assert_eq!(decider.decide(&[(root, true)]), Some(true));
        // root=1 needs all-ones, which forces the OR of all inputs to 1.
        assert_eq!(decider.decide(&[(root, true), (any, false)]), Some(false));
        assert_eq!(decider.decide(&[(root, false), (any, false)]), Some(true));
    }

    #[test]
    fn matches_scalar_support_enumeration_on_scaled_profile() {
        // Independent cross-check: enumerate the union support with the
        // *scalar whole-netlist* simulator (inputs outside the support pinned
        // to 0 — they cannot influence the cone by definition of support).
        let nl = BenchmarkProfile::c2670().scaled(20).generate(7);
        let analysis = crate::rare::RareNetAnalysis::estimate(&nl, 0.2, 1024, 2);
        let targets = analysis.targets();
        let mut decider = ConeSimulator::new(&nl, 14);
        let sim = crate::Simulator::new(&nl);
        let roots: Vec<_> = targets.iter().map(|&(net, _)| net).collect();
        let supports = netlist::InputSupports::compute(&nl, &roots);
        let width = nl.num_scan_inputs();
        let mut checked = 0;
        for i in 0..targets.len().min(12) {
            for j in (i + 1)..targets.len().min(12) {
                let pair = [targets[i], targets[j]];
                let Some(verdict) = decider.decide(&pair) else {
                    continue;
                };
                let mut union: Vec<usize> = supports.support_positions(i);
                union.extend(supports.support_positions(j));
                union.sort_unstable();
                union.dedup();
                assert!(union.len() <= 14, "limit should have bounded this");
                let brute = (0u64..1 << union.len()).any(|code| {
                    let mut bits = vec![false; width];
                    for (t, &pos) in union.iter().enumerate() {
                        bits[pos] = (code >> t) & 1 == 1;
                    }
                    sim.activates(&crate::TestPattern::new(bits), &pair)
                });
                assert_eq!(verdict, brute, "pair ({i},{j})");
                checked += 1;
            }
        }
        assert!(checked > 0, "expected at least one decidable pair");
    }
}
