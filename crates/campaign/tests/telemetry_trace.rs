//! End-to-end telemetry invariants over a faulted campaign.
//!
//! The contract under test (CI enforces the binary-level version in the
//! chaos job):
//!
//! 1. Telemetry is out-of-band — a traced report is byte-identical to an
//!    untraced one, at any thread count.
//! 2. Every emitted event is a schema-valid trace line.
//! 3. The canonical projection of the trace is byte-identical at
//!    threads 1 and 4.
//! 4. Trace counters reconcile exactly with the runtime's own counters
//!    ([`exec::ExecStats`], store tier counters, cache events).

use campaign::{CampaignPlan, NetlistSpec, RunPolicy, SilentProgress};
use deterrent_core::{ArtifactStore, CachePolicy, DeterrentConfig, FaultKind, FaultPlan};
use exec::Exec;
use netlist::synth::BenchmarkProfile;
use telemetry::{canonicalize_trace, parse_trace, MemorySink, Telemetry, TraceEvent};

/// The chaos plan's eight-cell grid (mirrors the unit suite's tiny plan).
fn plan() -> CampaignPlan {
    CampaignPlan {
        netlists: vec![
            NetlistSpec::new(BenchmarkProfile::c2670(), 25, 3),
            NetlistSpec::new(BenchmarkProfile::c5315(), 30, 3),
        ],
        thetas: vec![0.18, 0.22],
        seeds: vec![7, 8],
        base: DeterrentConfig::fast_preset()
            .with_probability_patterns(1024)
            .with_episodes(12)
            .with_eval_rollouts(4)
            .with_k_patterns(4),
        cell_threads: 1,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "deterrent-telemetry-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Renders a captured event list as the JSONL document a
/// [`telemetry::JsonlSink`] would have written.
fn to_document(events: &[TraceEvent]) -> String {
    events.iter().fold(String::new(), |mut doc, e| {
        doc.push_str(&e.to_line());
        doc.push('\n');
        doc
    })
}

#[test]
fn traced_faulted_campaign_is_valid_invariant_and_reconciled() {
    let plan = plan();
    let cache = temp_dir("chaos");
    let _ = std::fs::remove_dir_all(&cache);

    // Clean cold run (untraced) populates the disk tier and fixes the
    // expected report bytes.
    let clean_store = ArtifactStore::with_disk(&cache);
    let clean = plan.run(&clean_store, &Exec::new(1), &SilentProgress);
    assert!(clean.all_recovered());
    let untraced_tsv = clean.to_tsv();

    let spec = "seed=11,panic=1000,timeout=1000,corrupt=800,io=300";
    let mut canonicals = Vec::new();
    let mut tsvs = Vec::new();
    for threads in [1usize, 4] {
        let faults = FaultPlan::parse(spec).expect("spec");
        let store = ArtifactStore::with_disk_policy_faults(
            &cache,
            CachePolicy::default(),
            Some(faults.clone()),
        );
        let sink = MemorySink::new();
        let policy = RunPolicy {
            faults: Some(faults),
            telemetry: Telemetry::new(vec![Box::new(sink.clone())]),
            ..RunPolicy::default()
        };
        let exec = Exec::new(threads);
        let report = plan.run_with_policy(&store, &exec, &SilentProgress, &policy);
        assert!(report.all_recovered(), "threads={threads}");

        // (2) Every event validates against the schema.
        let document = to_document(&sink.events());
        let events = parse_trace(&document)
            .unwrap_or_else(|e| panic!("threads={threads}: schema violation: {e}"));
        assert!(!events.is_empty());

        // (4) The run span's tallies match the report, and its store
        // deltas match the store's own counters.
        let run = events
            .iter()
            .find(|e| e.name == "campaign")
            .expect("campaign root span");
        let recovered = report
            .cells
            .iter()
            .filter(|r| r.outcome.recovered())
            .count() as u64;
        assert_eq!(
            run.attr_u64("ok").unwrap() + run.attr_u64("retried").unwrap(),
            recovered
        );
        assert_eq!(run.attr_u64("cells"), Some(report.cells.len() as u64));
        let counters = store.counters();
        for (stage, c) in counters.stages() {
            let name = stage.name();
            assert_eq!(
                run.vary_u64(&format!("store.{name}.computed")),
                Some(c.misses),
                "threads={threads}: store.{name}.computed"
            );
            assert_eq!(
                run.vary_u64(&format!("store.{name}.disk_hits")),
                Some(c.disk_hits),
                "threads={threads}: store.{name}.disk_hits"
            );
        }
        let cache_events = store.cache_events();
        assert_eq!(run.vary_u64("cache.corrupt"), Some(cache_events.corrupt));
        assert_eq!(run.vary_u64("cache.io"), Some(cache_events.io));

        // One cell span per cell, its outcome kind matching the report.
        for row in &report.cells {
            let span = events
                .iter()
                .find(|e| e.name == format!("cell.{}", row.cell.index))
                .unwrap_or_else(|| panic!("threads={threads}: cell.{} span", row.cell.index));
            assert_eq!(span.attr_str("outcome"), Some(row.outcome.kind()));
            assert_eq!(span.attr_u64("patterns"), Some(row.patterns as u64));
        }

        canonicals.push(canonicalize_trace(&document).expect("canonicalizes"));
        tsvs.push(report.to_tsv());
    }

    // (1) Out-of-band: traced faulted warm runs reproduce the clean
    // report's data bytes; the full traced reports agree across thread
    // counts (the fault plan fires on the same sites either way).
    assert_eq!(
        tsvs[0], tsvs[1],
        "report bytes differ between threads 1 and 4"
    );
    let data = |tsv: &str| {
        tsv.lines()
            .map(|l| l.rsplit_once('\t').map_or(l, |(data, _)| data).to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        data(&tsvs[0]),
        data(&untraced_tsv),
        "faulted traced run must reproduce the clean data columns"
    );

    // (3) Canonical projections are byte-identical at threads 1 and 4.
    assert_eq!(
        canonicals[0], canonicals[1],
        "canonical trace differs between threads 1 and 4"
    );

    let _ = std::fs::remove_dir_all(&cache);
}

/// Satellite: panic and cancellation counters observed through telemetry
/// equal the executor's own [`exec::ExecStats`] under a seeded fault
/// plan, at one worker and at four.
#[test]
fn exec_fault_counters_reconcile_with_trace() {
    for threads in [1usize, 4] {
        let sink = MemorySink::new();
        let tele = Telemetry::new(vec![Box::new(sink.clone())]);
        let mut exec = Exec::new(threads);
        exec.set_telemetry(tele.clone(), None);
        let faults = FaultPlan::parse("seed=9,panic=500").expect("spec");

        let items: Vec<u64> = (0..64).collect();
        let results = exec.par_map_isolated(&items, |_, &site| {
            if faults.should_inject(FaultKind::CellPanic, site) {
                panic!("injected fault at site {site}");
            }
            site * 2
        });
        let panicked = results.iter().filter(|r| r.is_err()).count() as u64;
        assert!(panicked > 0, "the plan must fire at rate 500/1000");

        // Cancel mid-run state: every task of a second call reports
        // cancelled without running.
        exec.cancel_token().cancel();
        let cancelled_results = exec.par_map_isolated(&items, |_, &site| site);
        assert!(cancelled_results.iter().all(Result::is_err));

        let stats = exec.stats();
        assert_eq!(stats.panics_caught, panicked, "threads={threads}");
        assert_eq!(stats.tasks_cancelled, items.len() as u64);
        assert_eq!(
            tele.counter("exec.panics_caught").get(),
            stats.panics_caught,
            "threads={threads}: trace counter vs ExecStats"
        );
        assert_eq!(
            tele.counter("exec.tasks_cancelled").get(),
            stats.tasks_cancelled,
            "threads={threads}: trace counter vs ExecStats"
        );
        assert_eq!(tele.counter("exec.calls").get(), stats.calls);
        assert_eq!(tele.counter("exec.tasks").get(), stats.tasks);
    }
}
