//! Stderr rendering of campaign progress, shared between the legacy
//! [`crate::StderrProgress`] sink and the telemetry-driven
//! [`StderrTraceSink`].
//!
//! Both paths produce byte-identical `[campaign] …` lines: the render
//! functions here are the single source of the formats, and
//! [`StderrTraceSink`] reconstructs their inputs from trace-event
//! attributes (the θ token is carried verbatim as the raw JSON number, so
//! `θ=0.18` round-trips exactly).

use telemetry::{EventKind, TraceEvent, TraceSink, Value};

/// Names of the pipeline-stage spans emitted by
/// `deterrent_core::DeterrentSession` — the spans the stderr sink renders
/// as per-stage progress lines.
const STAGE_SPAN_NAMES: [&str; 6] = [
    "estimate",
    "analyze",
    "build_graph",
    "train",
    "select",
    "generate",
];

/// The `[campaign] cell N start: …` line.
pub(crate) fn render_cell_start(index: usize, netlist: &str, theta: &str, seed: u64) -> String {
    format!("[campaign] cell {index} start: {netlist} θ={theta} seed={seed}")
}

/// The `[campaign] cell N <stage>: …` line.
pub(crate) fn render_stage_finished(
    index: usize,
    stage: &str,
    cache_hit: bool,
    wall_seconds: f64,
) -> String {
    format!(
        "[campaign] cell {index} {stage}: {} in {wall_seconds:.3}s",
        if cache_hit { "warm" } else { "computed" }
    )
}

/// The `[campaign] cell N done: …` line.
pub(crate) fn render_cell_done(
    index: usize,
    rare_nets: usize,
    sets: usize,
    patterns: usize,
) -> String {
    format!("[campaign] cell {index} done: {rare_nets} rare nets, {sets} sets, {patterns} patterns")
}

/// A [`TraceSink`] that renders campaign trace events as the classic
/// `[campaign] …` stderr progress lines — the same bytes
/// [`crate::StderrProgress`] prints, reconstructed from event attributes.
///
/// Rendering rules:
///
/// * a `cell_start` mark → the `cell N start:` line;
/// * a closed pipeline-stage span under a `cell.N` path → the
///   `cell N <stage>:` line (`warm`/`computed` from the `cache_hit` attr,
///   wall seconds from the span's `wall_ns`);
/// * a closed `cell.N` span → the `cell N done:` line — except cancelled
///   cells, which the legacy sink never reported either.
///
/// Everything else (attempt spans, `exec.call` dispatch spans, metric
/// flushes) renders nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrTraceSink;

impl StderrTraceSink {
    /// Constructs the sink.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl TraceSink for StderrTraceSink {
    fn event(&self, event: &TraceEvent) {
        if let Some(line) = render_trace_line(event) {
            eprintln!("{line}");
        }
    }
}

/// Renders one trace event as its stderr progress line, or `None` for
/// events the progress stream does not report.
///
/// This is the single source of the `[campaign] …` formats: the local
/// [`StderrTraceSink`] prints these strings, and `deterrent-submit`
/// renders the *same* strings from events streamed over the daemon
/// socket — so client-side progress is byte-identical to a local run's.
#[must_use]
pub fn render_trace_line(event: &TraceEvent) -> Option<String> {
    match event.kind {
        EventKind::Mark if event.name == "cell_start" => {
            let theta = match event.attrs.get("theta") {
                Some(Value::Num(token)) => token.clone(),
                _ => return None,
            };
            Some(render_cell_start(
                event.attr_u64("index")? as usize,
                event.attr_str("netlist")?,
                &theta,
                event.attr_u64("seed")?,
            ))
        }
        EventKind::Span if STAGE_SPAN_NAMES.contains(&event.name.as_str()) => {
            let index = cell_index_of(&event.path)?;
            let wall_seconds = event.vary_u64("wall_ns")? as f64 / 1e9;
            let cache_hit = event.vary.get("cache_hit").and_then(Value::as_bool)?;
            Some(render_stage_finished(
                index,
                &event.name,
                cache_hit,
                wall_seconds,
            ))
        }
        EventKind::Span if event.name.starts_with("cell.") => {
            if event.attrs.contains_key("cancelled") {
                return None;
            }
            Some(render_cell_done(
                event.attr_u64("index")? as usize,
                event.attr_u64("rare_nets")? as usize,
                event.attr_u64("sets")? as usize,
                event.attr_u64("patterns")? as usize,
            ))
        }
        _ => None,
    }
}

/// Extracts `N` from the first `cell.N` segment of a span path
/// (`campaign/cell.3/attempt.0/train` → `3`).
fn cell_index_of(path: &str) -> Option<usize> {
    path.split('/')
        .find_map(|segment| segment.strip_prefix("cell."))
        .and_then(|n| n.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{MemorySink, Telemetry};

    #[test]
    fn renders_the_three_legacy_lines() {
        let sink = MemorySink::new();
        let tele = Telemetry::new(vec![Box::new(sink.clone())]);
        let mut cell = tele.span("cell.3");
        cell.attr_u64("index", 3);
        cell.attr_str("netlist", "c2670");
        cell.attr_f64("theta", 0.18);
        cell.attr_u64("seed", 7);

        let mut start = cell.child("cell_start");
        start.attr_u64("index", 3);
        start.attr_str("netlist", "c2670");
        start.attr_f64("theta", 0.18);
        start.attr_u64("seed", 7);
        start.mark();

        let mut attempt = cell.child("attempt.0");
        attempt.attr_u64("attempt", 0);
        let mut stage = attempt.child("train");
        stage.attr_str("stage", "train");
        stage.vary("cache_hit", Value::Bool(false));
        stage.vary_u64("wall_ns", 12_345_678);
        stage.close();
        attempt.close();

        cell.attr_str("outcome", "ok");
        cell.attr_u64("rare_nets", 5);
        cell.attr_u64("sets", 2);
        cell.attr_u64("patterns", 8);
        cell.close();

        let lines: Vec<String> = sink.events().iter().filter_map(render_trace_line).collect();
        assert_eq!(
            lines,
            vec![
                "[campaign] cell 3 start: c2670 θ=0.18 seed=7".to_string(),
                "[campaign] cell 3 train: computed in 0.012s".to_string(),
                "[campaign] cell 3 done: 5 rare nets, 2 sets, 8 patterns".to_string(),
            ]
        );
    }

    #[test]
    fn cancelled_cells_render_nothing() {
        let sink = MemorySink::new();
        let tele = Telemetry::new(vec![Box::new(sink.clone())]);
        let mut cell = tele.span("cell.1");
        cell.attr_u64("index", 1);
        cell.attr_bool("cancelled", true);
        cell.close();
        assert!(sink.events().iter().all(|e| render_trace_line(e).is_none()));
    }

    #[test]
    fn cell_index_parses_from_nested_paths() {
        assert_eq!(cell_index_of("campaign/cell.3/attempt.0/train"), Some(3));
        assert_eq!(cell_index_of("cell.12/attempt.1/analyze"), Some(12));
        assert_eq!(cell_index_of("campaign/metrics"), None);
    }
}
