//! Quickstart: run the full DETERRENT pipeline on a synthetic c2670-profile
//! netlist and inspect the generated test patterns.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use deterrent_repro::deterrent_core::{Deterrent, DeterrentConfig};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::sim::{rare::RareNetAnalysis, Simulator};

fn main() {
    // 1. Build (or load) a gate-level netlist. Here we generate the synthetic
    //    c2670-profile benchmark scaled down for a fast demo; use
    //    `netlist::bench::parse` to load a real ISCAS .bench file instead.
    let netlist = BenchmarkProfile::c2670().scaled(15).generate(42);
    println!(
        "design {}: {} gates, {} scan inputs",
        netlist.name(),
        netlist.num_logic_gates(),
        netlist.num_scan_inputs()
    );

    // 2. Run the pipeline: rare-net analysis, offline pairwise compatibility,
    //    PPO training with action masking, set selection, SAT pattern
    //    generation.
    let config = DeterrentConfig::fast_preset();
    let result = Deterrent::new(&netlist, config).run();
    println!(
        "rare nets: {}   largest compatible set: {}   patterns: {}",
        result.rare_nets.len(),
        result.metrics.max_compatible_set,
        result.test_length()
    );

    // 3. Inspect the patterns: each one drives a whole set of rare nets to
    //    their rare values simultaneously.
    let analysis = RareNetAnalysis::estimate(&netlist, 0.1, 8192, 1);
    let sim = Simulator::new(&netlist);
    for (i, pattern) in result.patterns.iter().enumerate().take(5) {
        let values = sim.run(pattern);
        let excited = analysis
            .rare_nets()
            .iter()
            .filter(|r| values.value(r.net) == r.rare_value)
            .count();
        println!("pattern {i}: {pattern} excites {excited} rare nets");
    }
}
