//! Offline stand-in for the `crossbeam::thread` and `crossbeam::channel`
//! APIs.
//!
//! Since Rust 1.63 the standard library ships scoped threads, so the
//! `thread` module is a thin adapter exposing the
//! `crossbeam::thread::scope(|s| ...)` calling convention (spawned closures
//! receive a `&Scope` argument, `scope` returns a `Result`) on top of
//! [`std::thread::scope`]. The `channel` module is a small MPMC channel
//! (`Mutex<VecDeque>` + `Condvar`) with crossbeam's disconnect semantics —
//! enough for worker pools that share one job queue between many consumers,
//! which [`std::sync::mpsc`] cannot express.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Error type carried by a failed scope or join (the panic payload).
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle through which threads are spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope handle so it
        /// can spawn further threads, matching the crossbeam signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning threads that may borrow from the caller's
    /// stack. All spawned threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates through
    /// [`std::thread::scope`] when its handle was not explicitly joined, so
    /// the `Err` arm is reserved for payloads of explicitly joined threads —
    /// callers that `.expect()` the result behave identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver has been
    /// dropped; carries the unsent message back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Bound on queued messages; `None` for unbounded channels.
        capacity: Option<usize>,
        /// Signalled when a message or disconnect makes `recv` progress.
        on_recv: Condvar,
        /// Signalled when a pop or disconnect makes a bounded `send` progress.
        on_send: Condvar,
    }

    /// The sending half of a channel. Cloning adds a producer; the channel
    /// disconnects for receivers once every clone is dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloning adds a consumer; every clone
    /// drains the same queue (each message is delivered to exactly one).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.state.lock().unwrap();
            state.senders += 1;
            drop(state);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers += 1;
            drop(state);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.shared.on_recv.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.shared.on_send.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(message));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.shared.on_send.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(message);
            drop(state);
            self.shared.on_recv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every sender
        /// has been dropped and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(message) = state.queue.pop_front() {
                    drop(state);
                    self.shared.on_send.notify_one();
                    return Ok(message);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.on_recv.wait(state).unwrap();
            }
        }

        /// Receives a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(message) = state.queue.pop_front() {
                drop(state);
                self.shared.on_send.notify_one();
                Ok(message)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives a message, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(message) = state.queue.pop_front() {
                    drop(state);
                    self.shared.on_send.notify_one();
                    return Ok(message);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (next, result) = self.shared.on_recv.wait_timeout(state, remaining).unwrap();
                state = next;
                if result.timed_out() && state.queue.is_empty() && state.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            on_recv: Condvar::new(),
            on_send: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel with no bound on queued messages.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a channel holding at most `capacity` queued messages;
    /// `send` blocks while full. A zero capacity is rounded up to one
    /// (this stub has no rendezvous mode).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(capacity.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    mod channel {
        use super::super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
        use std::time::Duration;

        #[test]
        fn fifo_order_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn mpmc_delivers_each_message_once() {
            let (tx, rx) = unbounded::<u64>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for v in 1..=100u64 {
                tx.send(v).unwrap();
            }
            drop(tx);
            let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 5050);
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert!(rx.recv().is_err());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_send_blocks_until_popped() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let producer = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            producer.join().unwrap();
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
        }
    }
}
