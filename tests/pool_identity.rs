//! The persistent worker pool's contract: a campaign scheduled on an
//! [`ExecPool`] produces a report **bit-identical** to the scoped
//! executor's at any thread count, and one pool serves sequential
//! campaigns without respawning workers.

use std::sync::Arc;

use deterrent_repro::campaign::{PlanSpec, RunPolicy, SilentProgress};
use deterrent_repro::deterrent_core::ArtifactStore;
use deterrent_repro::exec::{Exec, ExecPool};

/// A small two-cell grid (one netlist, one θ, two seeds).
fn tiny_spec() -> PlanSpec {
    PlanSpec {
        netlists: vec!["c2670".into()],
        scale: 40,
        thetas: vec![0.2],
        seeds: vec![1, 2],
        episodes: 4,
        cell_threads: 1,
        netlist_seed: 3,
    }
}

#[test]
fn pooled_reports_are_bit_identical_to_scoped_reports() {
    let spec = tiny_spec();
    let plan = spec.to_plan().expect("valid spec");
    let reference = {
        let store = ArtifactStore::new();
        let exec = Exec::new(1);
        plan.run_with_policy(&store, &exec, &SilentProgress, &RunPolicy::default())
            .to_tsv()
    };
    for threads in [1usize, 4] {
        let store = ArtifactStore::new();
        let pool = ExecPool::new(threads);
        let report = plan.run_on_pool(
            &store,
            &pool,
            Arc::new(SilentProgress),
            &RunPolicy::default(),
        );
        assert_eq!(report.to_tsv(), reference, "{threads} pool threads");
    }
}

#[test]
fn one_pool_serves_sequential_campaigns() {
    let spec = tiny_spec();
    let plan = spec.to_plan().expect("valid spec");
    let pool = ExecPool::new(2);
    let store = ArtifactStore::new();

    let cold = plan.run_on_pool(
        &store,
        &pool,
        Arc::new(SilentProgress),
        &RunPolicy::default(),
    );
    let calls_after_first = pool.stats().calls;
    // Second campaign on the same pool and store: warm cache, same rows.
    let warm = plan.run_on_pool(
        &store,
        &pool,
        Arc::new(SilentProgress),
        &RunPolicy::default(),
    );
    assert_eq!(cold.to_tsv(), warm.to_tsv());
    assert!(pool.stats().calls > calls_after_first, "pool was reused");
    assert_eq!(
        store.counters().total_misses(),
        // Every stage miss happened in the first run; the second was
        // served entirely from the shared store.
        {
            let fresh = ArtifactStore::new();
            let solo = plan.run_on_pool(
                &fresh,
                &pool,
                Arc::new(SilentProgress),
                &RunPolicy::default(),
            );
            assert_eq!(solo.to_tsv(), cold.to_tsv());
            fresh.counters().total_misses()
        }
    );
}
