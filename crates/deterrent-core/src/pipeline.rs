//! The end-to-end DETERRENT pipeline (Figure 4 of the paper).

use netlist::Netlist;
use rl::{train, PpoLosses, PpoTrainer, TrainOptions};
use sat::CircuitOracle;
use sim::rare::{RareNet, RareNetAnalysis};
use sim::TestPattern;

use crate::{
    generate_patterns, select_k_largest, CompatBuildOptions, CompatSetEnv, CompatibilityGraph,
    DeterrentConfig, RareNetSet,
};

/// Metrics of the RL training phase, matching the quantities reported in
/// Table 1 and Figures 2–3 of the paper.
#[derive(Debug, Clone, Default)]
pub struct TrainingMetrics {
    /// Episodes completed per minute of wall-clock time.
    pub episodes_per_minute: f64,
    /// Environment steps per minute of wall-clock time.
    pub steps_per_minute: f64,
    /// Size of the largest compatible set found during training/evaluation.
    pub max_compatible_set: usize,
    /// Mean reward over the last 10% of episodes.
    pub final_mean_reward: f64,
    /// `(total_env_steps, losses)` per PPO update — the loss curve of Fig. 3.
    pub loss_history: Vec<(u64, PpoLosses)>,
    /// Wall-clock seconds spent in RL training.
    pub training_seconds: f64,
    /// SAT queries spent building the pairwise-compatibility graph.
    pub compat_sat_queries: u64,
    /// Unordered rare-net pairs the compatibility graph resolved.
    pub compat_pairs_total: u64,
    /// Pairs resolved by a retained simulation witness (tier 1, no SAT).
    pub compat_pairs_witnessed: u64,
    /// Pairs resolved by disjoint cone supports (tier 2, no SAT).
    pub compat_pairs_pruned: u64,
    /// Pairs resolved by bounded exhaustive cone enumeration (tier 2, no
    /// SAT). Witnessed + pruned + enumerated + SAT partition the total.
    pub compat_pairs_enumerated: u64,
    /// Pairs that needed a SAT query (tier 3).
    pub compat_pairs_sat: u64,
    /// Exact SAT checks performed inside the environment (non-zero only for
    /// the naive all-SAT formulation).
    pub env_sat_checks: u64,
}

/// Output of a full DETERRENT run.
#[derive(Debug, Clone)]
pub struct DeterrentResult {
    /// The generated test patterns (at most `k`, often fewer after
    /// deduplication).
    pub patterns: Vec<TestPattern>,
    /// The selected compatible rare-net sets, largest first.
    pub sets: Vec<RareNetSet>,
    /// The rare nets the agent operated over.
    pub rare_nets: Vec<RareNet>,
    /// Rareness threshold used.
    pub rareness_threshold: f64,
    /// Training-phase metrics.
    pub metrics: TrainingMetrics,
}

impl DeterrentResult {
    /// Number of generated test patterns (the "Test Length" column of
    /// Table 2).
    #[must_use]
    pub fn test_length(&self) -> usize {
        self.patterns.len()
    }
}

/// The DETERRENT pipeline bound to one netlist.
#[derive(Debug, Clone)]
pub struct Deterrent<'a> {
    netlist: &'a Netlist,
    config: DeterrentConfig,
}

impl<'a> Deterrent<'a> {
    /// Creates the pipeline for `netlist` with the given configuration.
    #[must_use]
    pub fn new(netlist: &'a Netlist, config: DeterrentConfig) -> Self {
        Self { netlist, config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DeterrentConfig {
        &self.config
    }

    /// Runs the full pipeline: rare-net analysis, offline compatibility,
    /// RL training, set selection, and SAT pattern generation.
    #[must_use]
    pub fn run(&self) -> DeterrentResult {
        let analysis = RareNetAnalysis::estimate(
            self.netlist,
            self.config.rareness_threshold,
            self.config.probability_patterns,
            self.config.seed,
        );
        self.run_with_analysis(&analysis)
    }

    /// Runs the pipeline on a precomputed rare-net analysis. This is how the
    /// paper's threshold-transfer experiment (train at θ = 0.14, evaluate at
    /// θ = 0.10) is expressed: analyse once per threshold and reuse.
    #[must_use]
    pub fn run_with_analysis(&self, analysis: &RareNetAnalysis) -> DeterrentResult {
        let graph = CompatibilityGraph::build_with(
            self.netlist,
            analysis,
            &CompatBuildOptions {
                threads: self.config.compat_threads,
                strategy: self.config.compat_strategy,
            },
        );
        if graph.is_empty() {
            return DeterrentResult {
                patterns: Vec::new(),
                sets: Vec::new(),
                rare_nets: Vec::new(),
                rareness_threshold: analysis.threshold(),
                metrics: TrainingMetrics::default(),
            };
        }

        let mut env = CompatSetEnv::new(self.netlist, &graph, &self.config);
        let mut trainer =
            PpoTrainer::new(graph.len(), graph.len(), &self.config.ppo, self.config.seed);
        let options = TrainOptions {
            episodes: self.config.episodes,
            max_steps: self.config.steps_per_episode,
            seed: self.config.seed,
        };
        let start = std::time::Instant::now();
        let report = train(&mut env, &mut trainer, &options);
        let training_seconds = start.elapsed().as_secs_f64();

        // Harvest the sets seen during training plus greedy evaluation
        // rollouts from the trained policy.
        let mut harvested = env.take_harvest();
        for _ in 0..self.config.eval_rollouts {
            let mut state = rl::Environment::reset(&mut env);
            loop {
                let mask = rl::Environment::action_mask(&env);
                if !mask.is_empty() && !mask.iter().any(|&m| m) {
                    break;
                }
                let action = trainer.best_action(&state, &mask);
                let outcome = rl::Environment::step(&mut env, action);
                state = outcome.state;
                if outcome.done {
                    break;
                }
            }
        }
        harvested.extend(env.take_harvest());

        let max_compatible_set = harvested.iter().map(Vec::len).max().unwrap_or(0);
        let sets = select_k_largest(&harvested, self.config.k_patterns);
        let mut oracle = CircuitOracle::new(self.netlist);
        let patterns = generate_patterns(&mut oracle, &graph, &sets);

        let metrics = TrainingMetrics {
            episodes_per_minute: report.episodes_per_minute(),
            steps_per_minute: report.steps_per_minute(),
            max_compatible_set,
            final_mean_reward: report.mean_reward_last(self.config.episodes.div_ceil(10).max(1)),
            loss_history: trainer.loss_history().to_vec(),
            training_seconds,
            compat_sat_queries: graph.sat_queries(),
            compat_pairs_total: graph.stats().pairs_total,
            compat_pairs_witnessed: graph.stats().pairs_sim_witnessed,
            compat_pairs_pruned: graph.stats().pairs_structurally_pruned,
            compat_pairs_enumerated: graph.stats().pairs_cone_enumerated,
            compat_pairs_sat: graph.stats().pairs_sat_resolved,
            env_sat_checks: env.exact_sat_checks(),
        };

        DeterrentResult {
            patterns,
            sets,
            rare_nets: graph.rare_nets().to_vec(),
            rareness_threshold: analysis.threshold(),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RewardMode;
    use netlist::synth::BenchmarkProfile;
    use sim::Simulator;
    use trojan::{CoverageEvaluator, TrojanGenerator};

    fn small_netlist() -> Netlist {
        BenchmarkProfile::c2670().scaled(20).generate(3)
    }

    #[test]
    fn full_pipeline_produces_patterns_that_hit_rare_nets() {
        let nl = small_netlist();
        let mut config = DeterrentConfig::fast_preset();
        config.rareness_threshold = 0.2;
        let result = Deterrent::new(&nl, config).run();
        assert!(!result.rare_nets.is_empty());
        assert!(!result.patterns.is_empty());
        assert!(result.test_length() <= 16);
        assert!(result.metrics.max_compatible_set >= 1);
        assert!(result.metrics.episodes_per_minute > 0.0);

        // Every pattern activates at least one rare net at its rare value.
        let sim = Simulator::new(&nl);
        for p in &result.patterns {
            let values = sim.run(p);
            assert!(result
                .rare_nets
                .iter()
                .any(|r| values.value(r.net) == r.rare_value));
        }
    }

    #[test]
    fn pipeline_detects_planted_trojans_better_than_nothing() {
        let nl = small_netlist();
        let mut config = DeterrentConfig::fast_preset();
        config.rareness_threshold = 0.2;
        config.seed = 5;
        let result = Deterrent::new(&nl, config).run();

        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 4096, 9);
        let mut gen = TrojanGenerator::new(&nl, 77);
        let trojans = gen.sample_many(&analysis, 2, 20);
        if trojans.is_empty() {
            return; // seed produced no valid 2-wide triggers; other tests cover this
        }
        let evaluator = CoverageEvaluator::new(&nl, trojans);
        let report = evaluator.evaluate(&result.patterns);
        assert!(
            report.detected > 0,
            "DETERRENT patterns should trigger at least one planted Trojan"
        );
    }

    #[test]
    fn end_of_episode_mode_runs_and_reports_metrics() {
        let nl = small_netlist();
        let mut config = DeterrentConfig::fast_preset();
        config.rareness_threshold = 0.2;
        config.reward_mode = RewardMode::EndOfEpisode;
        config.episodes = 20;
        let result = Deterrent::new(&nl, config).run();
        assert!(result.metrics.steps_per_minute > 0.0);
    }

    #[test]
    fn empty_rare_net_set_yields_empty_result() {
        let nl = netlist::samples::c17();
        let mut config = DeterrentConfig::fast_preset();
        config.rareness_threshold = 0.01; // nothing in c17 is that rare
        let result = Deterrent::new(&nl, config).run();
        assert!(result.patterns.is_empty());
        assert!(result.sets.is_empty());
    }

    #[test]
    fn threshold_transfer_reuses_external_analysis() {
        let nl = small_netlist();
        let loose = RareNetAnalysis::estimate(&nl, 0.25, 4096, 2);
        let mut config = DeterrentConfig::fast_preset();
        config.episodes = 20;
        let result = Deterrent::new(&nl, config).run_with_analysis(&loose);
        assert!((result.rareness_threshold - 0.25).abs() < 1e-12);
    }
}
