//! Hand-rolled binary codec and disk tier for the persistent artifact cache.
//!
//! The offline container has no serde (the `serde` feature hooks in
//! `netlist` stay placeholders), so stage artifacts are persisted with an
//! explicit little-endian binary format. One artifact per file at
//! `<cache_dir>/<stage>/<key:016x>.dtc`:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"DTRNTC\x01\n"
//! 8       4     format version (u32 LE) — bumped on any layout change
//! 12      4     stage tag (u32 LE): 1 analyze, 2 graph, 3 train,
//!               4 select, 5 generate, 6 estimate
//! 16      8     artifact cache key (u64 LE) — must match the file name
//! 24      8     payload length in bytes (u64 LE)
//! 32      8     FNV-1a checksum of the payload bytes (u64 LE)
//! 40      …     payload (stage-specific field stream, all LE)
//! ```
//!
//! Every multi-byte integer and float is little-endian (`f64` as its IEEE-754
//! bit pattern), so files written on any supported host decode on any other.
//! Writes go to a unique temp file in the destination directory followed by
//! an atomic rename, so readers never observe a partially written artifact —
//! concurrent sessions sharing a cache directory at worst write the same
//! bytes twice.
//!
//! **Versioning policy:** there is no migration path. A file whose magic,
//! version, stage tag, key, length, or checksum does not match — or whose
//! payload fails structural validation — is treated exactly like a missing
//! file: the stage recomputes and the file is overwritten. Corruption is
//! counted per stage in [`crate::StageCounters::disk_corrupt`]. The format
//! version is bumped on **any** observable layout change, including new
//! payload variants **and new key derivations**: version 1 was PR 4's
//! initial format; version 2 added the train-stage payload variant tag
//! (full vs slim, below); version 3 split the analyze stage into the
//! estimate artifact (stage tag 6, θ-independent) plus a re-keyed
//! threshold artifact (stage tag 1, now keyed by prob key ⊕ θ), so v2
//! fused analyze files — whose keys encode θ directly — read as version
//! mismatches and heal by recompute. Bumping the version is always safe —
//! old caches silently recompute — so when in doubt, bump.
//!
//! # Train-stage payload variants
//!
//! Since format version 2 the train-stage payload begins with a one-byte
//! variant tag:
//!
//! * `0` — **full**: the complete [`PolicySnapshot`] (both networks, both
//!   Adam moment vectors, the whole loss history) plus the training
//!   report and harvest. Byte-for-byte fidelity on warm runs.
//! * `1` — **slim** (written when [`crate::CachePolicy::slim_policy`] is
//!   set): the Adam moment vectors are omitted (restored as zeroes — they
//!   only matter for *continuing* training, which cached artifacts never
//!   do) and the loss history is truncated to its most recent
//!   [`SLIM_LOSS_KEEP`] entries. This shrinks train-stage files roughly
//!   3×. Greedy/frozen rollouts from a slim artifact are bit-identical to
//!   full ones; the only observable difference is a truncated
//!   [`crate::TrainingMetrics::loss_history`] on warm runs.
//!
//! Both variants decode transparently regardless of the store's current
//! policy, so one cache directory can mix them.
//!
//! # Access-stamp sidecars and eviction
//!
//! Next to each artifact file the store maintains a tiny sidecar
//! `<key:016x>.lru` holding a single little-endian `u64` access stamp,
//! rewritten (atomically, same temp-file + rename protocol) on insert and
//! on every disk hit. Stamps are wall-clock nanoseconds fused with a
//! process-wide monotonic counter, so they strictly increase within a
//! process and order across processes to wall-clock precision. LRU
//! eviction reads these sidecars — **not** file `atime`, which `noatime`
//! mounts (most CI runners) never update. A missing or unreadable sidecar
//! orders the artifact oldest (evicted first). Sidecar bytes count toward
//! the budgets; corrupt sidecars never invalidate the artifact itself.
//!
//! When a [`crate::CachePolicy`] sets a budget, every insert enforces it:
//! the store scans the cache directory, applies the per-stage budget, then
//! the global one, deleting least-recently-stamped artifacts (with their
//! sidecars) until the cache fits. Artifacts this process has *read* are
//! pinned and never evicted by it (see [`crate::cache`]); freshly inserted
//! artifacts are fair game — they are already in the memory tier.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use netlist::NetId;
use rl::{AdamSnapshot, PolicySnapshot, PpoConfig, PpoLosses, PpoTrainer, TrainReport};
use sim::rare::{RareNet, RareNetAnalysis};
use sim::{PatternSource, RareNetEstimate, SignalProbabilities, TestPattern, WitnessBank};

use crate::artifact::{
    GeneratedPatterns, GraphArtifact, PatternsArtifact, ProbArtifact, RareArtifact, SelectedSets,
    SetsArtifact, TrainedPolicy,
};
use crate::cache::{CacheError, CacheErrorKind, CacheEvents};
use crate::fault::{FaultKind, FaultPlan};
use crate::{CompatStats, CompatibilityGraph, PatternGenStats, PolicyArtifact};

/// File magic: "DETERRENT cache", with a version-0 sentinel byte and a
/// newline so accidental text-mode mangling breaks the magic.
const MAGIC: [u8; 8] = *b"DTRNTC\x01\n";

/// Bumped whenever any payload layout changes; old files then read as
/// corrupt and are silently recomputed. Version 2 introduced the
/// train-stage payload variant tag (full vs slim); version 3 split the
/// fused analyze artifact into estimate (stage tag 6) + re-keyed
/// threshold payloads; version 4 extended `CompatStats` with SAT solver
/// counters and self-tuned enumeration-budget fields.
pub(crate) const FORMAT_VERSION: u32 = 4;

const HEADER_LEN: usize = 40;

/// File extension of on-disk artifacts.
pub(crate) const FILE_EXT: &str = "dtc";

/// File extension of the access-stamp sidecars driving LRU eviction.
pub(crate) const SIDECAR_EXT: &str = "lru";

/// How many of the most recent loss-history entries the slim train-stage
/// payload variant retains (the older tail is dropped on encode).
pub const SLIM_LOSS_KEEP: usize = 8;

/// The six cacheable stages, as stored in file headers and directory names.
/// `Estimate` joined in format version 3 with the next free tag, so the
/// tag-derived [`DiskStage::index`] stays dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DiskStage {
    Analyze,
    Graph,
    Train,
    Select,
    Generate,
    Estimate,
}

impl DiskStage {
    /// All stages, in tag (and directory-scan) order.
    pub(crate) const ALL: [DiskStage; 6] = [
        Self::Analyze,
        Self::Graph,
        Self::Train,
        Self::Select,
        Self::Generate,
        Self::Estimate,
    ];

    fn tag(self) -> u32 {
        match self {
            Self::Analyze => 1,
            Self::Graph => 2,
            Self::Train => 3,
            Self::Select => 4,
            Self::Generate => 5,
            Self::Estimate => 6,
        }
    }

    /// Position in [`DiskStage::ALL`] / tag order.
    pub(crate) fn index(self) -> usize {
        self.tag() as usize - 1
    }

    /// The public stage enum this disk stage persists.
    pub(crate) fn stage(self) -> crate::Stage {
        match self {
            Self::Analyze => crate::Stage::Analyze,
            Self::Graph => crate::Stage::BuildGraph,
            Self::Train => crate::Stage::Train,
            Self::Select => crate::Stage::Select,
            Self::Generate => crate::Stage::Generate,
            Self::Estimate => crate::Stage::Estimate,
        }
    }

    pub(crate) fn dir(self) -> &'static str {
        match self {
            Self::Analyze => "analyze",
            Self::Graph => "graph",
            Self::Train => "train",
            Self::Select => "select",
            Self::Generate => "generate",
            Self::Estimate => "estimate",
        }
    }
}

/// Why a payload failed to decode. Internal: every variant is handled
/// identically (treat the file as a cache miss and overwrite it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DecodeError {
    /// The byte stream ended before the field stream did, or a length field
    /// exceeds the remaining bytes.
    Truncated,
    /// A field value is structurally impossible (bad enum tag, inconsistent
    /// lengths, out-of-domain scalar).
    Malformed(&'static str),
}

type Decode<T> = Result<T, DecodeError>;

// ───────────────────────── primitives ─────────────────────────

/// Little-endian field-stream writer.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn f64_slice(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    fn u64_slice(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        for &v in vs {
            self.u64(v);
        }
    }

    fn usize_slice(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian field-stream reader over a checksum-validated payload.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn take(&mut self, n: usize) -> Decode<&'a [u8]> {
        if self.buf.len() < n {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Decode<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Decode<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Malformed("bool")),
        }
    }

    fn u64(&mut self) -> Decode<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> Decode<usize> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::Malformed("usize"))
    }

    fn f64(&mut self) -> Decode<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix for elements of `elem_bytes` each, rejecting
    /// lengths the remaining buffer cannot possibly hold (so corrupt length
    /// fields fail fast instead of attempting huge allocations).
    fn len(&mut self, elem_bytes: usize) -> Decode<usize> {
        let n = self.usize()?;
        if n.checked_mul(elem_bytes.max(1))
            .is_none_or(|total| total > self.buf.len())
        {
            return Err(DecodeError::Truncated);
        }
        Ok(n)
    }

    fn f64_vec(&mut self) -> Decode<Vec<f64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn u64_vec(&mut self) -> Decode<Vec<u64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn usize_vec(&mut self) -> Decode<Vec<usize>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    fn done(&self) -> Decode<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::Malformed("trailing bytes"))
        }
    }
}

/// FNV-1a over a byte slice — the payload checksum (same function the cache
/// keys use, over bytes instead of fields).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ───────────────────────── shared sub-codecs ─────────────────────────

fn w_rare_nets(w: &mut Writer, nets: &[RareNet]) {
    w.usize(nets.len());
    for r in nets {
        w.u64(r.net.index() as u64);
        w.bool(r.rare_value);
        w.f64(r.probability);
    }
}

fn r_rare_nets(r: &mut Reader<'_>) -> Decode<Vec<RareNet>> {
    let n = r.len(17)?;
    (0..n)
        .map(|_| {
            let net = r.u64()?;
            let net =
                NetId(u32::try_from(net).map_err(|_| DecodeError::Malformed("net id range"))?);
            Ok(RareNet {
                net,
                rare_value: r.bool()?,
                probability: r.f64()?,
            })
        })
        .collect()
}

fn w_witness_bank(w: &mut Writer, bank: Option<&WitnessBank>) {
    let Some(bank) = bank else {
        w.u8(0);
        return;
    };
    w.u8(1);
    w.usize(bank.len());
    for &(net, value) in bank.targets() {
        w.u64(net.index() as u64);
        w.bool(value);
    }
    w.usize(bank.num_chunks());
    w.usize(bank.num_patterns());
    w.u64_slice(bank.raw_rows());
    match bank.source() {
        None => w.u8(0),
        Some(PatternSource::Random { width, seed }) => {
            w.u8(1);
            w.usize(width);
            w.u64(seed);
        }
        Some(PatternSource::Exhaustive { width }) => {
            w.u8(2);
            w.usize(width);
        }
    }
}

fn r_witness_bank(r: &mut Reader<'_>) -> Decode<Option<WitnessBank>> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let n = r.len(9)?;
            let targets: Vec<(NetId, bool)> = (0..n)
                .map(|_| {
                    let net = u32::try_from(r.u64()?)
                        .map_err(|_| DecodeError::Malformed("net id range"))?;
                    Ok((NetId(net), r.bool()?))
                })
                .collect::<Decode<_>>()?;
            let num_chunks = r.usize()?;
            let num_patterns = r.usize()?;
            let rows = r.u64_vec()?;
            if rows.len() != targets.len().saturating_mul(num_chunks) {
                return Err(DecodeError::Malformed("witness rows shape"));
            }
            let source = match r.u8()? {
                0 => None,
                1 => Some(PatternSource::Random {
                    width: r.usize()?,
                    seed: r.u64()?,
                }),
                2 => Some(PatternSource::Exhaustive { width: r.usize()? }),
                _ => return Err(DecodeError::Malformed("pattern source tag")),
            };
            Ok(Some(WitnessBank::from_raw_parts(
                targets,
                num_chunks,
                num_patterns,
                rows,
                source,
            )))
        }
        _ => Err(DecodeError::Malformed("witness bank tag")),
    }
}

fn w_bool_slice_packed(w: &mut Writer, bits: &[bool]) {
    w.usize(bits.len());
    for word_bits in bits.chunks(64) {
        let mut word = 0u64;
        for (i, &b) in word_bits.iter().enumerate() {
            word |= u64::from(b) << i;
        }
        w.u64(word);
    }
}

fn r_bool_vec_packed(r: &mut Reader<'_>) -> Decode<Vec<bool>> {
    let n = r.usize()?;
    let words = n.div_ceil(64);
    if words.checked_mul(8).is_none_or(|total| total > r.buf.len()) {
        return Err(DecodeError::Truncated);
    }
    let mut bits = Vec::with_capacity(n);
    for _ in 0..words {
        let word = r.u64()?;
        for i in 0..64 {
            if bits.len() == n {
                break;
            }
            bits.push(word >> i & 1 == 1);
        }
    }
    Ok(bits)
}

fn w_sets(w: &mut Writer, sets: &[Vec<usize>]) {
    w.usize(sets.len());
    for set in sets {
        w.usize_slice(set);
    }
}

fn r_sets(r: &mut Reader<'_>) -> Decode<Vec<Vec<usize>>> {
    let n = r.len(8)?;
    (0..n).map(|_| r.usize_vec()).collect()
}

fn w_losses(w: &mut Writer, losses: &[(u64, PpoLosses)]) {
    w.usize(losses.len());
    for &(steps, l) in losses {
        w.u64(steps);
        w.f64(l.policy_loss);
        w.f64(l.entropy_loss);
        w.f64(l.value_loss);
        w.f64(l.total_loss);
    }
}

fn r_losses(r: &mut Reader<'_>) -> Decode<Vec<(u64, PpoLosses)>> {
    let n = r.len(40)?;
    (0..n)
        .map(|_| {
            Ok((
                r.u64()?,
                PpoLosses {
                    policy_loss: r.f64()?,
                    entropy_loss: r.f64()?,
                    value_loss: r.f64()?,
                    total_loss: r.f64()?,
                },
            ))
        })
        .collect()
}

fn w_adam(w: &mut Writer, adam: &AdamSnapshot) {
    w.f64(adam.learning_rate);
    w.f64_slice(&adam.m);
    w.f64_slice(&adam.v);
    w.u64(adam.steps);
}

fn r_adam(r: &mut Reader<'_>, num_params: usize) -> Decode<AdamSnapshot> {
    let snapshot = AdamSnapshot {
        learning_rate: r.f64()?,
        m: r.f64_vec()?,
        v: r.f64_vec()?,
        steps: r.u64()?,
    };
    if snapshot.m.len() != num_params || snapshot.v.len() != num_params {
        return Err(DecodeError::Malformed("adam moment shape"));
    }
    Ok(snapshot)
}

/// Parameter count of an MLP with the given layer sizes.
fn mlp_params(layer_sizes: &[usize]) -> Decode<usize> {
    if layer_sizes.len() < 2 || layer_sizes.contains(&0) {
        return Err(DecodeError::Malformed("mlp layer sizes"));
    }
    let mut total = 0usize;
    for pair in layer_sizes.windows(2) {
        total = pair[0]
            .checked_mul(pair[1])
            .and_then(|w| total.checked_add(w))
            .and_then(|t| t.checked_add(pair[1]))
            .ok_or(DecodeError::Malformed("mlp size overflow"))?;
    }
    Ok(total)
}

// ───────────────────────── payload codecs ─────────────────────────

pub(crate) fn encode_prob(artifact: &ProbArtifact, _slim: bool) -> Vec<u8> {
    let estimate = artifact.estimate();
    let mut w = Writer::new();
    w.f64(estimate.retain());
    w.usize(estimate.probabilities().num_patterns());
    w.f64_slice(estimate.probabilities().as_slice());
    w_witness_bank(&mut w, Some(estimate.bank()));
    w.finish()
}

pub(crate) fn decode_prob(key: u64, payload: &[u8]) -> Decode<ProbArtifact> {
    let mut r = Reader::new(payload);
    let retain = r.f64()?;
    if !(retain > 0.0 && retain <= 0.5) {
        return Err(DecodeError::Malformed("retain domain"));
    }
    let num_patterns = r.usize()?;
    if num_patterns == 0 {
        return Err(DecodeError::Malformed("zero patterns"));
    }
    let prob_one = r.f64_vec()?;
    let bank = r_witness_bank(&mut r)?.ok_or(DecodeError::Malformed("missing witness bank"))?;
    r.done()?;
    if bank
        .targets()
        .iter()
        .any(|&(net, _)| net.index() >= prob_one.len())
    {
        return Err(DecodeError::Malformed("candidate net range"));
    }
    let estimate = RareNetEstimate::from_raw_parts(
        retain,
        SignalProbabilities::from_raw_parts(prob_one, num_patterns),
        bank,
    );
    Ok(ProbArtifact::new(key, estimate))
}

pub(crate) fn encode_rare(artifact: &RareArtifact, _slim: bool) -> Vec<u8> {
    let analysis = artifact.analysis();
    let mut w = Writer::new();
    w.f64(analysis.threshold());
    w_rare_nets(&mut w, analysis.rare_nets());
    w.usize(analysis.probabilities().num_patterns());
    w.f64_slice(analysis.probabilities().as_slice());
    w_witness_bank(&mut w, analysis.witnesses());
    w.finish()
}

pub(crate) fn decode_rare(key: u64, payload: &[u8]) -> Decode<RareArtifact> {
    let mut r = Reader::new(payload);
    let threshold = r.f64()?;
    if !(threshold > 0.0 && threshold <= 0.5) {
        return Err(DecodeError::Malformed("threshold domain"));
    }
    let rare_nets = r_rare_nets(&mut r)?;
    let num_patterns = r.usize()?;
    if num_patterns == 0 {
        return Err(DecodeError::Malformed("zero patterns"));
    }
    let prob_one = r.f64_vec()?;
    let witnesses = r_witness_bank(&mut r)?;
    r.done()?;
    let analysis = RareNetAnalysis::from_raw_parts(
        threshold,
        rare_nets,
        SignalProbabilities::from_raw_parts(prob_one, num_patterns),
        witnesses,
    );
    Ok(RareArtifact::new(key, analysis))
}

fn w_stats(w: &mut Writer, stats: &CompatStats) {
    w.usize(stats.candidate_rare_nets);
    w.usize(stats.kept_rare_nets);
    w.u64(stats.singleton_sim_resolved);
    w.u64(stats.singleton_sat_queries);
    w.u64(stats.pairs_total);
    w.u64(stats.pairs_sim_witnessed);
    w.u64(stats.pairs_structurally_pruned);
    w.u64(stats.pairs_cone_enumerated);
    w.u64(stats.pairs_sat_resolved);
    w.usize(stats.threads_used);
    w.u64(stats.tier1_nanos);
    w.u64(stats.tier2_nanos);
    w.u64(stats.tier3_nanos);
    w.u64(stats.solver.conflicts);
    w.u64(stats.solver.decisions);
    w.u64(stats.solver.propagations);
    w.u64(stats.solver.learned_clauses);
    w.u64(stats.solver.restarts);
    w.u64(stats.solver.reduces);
    w.u64(stats.solver.deleted_clauses);
    w.u64(stats.solver.peak_learnts);
    w.u64(stats.budget_sat_base_word_ops);
    w.u64(stats.budget_sat_per_gate_word_ops);
    w.u64(stats.budget_probe_queries);
    w.bool(stats.budget_self_tuned);
}

fn r_stats(r: &mut Reader<'_>) -> Decode<CompatStats> {
    Ok(CompatStats {
        candidate_rare_nets: r.usize()?,
        kept_rare_nets: r.usize()?,
        singleton_sim_resolved: r.u64()?,
        singleton_sat_queries: r.u64()?,
        pairs_total: r.u64()?,
        pairs_sim_witnessed: r.u64()?,
        pairs_structurally_pruned: r.u64()?,
        pairs_cone_enumerated: r.u64()?,
        pairs_sat_resolved: r.u64()?,
        threads_used: r.usize()?,
        tier1_nanos: r.u64()?,
        tier2_nanos: r.u64()?,
        tier3_nanos: r.u64()?,
        solver: sat::SolverStats {
            conflicts: r.u64()?,
            decisions: r.u64()?,
            propagations: r.u64()?,
            learned_clauses: r.u64()?,
            restarts: r.u64()?,
            reduces: r.u64()?,
            deleted_clauses: r.u64()?,
            peak_learnts: r.u64()?,
        },
        budget_sat_base_word_ops: r.u64()?,
        budget_sat_per_gate_word_ops: r.u64()?,
        budget_probe_queries: r.u64()?,
        budget_self_tuned: r.bool()?,
    })
}

pub(crate) fn encode_graph(artifact: &GraphArtifact, _slim: bool) -> Vec<u8> {
    let graph = artifact.graph();
    let mut w = Writer::new();
    w.f64(artifact.rareness_threshold());
    w.f64(artifact.build_seconds());
    w_rare_nets(&mut w, graph.rare_nets());
    w_bool_slice_packed(&mut w, graph.adjacency());
    w_stats(&mut w, graph.stats());
    w_witness_bank(&mut w, graph.witness_bank());
    w.usize_slice(graph.witness_rows());
    w.finish()
}

pub(crate) fn decode_graph(key: u64, payload: &[u8]) -> Decode<GraphArtifact> {
    let mut r = Reader::new(payload);
    let rareness_threshold = r.f64()?;
    let build_seconds = r.f64()?;
    let rare_nets = r_rare_nets(&mut r)?;
    let adjacency = r_bool_vec_packed(&mut r)?;
    if adjacency.len() != rare_nets.len() * rare_nets.len() {
        return Err(DecodeError::Malformed("adjacency shape"));
    }
    let stats = r_stats(&mut r)?;
    let witnesses = r_witness_bank(&mut r)?;
    let witness_rows = r.usize_vec()?;
    if witness_rows.len() != rare_nets.len() {
        return Err(DecodeError::Malformed("witness rows length"));
    }
    r.done()?;
    let graph =
        CompatibilityGraph::from_raw_parts(rare_nets, adjacency, stats, witnesses, witness_rows);
    Ok(GraphArtifact::new(
        key,
        graph,
        rareness_threshold,
        build_seconds,
    ))
}

fn w_ppo_config(w: &mut Writer, config: &PpoConfig) {
    w.f64(config.gamma);
    w.f64(config.gae_lambda);
    w.f64(config.clip_epsilon);
    w.f64(config.entropy_coef);
    w.f64(config.value_coef);
    w.f64(config.learning_rate);
    w.usize(config.epochs);
    w.usize(config.batch_size);
    w.usize_slice(&config.hidden_sizes);
}

fn r_ppo_config(r: &mut Reader<'_>) -> Decode<PpoConfig> {
    Ok(PpoConfig {
        gamma: r.f64()?,
        gae_lambda: r.f64()?,
        clip_epsilon: r.f64()?,
        entropy_coef: r.f64()?,
        value_coef: r.f64()?,
        learning_rate: r.f64()?,
        epochs: r.usize()?,
        batch_size: r.usize()?,
        hidden_sizes: r.usize_vec()?,
    })
}

/// Train-stage payload variant tags (format version ≥ 2).
const POLICY_VARIANT_FULL: u8 = 0;
const POLICY_VARIANT_SLIM: u8 = 1;

pub(crate) fn encode_policy(artifact: &PolicyArtifact, slim: bool) -> Vec<u8> {
    let trained = artifact.policy();
    let snapshot = if slim {
        trained.trainer.snapshot().slimmed(SLIM_LOSS_KEEP)
    } else {
        trained.trainer.snapshot()
    };
    let mut w = Writer::new();
    w.u8(if slim {
        POLICY_VARIANT_SLIM
    } else {
        POLICY_VARIANT_FULL
    });
    w_ppo_config(&mut w, &snapshot.config);
    w.usize(snapshot.num_actions);
    w.u64(snapshot.total_steps);
    w.u64(snapshot.total_updates);
    w_losses(&mut w, &snapshot.loss_history);
    w.usize_slice(&snapshot.policy_layer_sizes);
    w.f64_slice(&snapshot.policy_params);
    w_adam_variant(&mut w, &snapshot.policy_opt, slim);
    w.usize_slice(&snapshot.value_layer_sizes);
    w.f64_slice(&snapshot.value_params);
    w_adam_variant(&mut w, &snapshot.value_opt, slim);
    w.f64_slice(&trained.report.episode_rewards);
    w.usize_slice(&trained.report.episode_lengths);
    if slim {
        let keep = trained.report.losses.len().min(SLIM_LOSS_KEEP);
        w_losses(
            &mut w,
            &trained.report.losses[trained.report.losses.len() - keep..],
        );
    } else {
        w_losses(&mut w, &trained.report.losses);
    }
    w.f64(trained.report.wall_seconds);
    w_sets(&mut w, &trained.harvested_sets);
    w.u64(trained.env_sat_checks);
    w.f64(trained.training_seconds);
    w.f64(trained.final_mean_reward);
    w.finish()
}

/// Slim payloads persist only the Adam learning rate and step counter; the
/// moment vectors are restored as zeroes (they only matter for continuing
/// training, which cached artifacts never do).
fn w_adam_variant(w: &mut Writer, adam: &AdamSnapshot, slim: bool) {
    if slim {
        w.f64(adam.learning_rate);
        w.u64(adam.steps);
    } else {
        w_adam(w, adam);
    }
}

fn r_adam_variant(r: &mut Reader<'_>, num_params: usize, slim: bool) -> Decode<AdamSnapshot> {
    if slim {
        Ok(AdamSnapshot::zeroed(r.f64()?, num_params, r.u64()?))
    } else {
        r_adam(r, num_params)
    }
}

pub(crate) fn decode_policy(key: u64, payload: &[u8]) -> Decode<PolicyArtifact> {
    let mut r = Reader::new(payload);
    let slim = match r.u8()? {
        POLICY_VARIANT_FULL => false,
        POLICY_VARIANT_SLIM => true,
        _ => return Err(DecodeError::Malformed("policy variant tag")),
    };
    let config = r_ppo_config(&mut r)?;
    let num_actions = r.usize()?;
    if num_actions == 0 {
        return Err(DecodeError::Malformed("zero actions"));
    }
    let total_steps = r.u64()?;
    let total_updates = r.u64()?;
    let loss_history = r_losses(&mut r)?;
    let policy_layer_sizes = r.usize_vec()?;
    let policy_param_count = mlp_params(&policy_layer_sizes)?;
    let policy_params = r.f64_vec()?;
    if policy_params.len() != policy_param_count {
        return Err(DecodeError::Malformed("policy param shape"));
    }
    let policy_opt = r_adam_variant(&mut r, policy_param_count, slim)?;
    let value_layer_sizes = r.usize_vec()?;
    let value_param_count = mlp_params(&value_layer_sizes)?;
    let value_params = r.f64_vec()?;
    if value_params.len() != value_param_count {
        return Err(DecodeError::Malformed("value param shape"));
    }
    let value_opt = r_adam_variant(&mut r, value_param_count, slim)?;
    let snapshot = PolicySnapshot {
        config,
        num_actions,
        total_steps,
        total_updates,
        loss_history,
        policy_layer_sizes,
        policy_params,
        value_layer_sizes,
        value_params,
        policy_opt,
        value_opt,
    };
    let report = TrainReport {
        episode_rewards: r.f64_vec()?,
        episode_lengths: r.usize_vec()?,
        losses: r_losses(&mut r)?,
        wall_seconds: r.f64()?,
    };
    let harvested_sets = r_sets(&mut r)?;
    let env_sat_checks = r.u64()?;
    let training_seconds = r.f64()?;
    let final_mean_reward = r.f64()?;
    r.done()?;
    // The restored action-sampling RNG is seeded from the cache key: the
    // pipeline only uses cached trainers frozen (greedy rollouts), so the
    // stream is never consumed, but the seed must at least be deterministic.
    let trainer = PpoTrainer::from_snapshot(&snapshot, key);
    Ok(PolicyArtifact::new(
        key,
        TrainedPolicy {
            trainer,
            report,
            harvested_sets,
            env_sat_checks,
            training_seconds,
            final_mean_reward,
        },
    ))
}

pub(crate) fn encode_sets(artifact: &SetsArtifact, _slim: bool) -> Vec<u8> {
    let selected = artifact.selected();
    let mut w = Writer::new();
    w_sets(&mut w, &selected.sets);
    w.usize(selected.max_compatible_set);
    w.u64(selected.eval_env_sat_checks);
    w.usize(selected.harvested_total);
    w.finish()
}

pub(crate) fn decode_sets(key: u64, payload: &[u8]) -> Decode<SetsArtifact> {
    let mut r = Reader::new(payload);
    let sets = r_sets(&mut r)?;
    let selected = SelectedSets {
        sets,
        max_compatible_set: r.usize()?,
        eval_env_sat_checks: r.u64()?,
        harvested_total: r.usize()?,
    };
    r.done()?;
    Ok(SetsArtifact::new(key, selected))
}

pub(crate) fn encode_patterns(artifact: &PatternsArtifact, _slim: bool) -> Vec<u8> {
    let generated = artifact.generated();
    let mut w = Writer::new();
    w.usize(generated.patterns.len());
    for pattern in &generated.patterns {
        let bits: Vec<bool> = (0..pattern.width()).map(|i| pattern.bit(i)).collect();
        w_bool_slice_packed(&mut w, &bits);
    }
    w.u64(generated.stats.witness_reused);
    w.u64(generated.stats.sat_queries);
    w.finish()
}

pub(crate) fn decode_patterns(key: u64, payload: &[u8]) -> Decode<PatternsArtifact> {
    let mut r = Reader::new(payload);
    let n = r.len(8)?;
    let patterns: Vec<TestPattern> = (0..n)
        .map(|_| Ok(TestPattern::new(r_bool_vec_packed(&mut r)?)))
        .collect::<Decode<_>>()?;
    let stats = PatternGenStats {
        witness_reused: r.u64()?,
        sat_queries: r.u64()?,
    };
    r.done()?;
    Ok(PatternsArtifact::new(
        key,
        GeneratedPatterns { patterns, stats },
    ))
}

// ───────────────────────── the disk tier ─────────────────────────

/// Result of probing the disk tier for one key. Generic so the store can
/// map the validated payload bytes into a decoded artifact in place.
pub(crate) enum DiskLookup<T> {
    /// Header and checksum validated; the payload is ready to use.
    Hit(T),
    /// No file for this key.
    Miss,
    /// A file exists but could not be used; the [`CacheError`] classifies
    /// why (corrupt / version-mismatch / io). The caller recomputes and
    /// overwrites it — same heal semantics for every kind.
    Failed(CacheError),
}

/// Process-unique suffix counter for temp files, so concurrent writers in
/// one process never collide (cross-process uniqueness comes from the pid).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Last access stamp handed out by [`next_stamp`], so stamps are strictly
/// monotonic within the process even when the wall clock stalls or steps
/// backwards.
static LAST_STAMP: AtomicU64 = AtomicU64::new(0);

/// A fresh access stamp: wall-clock nanoseconds since the epoch, bumped
/// past every stamp this process already issued. Strictly increasing
/// in-process; ordered across processes to wall-clock precision — exactly
/// what LRU needs (ties across processes are broken deterministically by
/// stage and key at eviction time).
pub(crate) fn next_stamp() -> u64 {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    let prev = LAST_STAMP
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |last| {
            Some(now.max(last.saturating_add(1)))
        })
        .expect("fetch_update closure never returns None");
    now.max(prev.saturating_add(1))
}

/// One artifact on disk, as seen by the eviction and maintenance scans:
/// its stage, key, total footprint (artifact + sidecar bytes), and access
/// stamp (0 when the sidecar is missing or unreadable, ordering it
/// oldest).
#[derive(Debug, Clone)]
pub(crate) struct CacheEntry {
    pub(crate) stage: DiskStage,
    pub(crate) key: u64,
    pub(crate) bytes: u64,
    pub(crate) stamp: u64,
    pub(crate) artifact: PathBuf,
    pub(crate) sidecar: PathBuf,
}

/// Lists every artifact under `root` with its footprint and access stamp.
/// A missing root or stage directory contributes nothing; other I/O errors
/// while listing are returned. Temp files and sidecars are not entries
/// (sidecar bytes are folded into their artifact's footprint).
pub(crate) fn scan_entries(root: &Path) -> std::io::Result<Vec<CacheEntry>> {
    let mut entries = Vec::new();
    for stage in DiskStage::ALL {
        let dir = root.join(stage.dir());
        let listing = match fs::read_dir(&dir) {
            Ok(listing) => listing,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for item in listing {
            let item = item?;
            let path = item.path();
            if path.extension().and_then(|e| e.to_str()) != Some(FILE_EXT) {
                continue;
            }
            let Some(key) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok())
            else {
                continue;
            };
            let Ok(meta) = item.metadata() else { continue };
            let sidecar = path.with_extension(SIDECAR_EXT);
            let mut bytes = meta.len();
            let mut stamp = 0;
            if let Ok(side_meta) = fs::metadata(&sidecar) {
                bytes += side_meta.len();
                if let Ok(side_bytes) = fs::read(&sidecar) {
                    if side_bytes.len() == 8 {
                        stamp = u64::from_le_bytes(side_bytes.try_into().expect("8 bytes"));
                    }
                }
            }
            entries.push(CacheEntry {
                stage,
                key,
                bytes,
                stamp,
                artifact: path,
                sidecar,
            });
        }
    }
    Ok(entries)
}

/// Classifies `bytes` as a complete artifact file for `(stage, key)`:
/// magic, format version, stage tag, key, payload length, and FNV-1a
/// payload checksum. Payload *structure* is not decoded — that happens at
/// load time — but every bit of the file is covered by the checksum.
///
/// An intact header with a different format version classifies as
/// [`CacheErrorKind::VersionMismatch`]; every other failure is
/// [`CacheErrorKind::Corrupt`].
pub(crate) fn classify_bytes(bytes: &[u8], stage: DiskStage, key: u64) -> Result<(), CacheError> {
    let fail = |kind: CacheErrorKind, detail: String| {
        Err(CacheError::new(kind, stage.stage(), key, detail))
    };
    if bytes.len() < HEADER_LEN {
        return fail(
            CacheErrorKind::Corrupt,
            format!("short file ({} bytes)", bytes.len()),
        );
    }
    if bytes[..8] != MAGIC {
        return fail(CacheErrorKind::Corrupt, "bad magic".to_string());
    }
    let field_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4"));
    let field_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8"));
    let version = field_u32(8);
    if version != FORMAT_VERSION {
        return fail(
            CacheErrorKind::VersionMismatch,
            format!("format version {version} (expected {FORMAT_VERSION})"),
        );
    }
    if field_u32(12) != stage.tag() {
        return fail(CacheErrorKind::Corrupt, "stage tag mismatch".to_string());
    }
    if field_u64(16) != key {
        return fail(CacheErrorKind::Corrupt, "key mismatch".to_string());
    }
    if field_u64(24) != (bytes.len() - HEADER_LEN) as u64 {
        return fail(
            CacheErrorKind::Corrupt,
            "payload length mismatch".to_string(),
        );
    }
    if field_u64(32) != fnv1a(&bytes[HEADER_LEN..]) {
        return fail(CacheErrorKind::Corrupt, "checksum mismatch".to_string());
    }
    Ok(())
}

/// Boolean view of [`classify_bytes`] for the maintenance scans, which
/// treat every failure kind identically.
pub(crate) fn validate_bytes(bytes: &[u8], stage: DiskStage, key: u64) -> bool {
    classify_bytes(bytes, stage, key).is_ok()
}

/// Reads and validates the artifact file at `path` (see [`validate_bytes`]).
/// Unreadable counts as invalid.
pub(crate) fn validate_file(path: &Path, stage: DiskStage, key: u64) -> bool {
    fs::read(path).is_ok_and(|bytes| validate_bytes(&bytes, stage, key))
}

/// Plans which of `entries` to evict so the cache fits `policy`: first
/// each stage is brought under [`crate::CachePolicy::per_stage_max`], then
/// the whole cache under [`crate::CachePolicy::max_bytes`], evicting
/// least-recently-stamped first (ties broken by stage then key, so the
/// plan is deterministic). Entries in `pinned` (as `(stage index, key)`)
/// are never selected. Returns indices into `entries`.
pub(crate) fn plan_evictions(
    entries: &[CacheEntry],
    policy: &crate::CachePolicy,
    pinned: &std::collections::HashSet<(usize, u64)>,
) -> Vec<usize> {
    let crate::cache::Eviction::Lru = policy.eviction;
    if policy.is_unbounded() {
        return Vec::new();
    }
    // LRU order: oldest stamp first, deterministic tie-break.
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| (entries[i].stamp, entries[i].stage.index(), entries[i].key));

    let evictable = |entry: &CacheEntry| !pinned.contains(&(entry.stage.index(), entry.key));
    let mut evicted = vec![false; entries.len()];

    if let Some(per_stage) = policy.per_stage_max {
        for stage in DiskStage::ALL {
            let mut stage_total: u64 = entries
                .iter()
                .filter(|e| e.stage == stage)
                .map(|e| e.bytes)
                .sum();
            for &i in &order {
                if stage_total <= per_stage {
                    break;
                }
                let entry = &entries[i];
                if entry.stage == stage && !evicted[i] && evictable(entry) {
                    evicted[i] = true;
                    stage_total -= entry.bytes;
                }
            }
        }
    }

    if let Some(max_bytes) = policy.max_bytes {
        let mut total: u64 = entries
            .iter()
            .enumerate()
            .filter(|(i, _)| !evicted[*i])
            .map(|(_, e)| e.bytes)
            .sum();
        for &i in &order {
            if total <= max_bytes {
                break;
            }
            if !evicted[i] && evictable(&entries[i]) {
                evicted[i] = true;
                total -= entries[i].bytes;
            }
        }
    }

    order.retain(|&i| evicted[i]);
    order
}

/// Per-kind failure-event accumulator behind `&DiskStore`.
#[derive(Debug, Default)]
struct EventCell {
    corrupt: AtomicU64,
    version_mismatch: AtomicU64,
    io: AtomicU64,
    budget_evictions: AtomicU64,
}

impl EventCell {
    fn snapshot(&self) -> CacheEvents {
        CacheEvents {
            corrupt: self.corrupt.load(Ordering::Relaxed),
            version_mismatch: self.version_mismatch.load(Ordering::Relaxed),
            io: self.io.load(Ordering::Relaxed),
            budget_evictions: self.budget_evictions.load(Ordering::Relaxed),
        }
    }
}

/// Environment variable that silences the rate-limited heal warning when
/// set to `1`.
pub const QUIET_ENV_VAR: &str = "DETERRENT_QUIET";

/// Name of the cross-process generation-counter file at the cache root: a
/// single little-endian `u64`, rewritten (atomically) by every writer that
/// changes the directory's contents — inserts, access-stamp refreshes,
/// budget evictions, gc deletions, verify heals. Stores keep an in-memory
/// size/stamp index of the directory and only fall back to an O(files)
/// rescan when the counter no longer matches the value their index was
/// built against, so the common single-writer case enforces budgets
/// without touching the directory listing at all.
pub(crate) const GEN_FILE: &str = "gen.ctr";

/// Reads the generation counter at `root` (0 when missing or unreadable —
/// indistinguishable from a never-written cache, which is exactly right:
/// both force one initial rescan).
pub(crate) fn read_generation(root: &Path) -> u64 {
    fs::read(root.join(GEN_FILE))
        .ok()
        .and_then(|bytes| <[u8; 8]>::try_from(bytes).ok())
        .map(u64::from_le_bytes)
        .unwrap_or(0)
}

/// Advances the generation counter at `root` and returns the new value.
/// Best-effort like every other cache write: two processes bumping inside
/// the same read→rename window can collapse to one increment, leaving each
/// other's index stale until the *next* foreign bump — the worst case is
/// one delayed budget-enforcement pass, never a wrong artifact (correctness
/// always comes from the files themselves, not the index).
pub(crate) fn bump_generation(root: &Path) -> u64 {
    let next = read_generation(root).wrapping_add(1);
    if fs::create_dir_all(root).is_ok() {
        write_atomically(root, &root.join(GEN_FILE), &next.to_le_bytes(), next);
    }
    next
}

/// One artifact's footprint and access stamp as the in-memory index tracks
/// it (the path is derivable from the `(stage, key)` index key).
#[derive(Debug, Clone, Copy)]
struct IndexedEntry {
    bytes: u64,
    stamp: u64,
}

/// The in-memory mirror of the cache directory driving budget
/// enforcement: what [`scan_entries`] would return, keyed by
/// `(stage index, key)`, plus the generation-counter value it was built
/// against. `valid == false` forces a rescan on next use.
#[derive(Debug, Default)]
struct CacheIndex {
    valid: bool,
    gen_seen: u64,
    entries: std::collections::HashMap<(usize, u64), IndexedEntry>,
}

/// The persistent tier of an [`crate::ArtifactStore`]: one file per artifact
/// under `<root>/<stage>/<key:016x>.dtc` plus a `.lru` access-stamp sidecar
/// (see the [module docs](self) for both formats). All operations are
/// best-effort — I/O errors on write are swallowed (the cache is an
/// accelerator, not a store of record) and unusable files are reported as
/// [`DiskLookup::Failed`] with a classified [`CacheError`].
///
/// The store enforces its [`crate::CachePolicy`] budgets after every
/// insert, and pins every `(stage, key)` it has served from disk so the
/// current process never evicts its own working set.
///
/// An attached [`FaultPlan`] deterministically injects faults — short
/// reads, checksum flips, `ErrorKind::Other` on open/rename, eviction
/// races — so the recovery paths are exercised by tests and CI instead of
/// waiting for real corruption.
#[derive(Debug)]
pub(crate) struct DiskStore {
    root: PathBuf,
    policy: crate::CachePolicy,
    /// `(stage index, key)` pairs this process has read from disk —
    /// protected from this store's budget enforcement.
    pinned: std::sync::Mutex<std::collections::HashSet<(usize, u64)>>,
    /// Optional deterministic fault-injection schedule.
    faults: Option<FaultPlan>,
    /// Per-kind failure-event counters.
    events: EventCell,
    /// Whether the one rate-limited heal warning has been printed.
    warned: std::sync::atomic::AtomicBool,
    /// In-memory size/stamp mirror of the directory, so budget
    /// enforcement does not rescan O(files) on every insert. Invalidated
    /// by the cross-process [`GEN_FILE`] counter.
    index: std::sync::Mutex<CacheIndex>,
    /// How many full directory rescans the index has performed (observable
    /// for tests asserting the single-writer fast path).
    rescans: AtomicU64,
}

impl DiskStore {
    pub(crate) fn with_faults(
        root: PathBuf,
        policy: crate::CachePolicy,
        faults: Option<FaultPlan>,
    ) -> Self {
        Self {
            root,
            policy,
            pinned: std::sync::Mutex::default(),
            faults,
            events: EventCell::default(),
            warned: std::sync::atomic::AtomicBool::new(false),
            index: std::sync::Mutex::default(),
            rescans: AtomicU64::new(0),
        }
    }

    /// How many times the index fell back to a full directory rescan.
    #[cfg(test)]
    pub(crate) fn index_rescans(&self) -> u64 {
        self.rescans.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-kind failure-event counters.
    pub(crate) fn events(&self) -> CacheEvents {
        self.events.snapshot()
    }

    /// Counts a classified lookup failure and emits the rate-limited heal
    /// warning (first failure per store only; silenced by
    /// `DETERRENT_QUIET=1`). Counters always run; only the warning is
    /// rate-limited.
    pub(crate) fn note_failure(&self, err: &CacheError) {
        let counter = match err.kind {
            CacheErrorKind::Corrupt => &self.events.corrupt,
            CacheErrorKind::VersionMismatch => &self.events.version_mismatch,
            CacheErrorKind::Io => &self.events.io,
            CacheErrorKind::Budget => &self.events.budget_evictions,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if self.warned.swap(true, Ordering::Relaxed) {
            return;
        }
        if std::env::var(QUIET_ENV_VAR).is_ok_and(|v| v.trim() == "1") {
            return;
        }
        eprintln!(
            "[store] warning: healing {err} (recomputing; later heals are \
             silent — set {QUIET_ENV_VAR}=1 to silence this line)"
        );
    }

    /// The stable fault-injection site identity of `(stage, key)`.
    fn fault_site(stage: DiskStage, key: u64) -> u64 {
        u64::from(stage.tag()).rotate_left(56) ^ key
    }

    pub(crate) fn root(&self) -> &Path {
        &self.root
    }

    /// Whether train-stage artifacts are written with the slim payload
    /// variant.
    pub(crate) fn slim_policy(&self) -> bool {
        self.policy.slim_policy
    }

    fn file_path(&self, stage: DiskStage, key: u64) -> PathBuf {
        self.root
            .join(stage.dir())
            .join(format!("{key:016x}.{FILE_EXT}"))
    }

    fn pin(&self, stage: DiskStage, key: u64) {
        self.pinned
            .lock()
            .expect("disk store pin lock poisoned")
            .insert((stage.index(), key));
    }

    /// Atomically (re)writes the access-stamp sidecar for `(stage, key)`,
    /// returning the stamp written (`None` when the sidecar write failed —
    /// the artifact then orders oldest, same as a missing sidecar).
    fn touch(&self, stage: DiskStage, key: u64) -> Option<u64> {
        let dir = self.root.join(stage.dir());
        let sidecar = self.file_path(stage, key).with_extension(SIDECAR_EXT);
        let stamp = next_stamp();
        write_atomically(&dir, &sidecar, &stamp.to_le_bytes(), key).then_some(stamp)
    }

    /// Records a directory mutation for `(stage, key)` in the in-memory
    /// index and bumps the cross-process generation counter so *other*
    /// stores sharing the directory rescan. `bytes` is `Some` on insert
    /// (total artifact + sidecar footprint) and `None` on a bare
    /// access-stamp refresh; a refresh of an entry the index has never
    /// seen invalidates it (the directory changed behind our back without
    /// a counter bump we noticed).
    fn note_mutation(&self, stage: DiskStage, key: u64, bytes: Option<u64>, stamp: u64) {
        let mut index = self.lock_index();
        // A foreign bump we have not yet synced against must not be
        // swallowed by our own: check staleness *before* bumping.
        if index.valid && read_generation(&self.root) != index.gen_seen {
            index.valid = false;
        }
        let slot = (stage.index(), key);
        if index.valid {
            match (index.entries.get_mut(&slot), bytes) {
                (Some(entry), _) => {
                    if let Some(bytes) = bytes {
                        entry.bytes = bytes;
                    }
                    entry.stamp = stamp;
                }
                (None, Some(bytes)) => {
                    index.entries.insert(slot, IndexedEntry { bytes, stamp });
                }
                (None, None) => index.valid = false,
            }
        }
        index.gen_seen = bump_generation(&self.root);
    }

    /// Locks the index, ignoring poisoning: the index is structurally
    /// valid at every await-free point and a stale one only costs a
    /// rescan, so a panicking peer must not wedge budget enforcement.
    fn lock_index(&self) -> std::sync::MutexGuard<'_, CacheIndex> {
        self.index
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Brings `index` in sync with the directory: a no-op when it is valid
    /// and the generation counter still matches the value it was built
    /// against, otherwise one full [`scan_entries`] rescan.
    fn sync_index(&self, index: &mut CacheIndex) {
        let file_gen = read_generation(&self.root);
        if index.valid && index.gen_seen == file_gen {
            return;
        }
        index.entries.clear();
        match scan_entries(&self.root) {
            Ok(entries) => {
                for entry in entries {
                    index.entries.insert(
                        (entry.stage.index(), entry.key),
                        IndexedEntry {
                            bytes: entry.bytes,
                            stamp: entry.stamp,
                        },
                    );
                }
                index.valid = true;
                index.gen_seen = file_gen;
                self.rescans.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => index.valid = false,
        }
    }

    /// Reads and validates the artifact file for `(stage, key)`. A hit
    /// refreshes the access-stamp sidecar and pins the artifact against
    /// eviction by this process. An attached [`FaultPlan`] may
    /// deterministically inject an open error, an eviction race (reported
    /// as a clean miss), a short read, or a checksum flip.
    pub(crate) fn load(&self, stage: DiskStage, key: u64) -> DiskLookup<Vec<u8>> {
        let site = Self::fault_site(stage, key);
        if let Some(plan) = &self.faults {
            if plan.should_inject(FaultKind::IoError, site) {
                let injected = std::io::Error::other("injected transient fault");
                return DiskLookup::Failed(CacheError::new(
                    CacheErrorKind::Io,
                    stage.stage(),
                    key,
                    format!("open failed: {injected}"),
                ));
            }
        }
        let mut bytes = match fs::read(self.file_path(stage, key)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskLookup::Miss,
            Err(e) => {
                return DiskLookup::Failed(CacheError::new(
                    CacheErrorKind::Io,
                    stage.stage(),
                    key,
                    format!("read failed: {e}"),
                ))
            }
        };
        if let Some(plan) = &self.faults {
            if plan.should_inject(FaultKind::EvictionRace, site) {
                // The file vanished between scan and read: a clean miss.
                return DiskLookup::Miss;
            }
            if plan.should_inject(FaultKind::CorruptRead, site) {
                if site & 1 == 0 {
                    bytes.truncate(bytes.len() / 2);
                } else if let Some(last) = bytes.last_mut() {
                    *last ^= 0xFF;
                }
            }
        }
        if let Err(err) = classify_bytes(&bytes, stage, key) {
            return DiskLookup::Failed(err);
        }
        let payload = bytes.split_off(HEADER_LEN);
        self.pin(stage, key);
        if let Some(stamp) = self.touch(stage, key) {
            self.note_mutation(stage, key, None, stamp);
        }
        DiskLookup::Hit(payload)
    }

    /// Atomically writes the artifact file for `(stage, key)`: the header +
    /// payload go to a process-unique temp file in the destination
    /// directory, then rename into place (so a concurrent reader sees the
    /// old complete file or the new complete file, never a partial one).
    /// Also stamps the sidecar and then enforces the cache policy's
    /// budgets. Best-effort: I/O failures leave the cache cold but never
    /// the caller broken.
    pub(crate) fn store(&self, stage: DiskStage, key: u64, payload: &[u8]) {
        let dir = self.root.join(stage.dir());
        if fs::create_dir_all(&dir).is_err() {
            self.events.io.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(plan) = &self.faults {
            if plan.should_inject(FaultKind::IoError, Self::fault_site(stage, key)) {
                // Injected rename failure: the artifact stays cold on disk
                // (the memory tier still holds it), counted like any real
                // write error.
                self.events.io.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&stage.tag().to_le_bytes());
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        if write_atomically(&dir, &self.file_path(stage, key), &bytes, key) {
            let stamp = self.touch(stage, key);
            // Footprint = artifact + sidecar, matching what a rescan
            // would measure.
            let sidecar_bytes = if stamp.is_some() { 8 } else { 0 };
            self.note_mutation(
                stage,
                key,
                Some(bytes.len() as u64 + sidecar_bytes),
                stamp.unwrap_or(0),
            );
        } else {
            self.events.io.fetch_add(1, Ordering::Relaxed);
        }
        self.enforce_budget();
    }

    /// Brings the cache directory under the policy's budgets, deleting
    /// least-recently-used artifacts (and their sidecars) first. Artifacts
    /// this process has read are pinned and survive; freshly inserted ones
    /// are evictable (the memory tier still holds them). Best-effort.
    ///
    /// Entries come from the in-memory index; the O(files) directory
    /// rescan only happens when the cross-process generation counter says
    /// another writer changed the directory since the index was built.
    fn enforce_budget(&self) {
        if self.policy.is_unbounded() {
            return;
        }
        let mut index = self.lock_index();
        self.sync_index(&mut index);
        if !index.valid {
            return;
        }
        let entries: Vec<CacheEntry> = index
            .entries
            .iter()
            .map(|(&(stage_idx, key), entry)| {
                let stage = DiskStage::ALL[stage_idx];
                let artifact = self.file_path(stage, key);
                let sidecar = artifact.with_extension(SIDECAR_EXT);
                CacheEntry {
                    stage,
                    key,
                    bytes: entry.bytes,
                    stamp: entry.stamp,
                    artifact,
                    sidecar,
                }
            })
            .collect();
        let pinned = self
            .pinned
            .lock()
            .expect("disk store pin lock poisoned")
            .clone();
        let plan = plan_evictions(&entries, &self.policy, &pinned);
        if plan.is_empty() {
            return;
        }
        for i in plan {
            let entry = &entries[i];
            let _ = fs::remove_file(&entry.artifact);
            let _ = fs::remove_file(&entry.sidecar);
            index.entries.remove(&(entry.stage.index(), entry.key));
            self.events.budget_evictions.fetch_add(1, Ordering::Relaxed);
        }
        index.gen_seen = bump_generation(&self.root);
    }
}

/// Size of the header [`encode_record`] prepends.
const RECORD_HEADER_LEN: usize = 32;

/// Wraps `payload` in the codec's versioned record container: the cache
/// MAGIC, the current format version, a caller-chosen record `tag`, the
/// payload length, and an FNV-1a payload checksum (32 bytes of header).
/// Used for non-artifact files that want the same torn-write and
/// version-skew protection as artifacts — e.g. campaign checkpoint files.
#[must_use]
pub fn encode_record(tag: u32, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&tag.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// Validates and unwraps a record produced by [`encode_record`] with the
/// same `tag`, returning the payload bytes.
///
/// # Errors
///
/// Returns a short description when the magic, format version, tag,
/// length, or checksum does not match — callers treat any error like a
/// missing file (recompute from scratch), mirroring the artifact
/// versioning policy.
pub fn decode_record(tag: u32, bytes: &[u8]) -> Result<Vec<u8>, String> {
    if bytes.len() < RECORD_HEADER_LEN {
        return Err(format!("short record ({} bytes)", bytes.len()));
    }
    if bytes[..8] != MAGIC {
        return Err("bad magic".to_string());
    }
    let field_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4"));
    let field_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8"));
    let version = field_u32(8);
    if version != FORMAT_VERSION {
        return Err(format!(
            "format version {version} (expected {FORMAT_VERSION})"
        ));
    }
    let found_tag = field_u32(12);
    if found_tag != tag {
        return Err(format!("record tag {found_tag:#x} (expected {tag:#x})"));
    }
    let payload = &bytes[RECORD_HEADER_LEN..];
    if field_u64(16) != payload.len() as u64 {
        return Err("payload length mismatch".to_string());
    }
    if field_u64(24) != fnv1a(payload) {
        return Err("checksum mismatch".to_string());
    }
    Ok(payload.to_vec())
}

/// Lists leftover `.tmp-*` files under `root`'s stage directories — the
/// residue of a writer killed between temp-file creation and rename. Live
/// writers hold their temp files only for the duration of one write, so
/// offline maintenance (gc) may remove everything this returns.
pub(crate) fn scan_stale_temps(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut stale = Vec::new();
    for stage in DiskStage::ALL {
        let dir = root.join(stage.dir());
        let listing = match fs::read_dir(&dir) {
            Ok(listing) => listing,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for item in listing {
            let path = item?.path();
            let is_temp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-"));
            if is_temp {
                stale.push(path);
            }
        }
    }
    stale.sort();
    Ok(stale)
}

/// Writes `bytes` to `dest` via a process-unique temp file in `dir` + an
/// atomic rename. Returns whether the rename happened.
fn write_atomically(dir: &Path, dest: &Path, bytes: &[u8], key: u64) -> bool {
    let temp = dir.join(format!(
        ".tmp-{}-{}-{key:016x}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let written = fs::File::create(&temp)
        .and_then(|mut f| f.write_all(bytes))
        .is_ok();
    if written && fs::rename(&temp, dest).is_ok() {
        return true;
    }
    let _ = fs::remove_file(&temp);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::synth::BenchmarkProfile;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dtc-codec-{}-{}-{tag}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_analysis() -> RareNetAnalysis {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(3);
        RareNetAnalysis::estimate(&nl, 0.2, 1024, 7)
    }

    #[test]
    fn rare_payload_round_trips_bit_exactly() {
        let analysis = sample_analysis();
        let artifact = RareArtifact::new(42, analysis);
        let payload = encode_rare(&artifact, false);
        let decoded = decode_rare(42, &payload).expect("decode");
        let (a, b) = (artifact.analysis(), decoded.analysis());
        assert_eq!(a.threshold().to_bits(), b.threshold().to_bits());
        assert_eq!(a.rare_nets(), b.rare_nets());
        assert_eq!(a.probabilities().as_slice(), b.probabilities().as_slice());
        assert_eq!(
            a.probabilities().num_patterns(),
            b.probabilities().num_patterns()
        );
        let (wa, wb) = (a.witnesses().unwrap(), b.witnesses().unwrap());
        assert_eq!(wa.targets(), wb.targets());
        assert_eq!(wa.raw_rows(), wb.raw_rows());
        assert_eq!(wa.source(), wb.source());
        // The rebuilt by-net index answers lookups identically.
        for r in a.rare_nets() {
            assert_eq!(a.position(r.net), b.position(r.net));
        }
    }

    #[test]
    fn prob_payload_round_trips_and_rethresholds_bit_exactly() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(3);
        let estimate = RareNetEstimate::estimate(&nl, 0.25, 1024, 7);
        let artifact = ProbArtifact::new(11, estimate);
        let payload = encode_prob(&artifact, false);
        // The slim flag is accepted and ignored: identical bytes.
        assert_eq!(payload, encode_prob(&artifact, true));
        let decoded = decode_prob(11, &payload).expect("decode");
        let (a, b) = (artifact.estimate(), decoded.estimate());
        assert_eq!(a.retain().to_bits(), b.retain().to_bits());
        assert_eq!(a.probabilities().as_slice(), b.probabilities().as_slice());
        assert_eq!(
            a.probabilities().num_patterns(),
            b.probabilities().num_patterns()
        );
        assert_eq!(a.bank().targets(), b.bank().targets());
        assert_eq!(a.bank().raw_rows(), b.bank().raw_rows());
        assert_eq!(a.bank().source(), b.bank().source());
        // The decoded estimate re-thresholds to bit-identical analyses.
        for theta in [0.1, 0.2, 0.25] {
            let (ta, tb) = (a.threshold(theta), b.threshold(theta));
            assert_eq!(ta.rare_nets(), tb.rare_nets());
            assert_eq!(
                ta.witnesses().unwrap().raw_rows(),
                tb.witnesses().unwrap().raw_rows()
            );
        }
    }

    #[test]
    fn prob_payload_corruption_is_an_error_not_a_panic() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(3);
        let artifact = ProbArtifact::new(3, RareNetEstimate::estimate(&nl, 0.25, 512, 9));
        let payload = encode_prob(&artifact, false);
        for cut in [0, 1, 7, 8, payload.len() / 2, payload.len() - 1] {
            assert!(decode_prob(3, &payload[..cut]).is_err(), "cut at {cut}");
        }
        let mut long = payload.clone();
        long.push(0);
        assert!(matches!(
            decode_prob(3, &long),
            Err(DecodeError::Malformed("trailing bytes"))
        ));
        // An out-of-domain retain threshold is rejected up front.
        let mut bad = payload;
        bad[..8].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(matches!(
            decode_prob(3, &bad),
            Err(DecodeError::Malformed("retain domain"))
        ));
    }

    #[test]
    fn v2_fused_analyze_files_are_clean_misses_and_heal() {
        let root = temp_root("v2-migration");
        let disk = DiskStore::with_faults(root.clone(), crate::CachePolicy::default(), None);
        // Hand-craft a format-version-2 file — the pre-split fused analyze
        // layout — exactly where a v3 threshold artifact would live.
        let key = 0x1234u64;
        let payload = b"pre-split fused analyze payload";
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&DiskStage::Analyze.tag().to_le_bytes());
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        let dir = root.join(DiskStage::Analyze.dir());
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(format!("{key:016x}.{FILE_EXT}")), &bytes).unwrap();
        // The old file classifies as version skew — a clean miss, no panic.
        match disk.load(DiskStage::Analyze, key) {
            DiskLookup::Failed(err) => {
                assert_eq!(err.kind, crate::cache::CacheErrorKind::VersionMismatch);
                disk.note_failure(&err);
            }
            _ => panic!("v2 file must classify as a failed lookup"),
        }
        assert_eq!(disk.events().version_mismatch, 1);
        // Recompute-and-overwrite heals it into a servable v3 file.
        disk.store(DiskStage::Analyze, key, b"fresh v3 payload");
        match disk.load(DiskStage::Analyze, key) {
            DiskLookup::Hit(fresh) => assert_eq!(fresh, b"fresh v3 payload"),
            _ => panic!("healed file must serve"),
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn graph_payload_round_trips_bit_exactly() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(3);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 1024, 7);
        let graph = CompatibilityGraph::build(&nl, &analysis, 1);
        let artifact = GraphArtifact::new(9, graph, analysis.threshold(), 0.5);
        let payload = encode_graph(&artifact, false);
        let decoded = decode_graph(9, &payload).expect("decode");
        assert_eq!(artifact.graph().adjacency(), decoded.graph().adjacency());
        assert_eq!(artifact.graph().rare_nets(), decoded.graph().rare_nets());
        assert_eq!(artifact.graph().stats(), decoded.graph().stats());
        assert_eq!(
            artifact.graph().witness_rows(),
            decoded.graph().witness_rows()
        );
        assert_eq!(artifact.build_seconds(), decoded.build_seconds());
        // Witness pattern materialization survives the round trip.
        if artifact.graph().len() >= 2 {
            for i in 0..artifact.graph().len() {
                for j in (i + 1)..artifact.graph().len() {
                    assert_eq!(
                        artifact.graph().joint_witness_pattern(&[i, j]),
                        decoded.graph().joint_witness_pattern(&[i, j]),
                    );
                }
            }
        }
    }

    #[test]
    fn sets_and_patterns_payloads_round_trip() {
        let sets_artifact = SetsArtifact::new(
            5,
            SelectedSets {
                sets: vec![vec![0, 2, 5], vec![1], vec![]],
                max_compatible_set: 3,
                eval_env_sat_checks: 17,
                harvested_total: 99,
            },
        );
        let decoded = decode_sets(5, &encode_sets(&sets_artifact, false)).expect("sets");
        assert_eq!(decoded.selected().sets, sets_artifact.selected().sets);
        assert_eq!(decoded.selected().harvested_total, 99);

        let patterns_artifact = PatternsArtifact::new(
            6,
            GeneratedPatterns {
                patterns: vec![
                    TestPattern::from_bit_string("1011_0010_1"),
                    TestPattern::zeros(64),
                    TestPattern::ones(65),
                    TestPattern::default(),
                ],
                stats: PatternGenStats {
                    witness_reused: 3,
                    sat_queries: 2,
                },
            },
        );
        let decoded =
            decode_patterns(6, &encode_patterns(&patterns_artifact, false)).expect("patterns");
        assert_eq!(
            decoded.generated().patterns,
            patterns_artifact.generated().patterns
        );
        assert_eq!(
            decoded.generated().stats,
            patterns_artifact.generated().stats
        );
    }

    #[test]
    fn truncated_and_malformed_payloads_are_errors_not_panics() {
        let artifact = RareArtifact::new(1, sample_analysis());
        let payload = encode_rare(&artifact, false);
        for cut in [0, 1, 7, 8, payload.len() / 2, payload.len() - 1] {
            assert!(decode_rare(1, &payload[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected too.
        let mut long = payload.clone();
        long.push(0);
        assert!(matches!(
            decode_rare(1, &long),
            Err(DecodeError::Malformed("trailing bytes"))
        ));
        // A length field pointing past the buffer fails fast.
        let mut huge = payload;
        let len_at = 8; // rare-net count lives right after the threshold
        huge[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_rare(1, &huge).is_err());
    }

    #[test]
    fn disk_store_validates_header_version_key_and_checksum() {
        let root = temp_root("header");
        let disk = DiskStore::with_faults(root.clone(), crate::CachePolicy::default(), None);
        assert!(matches!(disk.load(DiskStage::Analyze, 7), DiskLookup::Miss));
        disk.store(DiskStage::Analyze, 7, b"payload bytes");
        match disk.load(DiskStage::Analyze, 7) {
            DiskLookup::Hit(payload) => assert_eq!(payload, b"payload bytes"),
            _ => panic!("expected hit"),
        }
        // Wrong stage and wrong key are misses (different files).
        assert!(matches!(disk.load(DiskStage::Graph, 7), DiskLookup::Miss));
        assert!(matches!(disk.load(DiskStage::Analyze, 8), DiskLookup::Miss));

        let path = disk.file_path(DiskStage::Analyze, 7);
        let original = fs::read(&path).unwrap();

        // Route each failure through note_failure, as the artifact store
        // does, so the event counters are exercised too.
        let failure_kind = |lookup: DiskLookup<Vec<u8>>| match lookup {
            DiskLookup::Failed(err) => {
                disk.note_failure(&err);
                err.kind
            }
            _ => panic!("expected a classified failure"),
        };

        // Bad magic.
        let mut bad = original.clone();
        bad[0] ^= 0xFF;
        fs::write(&path, &bad).unwrap();
        assert_eq!(
            failure_kind(disk.load(DiskStage::Analyze, 7)),
            crate::cache::CacheErrorKind::Corrupt
        );

        // Wrong format version with an intact magic classifies as
        // version skew, not corruption.
        let mut bad = original.clone();
        bad[8] = bad[8].wrapping_add(1);
        fs::write(&path, &bad).unwrap();
        assert_eq!(
            failure_kind(disk.load(DiskStage::Analyze, 7)),
            crate::cache::CacheErrorKind::VersionMismatch
        );

        // Truncated payload.
        fs::write(&path, &original[..original.len() - 3]).unwrap();
        assert_eq!(
            failure_kind(disk.load(DiskStage::Analyze, 7)),
            crate::cache::CacheErrorKind::Corrupt
        );

        // Flipped payload bit (checksum mismatch).
        let mut bad = original.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        fs::write(&path, &bad).unwrap();
        assert_eq!(
            failure_kind(disk.load(DiskStage::Analyze, 7)),
            crate::cache::CacheErrorKind::Corrupt
        );

        // Every failure above was counted and classified.
        let events = disk.events();
        assert_eq!(events.corrupt, 3);
        assert_eq!(events.version_mismatch, 1);
        assert_eq!(events.io, 0);
        assert_eq!(events.total(), 4);

        // Overwriting heals the file.
        disk.store(DiskStage::Analyze, 7, b"payload bytes");
        assert!(matches!(
            disk.load(DiskStage::Analyze, 7),
            DiskLookup::Hit(_)
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn budget_enforcement_uses_the_index_without_rescanning() {
        let root = temp_root("index-fast-path");
        // Budget small enough that every insert runs enforcement.
        let policy = crate::CachePolicy::default().with_max_bytes(200);
        let disk = DiskStore::with_faults(root.clone(), policy, None);
        for key in 0..6u64 {
            disk.store(DiskStage::Analyze, key, &[0u8; 48]);
        }
        // One initial rescan builds the index; the remaining five inserts
        // (and their evictions) run entirely off it — the generation file
        // tracks our own bumps.
        assert_eq!(disk.index_rescans(), 1);
        assert!(disk.events().budget_evictions > 0);
        let on_disk = scan_entries(&root).unwrap();
        let total: u64 = on_disk.iter().map(|e| e.bytes).sum();
        assert!(total <= 200, "cache over budget: {total}");
        // The survivors are the most recently inserted keys.
        let mut keys: Vec<u64> = on_disk.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![4, 5]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn generation_counter_invalidates_other_stores_indexes() {
        let root = temp_root("index-cross-store");
        let policy = crate::CachePolicy::default().with_max_bytes(200);
        // Two stores sharing one directory, as two daemon processes would.
        let a = DiskStore::with_faults(root.clone(), policy, None);
        let b = DiskStore::with_faults(root.clone(), policy, None);

        b.store(DiskStage::Analyze, 1, &[0u8; 48]);
        assert_eq!(b.index_rescans(), 1);
        // A writes behind B's back, bumping the generation counter.
        a.store(DiskStage::Analyze, 2, &[0u8; 48]);
        // B's next insert sees the bump, rescans, and accounts for A's
        // artifact when enforcing the budget.
        b.store(DiskStage::Analyze, 3, &[0u8; 48]);
        assert_eq!(b.index_rescans(), 2);
        let on_disk = scan_entries(&root).unwrap();
        let total: u64 = on_disk.iter().map(|e| e.bytes).sum();
        assert!(total <= 200, "cache over budget: {total}");
        let mut keys: Vec<u64> = on_disk.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![2, 3], "LRU evicted the oldest key across stores");

        // Offline gc bumps the counter too, so live stores re-examine the
        // directory instead of trusting a stale index.
        let before = a.index_rescans();
        crate::cache::gc(&root, &crate::CachePolicy::default().with_max_bytes(100)).unwrap();
        a.store(DiskStage::Analyze, 9, &[0u8; 48]);
        assert!(a.index_rescans() > before);
        let _ = fs::remove_dir_all(&root);
    }
}
