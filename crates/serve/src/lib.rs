//! Campaign-as-a-service: a resident sweep daemon with a persistent
//! worker pool and a streaming job protocol.
//!
//! The `deterrent-serve` daemon keeps one [`exec::ExecPool`] and one
//! bounded [`deterrent_core::ArtifactStore`] warm across campaigns, so
//! repeated parameter sweeps skip both thread spin-up and recomputation
//! of overlapping cells. Clients (`deterrent-submit`, or [`submit`]
//! programmatically) connect over a Unix-domain socket, speak the
//! length-prefixed JSON frame protocol in [`protocol`], and receive:
//!
//! 1. an `ack` with the daemon-assigned job number,
//! 2. (optionally) a stream of `event` frames — the job's trace events,
//!    which the client re-renders into the *same bytes* the one-shot CLI
//!    would have printed to stderr, and
//! 3. exactly one `report` frame carrying the campaign TSV, bit-identical
//!    to `deterrent-campaign --out` for the same grid at any thread
//!    count, or one `error` frame.
//!
//! Jobs queue in the bounded, priority-ordered [`queue::JobQueue`] and
//! run one at a time on the shared pool (cells parallelize *within* a
//! job). On SIGTERM/SIGINT the daemon drains: queued jobs keep running
//! until the configured drain timeout, stragglers are rejected, and the
//! socket file is removed.
//!
//! ```text
//! deterrent-serve --socket /tmp/dt.sock --threads 4 --cache-dir cache &
//! deterrent-submit --socket /tmp/dt.sock --thetas 0.15,0.2 --seeds 1,2
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod daemon;
pub mod protocol;
pub mod queue;
pub mod signal;

pub use client::{ping, resolve_socket, submit, JobOutcome};
pub use daemon::{Daemon, DaemonConfig};
pub use protocol::SOCKET_ENV_VAR;
