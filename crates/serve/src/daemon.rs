//! The resident campaign daemon: accept loop, dispatcher, and per-job
//! execution on a persistent [`ExecPool`].
//!
//! # Lifecycle
//!
//! [`Daemon::run`] binds the Unix-domain socket (removing a stale file
//! from a previous run), then runs two kinds of threads under one scope:
//!
//! * the **accept loop** (the calling thread) polls a non-blocking
//!   listener and spawns one short-lived handler thread per connection;
//! * the **dispatcher** pops jobs off the bounded [`JobQueue`] and runs
//!   them one at a time on the shared worker pool — cell-level
//!   parallelism comes from the pool, so serializing jobs keeps each
//!   job's throughput identical to a one-shot CLI run.
//!
//! When the stop flag flips (SIGTERM/SIGINT via
//! [`crate::signal::install_stop_handler`], or a test setting an
//! [`AtomicBool`]), the daemon stops accepting, closes the queue, and
//! *drains*: queued jobs keep running until [`DaemonConfig::drain_timeout`]
//! expires, after which the remainder are rejected with `error` frames.
//! The socket file is removed on the way out.
//!
//! # Determinism
//!
//! Every job runs through [`CampaignPlan::run_on_pool`]
//! (via [`campaign::PlanSpec::to_plan`]), which shares its chunking rule
//! with the scoped executor — so the TSV a client receives is
//! bit-identical to running the same grid through the `deterrent-campaign`
//! CLI at any thread count. All jobs share the daemon's one bounded
//! [`ArtifactStore`], so overlapping grids from different clients hit the
//! same cache entries instead of recomputing.
//!
//! [`CampaignPlan::run_on_pool`]: campaign::CampaignPlan::run_on_pool

use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use campaign::{PlanSpec, RunPolicy, SilentProgress};
use deterrent_core::ArtifactStore;
use exec::ExecPool;
use telemetry::{Telemetry, TraceEvent, TraceSink, Value};

use crate::protocol::{
    ack_frame, error_frame, event_frame, frame_type, frame_u64, pong_frame, read_frame,
    report_frame, write_frame,
};
use crate::queue::JobQueue;

/// How often the accept loop and idle connection handlers wake to check
/// the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Configuration for a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the Unix-domain socket to listen on.
    pub socket: PathBuf,
    /// Worker-pool size; `0` resolves like [`ExecPool::new`] (the
    /// `DETERRENT_THREADS` environment variable, then available
    /// parallelism).
    pub threads: usize,
    /// Maximum number of accepted-but-not-yet-running jobs; further
    /// submits are rejected with an `error` frame.
    pub queue_capacity: usize,
    /// After a stop signal, how long queued jobs may keep starting before
    /// the backlog is rejected.
    pub drain_timeout: Duration,
    /// Suppress the daemon's stderr log lines.
    pub quiet: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            socket: PathBuf::from("deterrent.sock"),
            threads: 0,
            queue_capacity: 64,
            drain_timeout: Duration::from_secs(30),
            quiet: false,
        }
    }
}

/// An accepted job: the parsed plan plus the connection to answer on.
struct Job {
    spec: PlanSpec,
    priority: u64,
    stream: bool,
    conn: Arc<Mutex<UnixStream>>,
}

/// Forwards events to a sink the daemon shares across jobs. Each job gets
/// its own [`Telemetry`] (so span ids and metrics are per-job), but all of
/// them fan out to the daemon's sinks through this adapter.
struct SharedSink(Arc<dyn TraceSink>);

impl TraceSink for SharedSink {
    fn event(&self, event: &TraceEvent) {
        self.0.event(event);
    }

    fn flush(&self) {
        self.0.flush();
    }
}

/// Relays each trace event to the subscribed client as an `event` frame.
/// Write errors are swallowed: a client that hung up mid-job costs the
/// stream, never the job.
struct StreamSink {
    conn: Arc<Mutex<UnixStream>>,
}

impl TraceSink for StreamSink {
    fn event(&self, event: &TraceEvent) {
        let frame = event_frame(&event.to_line());
        let mut conn = lock_ignoring_poison(&self.conn);
        let _ = write_frame(&mut *conn, &frame);
    }
}

/// The resident campaign service. See the module docs for the lifecycle.
pub struct Daemon {
    config: DaemonConfig,
    store: ArtifactStore,
    pool: ExecPool,
    sinks: Vec<Arc<dyn TraceSink>>,
    telemetry: Telemetry,
    queue: JobQueue<Job>,
    next_seq: AtomicU64,
    jobs_done: AtomicU64,
    drain_deadline: Mutex<Option<Instant>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("socket", &self.config.socket)
            .field("threads", &self.pool.threads())
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Builds a daemon serving jobs from `store` with `sinks` receiving
    /// every job's trace events (pass the daemon's JSONL sink here; each
    /// subscribed client additionally gets its own stream). The worker
    /// pool spins up immediately and persists across jobs.
    #[must_use]
    pub fn new(config: DaemonConfig, store: ArtifactStore, sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        let telemetry = if sinks.is_empty() {
            Telemetry::disabled()
        } else {
            Telemetry::new(
                sinks
                    .iter()
                    .map(|s| Box::new(SharedSink(Arc::clone(s))) as Box<dyn TraceSink>)
                    .collect(),
            )
        };
        let pool = ExecPool::new(config.threads);
        let queue = JobQueue::new(config.queue_capacity);
        Self {
            config,
            store,
            pool,
            sinks,
            telemetry,
            queue,
            next_seq: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            drain_deadline: Mutex::new(None),
        }
    }

    /// The persistent worker pool (shared by every job).
    #[must_use]
    pub fn pool(&self) -> &ExecPool {
        &self.pool
    }

    /// The shared artifact store all jobs read and write.
    #[must_use]
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Number of jobs that have completed (report frame sent).
    #[must_use]
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done.load(Ordering::SeqCst)
    }

    /// Serves until `stop` flips to `true`, then drains and returns.
    ///
    /// # Errors
    ///
    /// Fails only on socket setup (removing a stale file, binding,
    /// switching to non-blocking). Per-connection and per-job errors are
    /// answered over the wire and logged, never propagated.
    pub fn run(&self, stop: &AtomicBool) -> io::Result<()> {
        let socket = &self.config.socket;
        if socket.exists() {
            std::fs::remove_file(socket)?;
        }
        let listener = UnixListener::bind(socket)?;
        listener.set_nonblocking(true)?;
        self.log(&format!(
            "listening on {} ({} worker threads)",
            socket.display(),
            self.pool.threads()
        ));
        std::thread::scope(|scope| {
            let dispatcher = scope.spawn(|| self.dispatch_loop());
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((conn, _)) => {
                        scope.spawn(move || self.handle_connection(conn, stop));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
            self.log(&format!(
                "stop requested; draining {} queued job(s) (timeout {:?})",
                self.queue.len(),
                self.config.drain_timeout
            ));
            *lock_ignoring_poison(&self.drain_deadline) =
                Some(Instant::now() + self.config.drain_timeout);
            self.queue.close();
            let _ = dispatcher.join();
        });
        self.telemetry.flush();
        let _ = std::fs::remove_file(socket);
        self.log("stopped");
        Ok(())
    }

    /// Runs queued jobs in priority/FIFO order until the queue is closed
    /// and drained. Jobs still queued when the drain deadline passes are
    /// rejected instead of run.
    fn dispatch_loop(&self) {
        while let Some((seq, job)) = self.queue.pop() {
            let expired = lock_ignoring_poison(&self.drain_deadline)
                .is_some_and(|deadline| Instant::now() >= deadline);
            if expired {
                self.log(&format!("job {seq} rejected: drain timeout exceeded"));
                send_frame(
                    &job.conn,
                    &error_frame("daemon drain timeout exceeded before the job started"),
                );
                continue;
            }
            self.run_job(seq, job);
        }
    }

    /// Reads frames off a fresh connection until it submits, pings, or
    /// goes away. Idle reads time out every [`POLL_INTERVAL`] so handler
    /// threads notice the stop flag and let the scope join.
    fn handle_connection(&self, conn: UnixStream, stop: &AtomicBool) {
        let _ = conn.set_read_timeout(Some(POLL_INTERVAL));
        loop {
            match read_frame(&mut &conn) {
                Ok(None) => return,
                Ok(Some(frame)) => match frame_type(&frame) {
                    Some("ping") => {
                        if write_frame(&mut &conn, &pong_frame()).is_err() {
                            return;
                        }
                    }
                    Some("submit") => {
                        self.accept_submit(&frame, conn);
                        return;
                    }
                    other => {
                        let message =
                            format!("unexpected frame type \"{}\"", other.unwrap_or("<missing>"));
                        let _ = write_frame(&mut &conn, &error_frame(&message));
                        return;
                    }
                },
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
    }

    /// Validates a `submit` frame, acks it, and enqueues the job. The
    /// sequence number is reserved *before* the ack is written, and the
    /// job is queued *after* — so the ack is on the wire before any
    /// event/report frame can race it.
    fn accept_submit(&self, frame: &Value, conn: UnixStream) {
        let spec = match frame.as_obj().and_then(|o| o.get("plan")) {
            Some(plan) => match PlanSpec::from_value(plan) {
                Ok(spec) => spec,
                Err(message) => {
                    let frame = error_frame(&format!("invalid plan: {message}"));
                    let _ = write_frame(&mut &conn, &frame);
                    return;
                }
            },
            None => {
                let _ = write_frame(&mut &conn, &error_frame("submit frame is missing its plan"));
                return;
            }
        };
        if let Err(message) = spec.to_plan() {
            let frame = error_frame(&format!("invalid plan: {message}"));
            let _ = write_frame(&mut &conn, &frame);
            return;
        }
        let priority = frame_u64(frame, "priority").unwrap_or(0);
        let stream = frame
            .as_obj()
            .and_then(|o| o.get("stream"))
            .and_then(Value::as_bool)
            .unwrap_or(true);
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        // The connection now belongs to the job; no further reads, so the
        // idle-poll timeout comes off.
        let _ = conn.set_read_timeout(None);
        if write_frame(&mut &conn, &ack_frame(seq)).is_err() {
            return;
        }
        let job = Job {
            spec,
            priority,
            stream,
            conn: Arc::new(Mutex::new(conn)),
        };
        if let Err((err, job)) = self.queue.push(priority, seq, job) {
            self.log(&format!("job {seq} rejected: {err}"));
            send_frame(&job.conn, &error_frame(&err.to_string()));
        }
    }

    /// Runs one job on the shared pool and store, streaming trace events
    /// to the client when subscribed, and answers with the final report.
    fn run_job(&self, seq: u64, job: Job) {
        let Job {
            spec,
            priority,
            stream,
            conn,
        } = job;
        let plan = match spec.to_plan() {
            Ok(plan) => plan,
            Err(message) => {
                send_frame(&conn, &error_frame(&format!("invalid plan: {message}")));
                return;
            }
        };
        let cells = plan.cells().len();
        let mut span = self.telemetry.span("serve.job");
        span.attr_u64("cells", cells as u64);
        span.attr_u64("priority", priority);
        // The sequence number depends on client arrival order, which is
        // nondeterministic with concurrent submitters.
        span.vary_u64("job", seq);
        let mut sinks: Vec<Box<dyn TraceSink>> = self
            .sinks
            .iter()
            .map(|s| Box::new(SharedSink(Arc::clone(s))) as Box<dyn TraceSink>)
            .collect();
        if stream {
            sinks.push(Box::new(StreamSink {
                conn: Arc::clone(&conn),
            }));
        }
        let telemetry = if sinks.is_empty() {
            Telemetry::disabled()
        } else {
            Telemetry::new(sinks)
        };
        let policy = RunPolicy {
            telemetry: telemetry.clone(),
            span_parent: Some(span.context()),
            ..RunPolicy::default()
        };
        self.log(&format!("job {seq}: {cells} cell(s), priority {priority}"));
        let report = plan.run_on_pool(&self.store, &self.pool, Arc::new(SilentProgress), &policy);
        telemetry.flush_metrics();
        let outcomes = report.outcome_summary();
        span.attr_str("outcomes", &outcomes);
        send_frame(&conn, &report_frame(seq, &report.to_tsv(), &outcomes));
        span.close();
        self.jobs_done.fetch_add(1, Ordering::SeqCst);
        self.log(&format!("job {seq} done: {outcomes}"));
    }

    fn log(&self, message: &str) {
        if !self.config.quiet {
            eprintln!("[serve] {message}");
        }
    }
}

/// Writes one frame to a job-owned connection, swallowing transport
/// errors (a vanished client must not take the daemon down).
fn send_frame(conn: &Arc<Mutex<UnixStream>>, frame: &Value) {
    let mut guard = lock_ignoring_poison(conn);
    let _ = write_frame(&mut *guard, frame);
}

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}
