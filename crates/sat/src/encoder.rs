//! Tseitin encoding of gate-level netlists into CNF.

use netlist::{cone, GateKind, NetId, Netlist};

use crate::types::{Cnf, Lit, Var};

const UNMAPPED: u32 = u32::MAX;

/// Tseitin encoder mapping nets of a [`Netlist`] to CNF variables.
///
/// Primary inputs and scan flip-flop outputs are free variables; every
/// combinational gate contributes the standard Tseitin clauses relating its
/// output variable to its fanin variables. Flip-flop *data* inputs impose no
/// constraint on the flop output (full-scan semantics: the flop can be loaded
/// with any value through the scan chain).
///
/// [`CircuitEncoder::new`] encodes the whole netlist with the identity
/// net-to-variable mapping. [`CircuitEncoder::for_cone`] encodes only the
/// transitive fanin of a set of root nets with a compact variable range —
/// the formula (and the solver built from it) then scales with the cone, not
/// the design.
#[derive(Debug, Clone)]
pub struct CircuitEncoder {
    cnf: Cnf,
    /// Net index -> variable index, [`UNMAPPED`] when the net is outside the
    /// encoded region.
    net_vars: Vec<u32>,
    encoded_gates: usize,
}

impl CircuitEncoder {
    /// Encodes the whole `netlist` into CNF; net `i` maps to variable `i`.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let n = netlist.num_gates();
        let mut cnf = Cnf::with_vars(n);
        let net_vars: Vec<u32> = (0..n as u32).collect();
        let all_nets: Vec<NetId> = netlist.iter().map(|(id, _)| id).collect();
        let encoded_gates = encode_nets_into(netlist, &all_nets, &net_vars, &mut cnf);
        Self {
            cnf,
            net_vars,
            encoded_gates,
        }
    }

    /// Encodes only the transitive fanin cone of `roots` with a compact
    /// variable numbering. Nets outside the cone have no variable.
    #[must_use]
    pub fn for_cone(netlist: &Netlist, roots: &[NetId]) -> Self {
        let cone_nets = cone::transitive_fanin(netlist, roots);
        let mut net_vars = vec![UNMAPPED; netlist.num_gates()];
        for (v, id) in cone_nets.iter().enumerate() {
            net_vars[id.index()] = v as u32;
        }
        let mut cnf = Cnf::with_vars(cone_nets.len());
        let encoded_gates = encode_nets_into(netlist, &cone_nets, &net_vars, &mut cnf);
        Self {
            cnf,
            net_vars,
            encoded_gates,
        }
    }

    /// The CNF variable representing `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the encoded netlist or lies outside
    /// the encoded cone.
    #[must_use]
    pub fn var(&self, net: NetId) -> Var {
        let v = self.net_vars[net.index()];
        assert!(v != UNMAPPED, "net {net} is outside the encoded cone");
        Var(v)
    }

    /// The CNF variable representing `net`, or `None` when the net lies
    /// outside the encoded cone.
    #[must_use]
    pub fn try_var(&self, net: NetId) -> Option<Var> {
        match self.net_vars.get(net.index()) {
            Some(&v) if v != UNMAPPED => Some(Var(v)),
            _ => None,
        }
    }

    /// The literal asserting that `net` carries `value`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the encoded netlist or lies outside
    /// the encoded cone.
    #[must_use]
    pub fn lit(&self, net: NetId, value: bool) -> Lit {
        self.var(net).lit(value)
    }

    /// Number of combinational gates whose clauses are in the formula.
    #[must_use]
    pub fn encoded_gates(&self) -> usize {
        self.encoded_gates
    }

    /// The encoded formula.
    #[must_use]
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Consumes the encoder and returns the formula.
    #[must_use]
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }
}

/// Emits the Tseitin clauses of every combinational gate in `nets` into
/// `cnf`, mapping nets to variables through `net_vars` (fanins must be
/// mapped too). Returns the number of gates encoded.
///
/// Shared by both [`CircuitEncoder`] constructors and the lazy per-cone
/// encoding of [`crate::ConeOracle`].
pub(crate) fn encode_nets_into(
    netlist: &Netlist,
    nets: &[NetId],
    net_vars: &[u32],
    cnf: &mut Cnf,
) -> usize {
    let mut encoded = 0usize;
    for &id in nets {
        let gate = netlist.gate(id);
        if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
            continue;
        }
        let y = Var(net_vars[id.index()]);
        let fanin: Vec<Var> = gate
            .fanin
            .iter()
            .map(|f| Var(net_vars[f.index()]))
            .collect();
        encode_gate(gate.kind, y, &fanin, &mut |cnf| cnf.new_var(), cnf);
        encoded += 1;
    }
    encoded
}

/// Emits the Tseitin clauses of one gate into `cnf`. `fresh` allocates
/// auxiliary variables (used by XOR/XNOR chains); it receives `cnf` so
/// callers can allocate from the same variable space the clauses land in.
fn encode_gate(
    kind: GateKind,
    y: Var,
    fanin: &[Var],
    fresh: &mut impl FnMut(&mut Cnf) -> Var,
    cnf: &mut Cnf,
) {
    match kind {
        GateKind::Input | GateKind::Dff => {}
        GateKind::Const0 => cnf.add_clause([y.negative()]),
        GateKind::Const1 => cnf.add_clause([y.positive()]),
        GateKind::Buf => encode_equal(cnf, y, fanin[0], false),
        GateKind::Not => encode_equal(cnf, y, fanin[0], true),
        GateKind::And => encode_and(cnf, y, fanin, false),
        GateKind::Nand => encode_and(cnf, y, fanin, true),
        GateKind::Or => encode_or(cnf, y, fanin, false),
        GateKind::Nor => encode_or(cnf, y, fanin, true),
        GateKind::Xor => encode_xor(cnf, y, fanin, false, fresh),
        GateKind::Xnor => encode_xor(cnf, y, fanin, true, fresh),
    }
}

fn encode_equal(cnf: &mut Cnf, y: Var, a: Var, invert: bool) {
    // y == a (or y == ¬a when invert).
    cnf.add_clause([y.negative(), a.lit(!invert)]);
    cnf.add_clause([y.positive(), a.lit(invert)]);
}

fn encode_and(cnf: &mut Cnf, y: Var, fanin: &[Var], invert: bool) {
    // z = AND(fanin); y = z or ¬z depending on invert.
    // (¬z ∨ a_i) for each i, and (z ∨ ¬a_1 ∨ … ∨ ¬a_k).
    let y_pos = y.lit(!invert); // literal that is true when z is true
    let y_neg = y.lit(invert);
    for &a in fanin {
        cnf.add_clause([y_neg, a.positive()]);
    }
    let mut long: Vec<Lit> = vec![y_pos];
    long.extend(fanin.iter().map(|a| a.negative()));
    cnf.add_clause(long);
}

fn encode_or(cnf: &mut Cnf, y: Var, fanin: &[Var], invert: bool) {
    // z = OR(fanin); y = z or ¬z depending on invert.
    let y_pos = y.lit(!invert);
    let y_neg = y.lit(invert);
    for &a in fanin {
        cnf.add_clause([y_pos, a.negative()]);
    }
    let mut long: Vec<Lit> = vec![y_neg];
    long.extend(fanin.iter().map(|a| a.positive()));
    cnf.add_clause(long);
}

fn encode_xor2(cnf: &mut Cnf, y: Var, a: Var, b: Var) {
    // y = a ⊕ b.
    cnf.add_clause([y.negative(), a.positive(), b.positive()]);
    cnf.add_clause([y.negative(), a.negative(), b.negative()]);
    cnf.add_clause([y.positive(), a.negative(), b.positive()]);
    cnf.add_clause([y.positive(), a.positive(), b.negative()]);
}

fn encode_xor(
    cnf: &mut Cnf,
    y: Var,
    fanin: &[Var],
    invert: bool,
    fresh: &mut impl FnMut(&mut Cnf) -> Var,
) {
    match fanin.len() {
        0 => cnf.add_clause([y.lit(invert)]),
        1 => encode_equal(cnf, y, fanin[0], invert),
        _ => {
            // Chain: acc = a0 ⊕ a1 ⊕ … with fresh intermediates, then tie the
            // final accumulator to y (inverted for XNOR).
            let mut acc = fanin[0];
            for (i, &next) in fanin.iter().enumerate().skip(1) {
                let out = if i == fanin.len() - 1 && !invert {
                    y
                } else {
                    fresh(cnf)
                };
                encode_xor2(cnf, out, acc, next);
                acc = out;
            }
            if invert {
                encode_equal(cnf, y, acc, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sim::{Simulator, TestPattern};

    /// For every gate kind and a set of random patterns, the CNF must be
    /// satisfiable exactly when the circuit produces the asserted values.
    #[test]
    fn encoding_agrees_with_simulation() {
        let designs = vec![
            samples::c17(),
            samples::majority5(),
            samples::adder4(),
            samples::scan_counter3(),
            BenchmarkProfile::c2670().scaled(25).generate(2),
        ];
        let mut rng = StdRng::seed_from_u64(11);
        for nl in designs {
            let enc = CircuitEncoder::new(&nl);
            let sim = Simulator::new(&nl);
            let scan = nl.scan_inputs();
            for _ in 0..10 {
                let pattern = TestPattern::random(scan.len(), &mut rng);
                let values = sim.run(&pattern);
                let mut solver = Solver::from_cnf(enc.cnf());
                // Assume the scan inputs take the pattern's values; every net
                // must then be forced to its simulated value.
                let assumptions: Vec<Lit> = scan
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| enc.lit(s, pattern.bit(i)))
                    .collect();
                let result = solver.solve(&assumptions);
                let model = result.model().expect("consistent assignment is SAT");
                for (id, gate) in nl.iter() {
                    if matches!(gate.kind, netlist::GateKind::Dff) {
                        continue;
                    }
                    assert_eq!(
                        model[enc.var(id).index()],
                        values.value(id),
                        "{}: net {} under {pattern}",
                        nl.name(),
                        nl.net_name(id)
                    );
                }
            }
        }
    }

    #[test]
    fn contradictory_targets_are_unsat() {
        let nl = samples::c17();
        let enc = CircuitEncoder::new(&nl);
        let mut solver = Solver::from_cnf(enc.cnf());
        let g10 = nl.net_by_name("G10").unwrap();
        // G10 = NAND(G1, G3): G10=0 requires G1=1 and G3=1, so asserting
        // G10=0 together with G1=0 is UNSAT.
        let g1 = nl.net_by_name("G1").unwrap();
        let res = solver.solve(&[enc.lit(g10, false), enc.lit(g1, false)]);
        assert!(!res.is_sat());
    }

    #[test]
    fn xor_chain_encoding_has_aux_vars() {
        let nl = samples::adder4();
        let enc = CircuitEncoder::new(&nl);
        assert!(enc.cnf().num_vars() >= nl.num_gates());
    }

    #[test]
    fn var_mapping_is_dense_prefix() {
        let nl = samples::c17();
        let enc = CircuitEncoder::new(&nl);
        for (id, _) in nl.iter() {
            assert_eq!(enc.var(id).index(), id.index());
        }
    }

    #[test]
    fn cone_encoding_is_smaller_and_agrees_with_full() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(6);
        let full = CircuitEncoder::new(&nl);
        for &root in nl.internal_nets().iter().take(12) {
            let cone_enc = CircuitEncoder::for_cone(&nl, &[root]);
            assert!(cone_enc.cnf().num_vars() <= full.cnf().num_vars());
            assert!(cone_enc.encoded_gates() <= full.encoded_gates());
            // Justifiability of the root must agree between the encodings.
            for value in [false, true] {
                let mut cone_solver = Solver::from_cnf(cone_enc.cnf());
                let mut full_solver = Solver::from_cnf(full.cnf());
                let cone_sat = cone_solver.solve(&[cone_enc.lit(root, value)]).is_sat();
                let full_sat = full_solver.solve(&[full.lit(root, value)]).is_sat();
                assert_eq!(cone_sat, full_sat, "net {root} = {value}");
            }
        }
    }

    #[test]
    fn cone_encoding_excludes_unrelated_nets() {
        let nl = samples::c17();
        let g22 = nl.net_by_name("G22").unwrap();
        let g23 = nl.net_by_name("G23").unwrap();
        let enc = CircuitEncoder::for_cone(&nl, &[g22]);
        assert!(enc.try_var(g22).is_some());
        // G23's cone overlaps G22's, but G23 itself is not in G22's fanin.
        assert!(enc.try_var(g23).is_none());
    }

    #[test]
    #[should_panic(expected = "outside the encoded cone")]
    fn var_outside_cone_panics() {
        let nl = samples::c17();
        let g22 = nl.net_by_name("G22").unwrap();
        let g23 = nl.net_by_name("G23").unwrap();
        let enc = CircuitEncoder::for_cone(&nl, &[g22]);
        let _ = enc.var(g23);
    }
}
