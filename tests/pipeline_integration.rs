//! Cross-crate integration tests: the full DETERRENT flow, baselines, and
//! Trojan evaluation working together on the same designs.

use deterrent_repro::baselines::{RandomPatterns, TestGenerator};
use deterrent_repro::deterrent_core::{CompatibilityGraph, Deterrent, DeterrentConfig, RewardMode};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::netlist::{bench, samples};
use deterrent_repro::sat::CircuitOracle;
use deterrent_repro::sim::rare::RareNetAnalysis;
use deterrent_repro::sim::{Simulator, TestPattern};
use deterrent_repro::trojan::{CoverageEvaluator, TrojanGenerator};

fn test_netlist(seed: u64) -> deterrent_repro::netlist::Netlist {
    BenchmarkProfile::c2670().scaled(20).generate(seed)
}

#[test]
fn deterrent_patterns_verified_end_to_end() {
    let netlist = test_netlist(100);
    let config = DeterrentConfig::fast_preset()
        .with_threshold(0.2)
        .with_seed(17);
    let result = Deterrent::new(&netlist, config).run();
    assert!(!result.patterns.is_empty());

    // Every selected set must be jointly justifiable and every generated
    // pattern must activate the rare nets of at least its own set.
    let analysis = RareNetAnalysis::estimate(&netlist, 0.2, 8192, 17);
    let graph = CompatibilityGraph::build(&netlist, &analysis, 2);
    let sim = Simulator::new(&netlist);
    for pattern in &result.patterns {
        let values = sim.run(pattern);
        let excited = graph
            .rare_nets()
            .iter()
            .filter(|r| values.value(r.net) == r.rare_value)
            .count();
        assert!(excited >= 1, "each DETERRENT pattern excites rare logic");
    }
}

#[test]
fn deterrent_beats_random_at_equal_budget() {
    let netlist = test_netlist(7);
    let analysis = RareNetAnalysis::estimate(&netlist, 0.2, 8192, 3);
    let mut adversary = TrojanGenerator::new(&netlist, 42);
    let trojans = adversary.sample_many(&analysis, 2, 30);
    if trojans.len() < 5 {
        // Extremely small scaled designs occasionally admit too few triggers;
        // the statistical comparison would be meaningless.
        return;
    }
    let evaluator = CoverageEvaluator::new(&netlist, trojans);

    let config = DeterrentConfig::fast_preset()
        .with_threshold(0.2)
        .with_seed(3);
    let deterrent = Deterrent::new(&netlist, config).run_with_analysis(&analysis);
    let deterrent_cov = evaluator.evaluate(&deterrent.patterns).coverage_percent();

    let random =
        RandomPatterns::new(deterrent.test_length().max(1), 5).generate(&netlist, &analysis);
    let random_cov = evaluator.evaluate(&random).coverage_percent();

    assert!(
        deterrent_cov >= random_cov,
        "DETERRENT ({deterrent_cov:.1}%) should not lose to random ({random_cov:.1}%) at equal budget"
    );
}

#[test]
fn masking_does_not_reduce_best_set_quality() {
    // Theorem 3.1: masking loses nothing. With identical budgets the masked
    // agent should find compatible sets at least as large as the unmasked one
    // (statistically; we allow equality).
    let netlist = test_netlist(55);
    let analysis = RareNetAnalysis::estimate(&netlist, 0.2, 8192, 9);
    let masked_cfg = DeterrentConfig::fast_preset()
        .with_threshold(0.2)
        .with_episodes(40)
        .with_seed(11);
    let unmasked_cfg = masked_cfg
        .clone()
        .with_ablation(RewardMode::AllSteps, false);

    let masked = Deterrent::new(&netlist, masked_cfg).run_with_analysis(&analysis);
    let unmasked = Deterrent::new(&netlist, unmasked_cfg).run_with_analysis(&analysis);
    assert!(
        masked.metrics.max_compatible_set >= unmasked.metrics.max_compatible_set,
        "masked {} vs unmasked {}",
        masked.metrics.max_compatible_set,
        unmasked.metrics.max_compatible_set
    );
}

#[test]
fn bench_format_round_trip_preserves_pipeline_behaviour() {
    // Write the netlist to .bench text, parse it back, and confirm rare-net
    // analysis sees the same circuit.
    let netlist = test_netlist(200);
    let text = bench::write(&netlist);
    let reparsed = bench::parse(netlist.name(), &text).expect("round trip");
    let a = RareNetAnalysis::estimate(&netlist, 0.2, 4096, 1);
    let b = RareNetAnalysis::estimate(&reparsed, 0.2, 4096, 1);
    assert_eq!(a.len(), b.len());
}

#[test]
fn infected_netlists_expose_payload_only_under_trigger() {
    let netlist = test_netlist(300);
    let analysis = RareNetAnalysis::estimate(&netlist, 0.2, 8192, 2);
    let mut adversary = TrojanGenerator::new(&netlist, 8);
    let Some(trojan) = adversary.sample(&analysis, 2) else {
        return;
    };
    let infected = deterrent_repro::trojan::infect(&netlist, &trojan).expect("infect");
    let golden_sim = Simulator::new(&netlist);
    let bad_sim = Simulator::new(&infected);

    // A SAT-derived triggering pattern must cause an output mismatch.
    let mut oracle = CircuitOracle::new(&netlist);
    let bits = oracle
        .justify(&trojan.trigger)
        .expect("trigger satisfiable");
    let fire = TestPattern::new(bits);
    let golden_out: Vec<bool> = netlist
        .primary_outputs()
        .iter()
        .map(|&o| golden_sim.run(&fire).value(o))
        .collect();
    let bad_out: Vec<bool> = infected
        .primary_outputs()
        .iter()
        .map(|&o| bad_sim.run(&fire).value(o))
        .collect();
    assert_ne!(
        golden_out, bad_out,
        "payload must corrupt an output when triggered"
    );
}

#[test]
fn hand_written_samples_flow_through_every_substrate() {
    for nl in [samples::c17(), samples::adder4(), samples::scan_counter3()] {
        let analysis = RareNetAnalysis::estimate(&nl, 0.4, 2048, 1);
        let _ = CompatibilityGraph::build(&nl, &analysis, 1);
        let mut oracle = CircuitOracle::new(&nl);
        for &out in nl.primary_outputs() {
            // Each output should be justifiable to at least one value.
            assert!(
                oracle.is_compatible(&[(out, true)]) || oracle.is_compatible(&[(out, false)]),
                "{}: output {} unjustifiable both ways",
                nl.name(),
                nl.net_name(out)
            );
        }
    }
}
