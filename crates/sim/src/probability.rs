//! Monte-Carlo signal-probability estimation.

use netlist::{NetId, Netlist};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Simulator, TestPattern};

/// Estimated probability of each net being logic 1 under uniformly random
/// scan-input patterns.
///
/// This is the quantity the rareness threshold of the paper is defined over:
/// a net is *rare* when `min(p, 1 - p)` falls below the threshold.
#[derive(Debug, Clone)]
pub struct SignalProbabilities {
    prob_one: Vec<f64>,
    num_patterns: usize,
}

impl SignalProbabilities {
    /// Estimates signal probabilities by simulating `num_patterns` uniformly
    /// random patterns (rounded up to a multiple of 64) generated from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_patterns` is zero.
    #[must_use]
    pub fn estimate(netlist: &Netlist, num_patterns: usize, seed: u64) -> Self {
        assert!(num_patterns > 0, "need at least one pattern");
        let sim = Simulator::new(netlist);
        let mut rng = StdRng::seed_from_u64(seed);
        let width = netlist.num_scan_inputs();
        let chunks = num_patterns.div_ceil(64);
        let mut ones = vec![0u64; netlist.num_gates()];
        let total = chunks * 64;
        for _ in 0..chunks {
            let batch = TestPattern::random_batch(width, 64, &mut rng);
            let packed = sim.run_batch(&batch);
            for (id, _) in netlist.iter() {
                ones[id.index()] += u64::from(packed.count_ones(id));
            }
        }
        let prob_one = ones
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect();
        Self {
            prob_one,
            num_patterns: total,
        }
    }

    /// Computes exact probabilities for every net by exhaustive enumeration of
    /// all input combinations. Only feasible for small circuits (≤ 20 scan
    /// inputs); used as a reference in tests.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 24 scan inputs.
    #[must_use]
    pub fn exhaustive(netlist: &Netlist) -> Self {
        let width = netlist.num_scan_inputs();
        assert!(width <= 24, "exhaustive enumeration limited to 24 inputs");
        let sim = Simulator::new(netlist);
        let total = 1usize << width;
        let mut ones = vec![0u64; netlist.num_gates()];
        let mut batch = Vec::with_capacity(64);
        let mut processed = 0usize;
        while processed < total {
            batch.clear();
            for code in processed..(processed + 64).min(total) {
                let bits: Vec<bool> = (0..width).map(|i| (code >> i) & 1 == 1).collect();
                batch.push(TestPattern::new(bits));
            }
            let packed = sim.run_batch(&batch);
            for (id, _) in netlist.iter() {
                ones[id.index()] += u64::from(packed.count_ones(id));
            }
            processed += batch.len();
        }
        Self {
            prob_one: ones.iter().map(|&c| c as f64 / total as f64).collect(),
            num_patterns: total,
        }
    }

    /// Probability that `net` evaluates to logic 1.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the analysed netlist.
    #[must_use]
    pub fn prob_one(&self, net: NetId) -> f64 {
        self.prob_one[net.index()]
    }

    /// Probability that `net` evaluates to logic 0.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the analysed netlist.
    #[must_use]
    pub fn prob_zero(&self, net: NetId) -> f64 {
        1.0 - self.prob_one[net.index()]
    }

    /// The probability of the *rarer* of the two logic values of `net`,
    /// together with that value. This is what rareness thresholds compare
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the analysed netlist.
    #[must_use]
    pub fn rare_value(&self, net: NetId) -> (bool, f64) {
        let p1 = self.prob_one[net.index()];
        if p1 <= 0.5 {
            (true, p1)
        } else {
            (false, 1.0 - p1)
        }
    }

    /// Number of patterns the estimate is based on.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// All `prob(net = 1)` values indexed by [`NetId`].
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.prob_one
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn rare_chain_probabilities_match_theory() {
        let nl = samples::rare_chain(4);
        let exact = SignalProbabilities::exhaustive(&nl);
        let root = nl.net_by_name("and3").unwrap();
        assert!((exact.prob_one(root) - 1.0 / 16.0).abs() < 1e-12);
        let (value, p) = exact.rare_value(root);
        assert!(value);
        assert!((p - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn estimate_converges_to_exact() {
        let nl = samples::majority5();
        let exact = SignalProbabilities::exhaustive(&nl);
        let est = SignalProbabilities::estimate(&nl, 20_000, 7);
        for (id, _) in nl.iter() {
            assert!(
                (exact.prob_one(id) - est.prob_one(id)).abs() < 0.03,
                "net {id}: exact {} vs est {}",
                exact.prob_one(id),
                est.prob_one(id)
            );
        }
    }

    #[test]
    fn inputs_are_unbiased() {
        let nl = samples::c17();
        let est = SignalProbabilities::estimate(&nl, 4096, 3);
        for &pi in nl.primary_inputs() {
            assert!((est.prob_one(pi) - 0.5).abs() < 0.05);
        }
        assert_eq!(est.num_patterns(), 4096);
    }

    #[test]
    fn prob_zero_is_complement() {
        let nl = samples::c17();
        let est = SignalProbabilities::estimate(&nl, 512, 3);
        for (id, _) in nl.iter() {
            assert!((est.prob_one(id) + est.prob_zero(id) - 1.0).abs() < 1e-12);
        }
    }
}
