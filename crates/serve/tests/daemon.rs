//! End-to-end daemon test: an in-process [`Daemon`], two concurrent
//! clients with overlapping grids, one shared store and worker pool.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use campaign::{PlanSpec, RunPolicy, SilentProgress};
use deterrent_core::ArtifactStore;
use exec::Exec;
use serve::{Daemon, DaemonConfig};

/// A tiny single-netlist grid over the given seeds (one θ, few episodes,
/// so the whole test stays fast on one core).
fn tiny_spec(seeds: &[u64]) -> PlanSpec {
    PlanSpec {
        netlists: vec!["c2670".into()],
        scale: 40,
        thetas: vec![0.2],
        seeds: seeds.to_vec(),
        episodes: 4,
        cell_threads: 1,
        netlist_seed: 3,
    }
}

/// The grid run the classic way: scoped executor, fresh memory-only
/// store, default policy — the reference the daemon must match exactly.
fn solo_run(spec: &PlanSpec) -> (String, u64) {
    let store = ArtifactStore::new();
    let exec = Exec::new(1);
    let plan = spec.to_plan().expect("valid spec");
    let report = plan.run_with_policy(&store, &exec, &SilentProgress, &RunPolicy::default());
    (report.to_tsv(), store.counters().total_misses())
}

#[test]
fn concurrent_clients_get_solo_identical_reports_from_one_shared_store() {
    let socket =
        std::env::temp_dir().join(format!("deterrent-serve-it-{}.sock", std::process::id()));
    let daemon = Arc::new(Daemon::new(
        DaemonConfig {
            socket: socket.clone(),
            threads: 2,
            queue_capacity: 8,
            drain_timeout: Duration::from_secs(10),
            quiet: true,
        },
        ArtifactStore::new(),
        Vec::new(),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let daemon = Arc::clone(&daemon);
        let stop = Arc::clone(&stop);
        thread::spawn(move || daemon.run(&stop))
    };
    for _ in 0..500 {
        if socket.exists() {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    serve::ping(&socket).expect("daemon answers ping");

    // Two clients whose grids overlap on seed 2; client A subscribes to
    // the event stream, client B does not.
    let spec_a = tiny_spec(&[1, 2]);
    let spec_b = tiny_spec(&[2, 3]);
    let client_a = {
        let socket = socket.clone();
        let spec = spec_a.clone();
        thread::spawn(move || serve::submit(&socket, &spec, 0, true, |_| {}))
    };
    let client_b = {
        let socket = socket.clone();
        let spec = spec_b.clone();
        thread::spawn(move || serve::submit(&socket, &spec, 0, false, |_| {}))
    };
    let outcome_a = client_a.join().unwrap().expect("client A");
    let outcome_b = client_b.join().unwrap().expect("client B");

    // Each client's TSV is bit-identical to a solo one-shot run.
    let (solo_a, _) = solo_run(&spec_a);
    let (solo_b, _) = solo_run(&spec_b);
    assert_eq!(outcome_a.tsv, solo_a);
    assert_eq!(outcome_b.tsv, solo_b);
    assert_eq!(outcome_a.outcomes, "ok=2 retried=0 timeout=0 failed=0");
    assert_eq!(outcome_b.outcomes, "ok=2 retried=0 timeout=0 failed=0");

    // The jobs shared one store, so the overlapping cell was computed
    // once: total misses equal one run over the *union* grid (3 distinct
    // cells), not the 4 submitted cells.
    let (_, union_misses) = solo_run(&tiny_spec(&[1, 2, 3]));
    assert_eq!(daemon.store().counters().total_misses(), union_misses);

    // Both jobs ran on the same persistent pool.
    assert_eq!(daemon.jobs_done(), 2);
    assert!(daemon.pool().stats().calls >= 2);

    stop.store(true, Ordering::SeqCst);
    server.join().unwrap().expect("clean daemon exit");
    assert!(!socket.exists(), "socket file removed on shutdown");
}
