//! The wire-format campaign specification shared by every front end.
//!
//! [`PlanSpec`] is the *one* description of "which sweep to run" — the
//! `deterrent-campaign` CLI flags, the serve daemon's submit frames, and
//! tests all build a [`crate::CampaignPlan`] through it, so a job
//! submitted over a socket reconstructs byte-for-byte the same base
//! configuration as the one-shot CLI and the resulting TSV reports `cmp`
//! clean. The JSON codec is hand-rolled on [`telemetry::Value`] (no serde
//! in this workspace).

use deterrent_core::DeterrentConfig;
use telemetry::{obj, Value};

use crate::{profile_by_name, CampaignPlan, NetlistSpec};

/// The base configuration every campaign front end derives from a scale
/// divisor and an episode count: paper-sized presets at `scale <= 1`,
/// otherwise the fast preset widened back toward paper fidelity
/// (4096 probability patterns, 16 eval rollouts, k=8 pattern sets).
///
/// Centralizing this here is what makes daemon-run reports byte-identical
/// to CLI runs: both sides call this one function.
#[must_use]
pub fn base_config_for(scale: usize, episodes: usize) -> DeterrentConfig {
    if scale <= 1 {
        DeterrentConfig::paper_preset()
    } else {
        DeterrentConfig::fast_preset()
            .with_probability_patterns(4096)
            .with_eval_rollouts(16)
            .with_k_patterns(8)
    }
    .with_episodes(episodes)
}

/// A campaign grid as plain data: benchmark names × θ × seeds plus the
/// scalar knobs that shape the base config. The default value is the
/// `deterrent-campaign` CLI's default 8-cell sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// Benchmark names accepted by [`profile_by_name`].
    pub netlists: Vec<String>,
    /// Divisor applied to the paper-sized profiles.
    pub scale: usize,
    /// Rareness thresholds θ.
    pub thetas: Vec<f64>,
    /// Master pipeline seeds.
    pub seeds: Vec<u64>,
    /// PPO episodes per cell.
    pub episodes: usize,
    /// Session workers inside each cell (0 is clamped to 1 at run time).
    pub cell_threads: usize,
    /// Seed of the deterministic netlist generator.
    pub netlist_seed: u64,
}

impl Default for PlanSpec {
    fn default() -> Self {
        Self {
            netlists: vec!["c2670".into(), "c5315".into()],
            scale: 20,
            thetas: vec![0.15, 0.2],
            seeds: vec![1, 2],
            episodes: 40,
            cell_threads: 1,
            netlist_seed: 3,
        }
    }
}

impl PlanSpec {
    /// Number of cells the spec expands to.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.netlists.len() * self.thetas.len() * self.seeds.len()
    }

    /// Expands the spec into a runnable [`CampaignPlan`] over
    /// [`base_config_for`].
    ///
    /// # Errors
    ///
    /// Rejects unknown benchmark names, empty grid axes, and non-finite θ
    /// values with a human-readable message (the daemon forwards it to the
    /// submitting client verbatim).
    pub fn to_plan(&self) -> Result<CampaignPlan, String> {
        if self.netlists.is_empty() || self.thetas.is_empty() || self.seeds.is_empty() {
            return Err("empty plan axis (netlists, thetas, and seeds must be non-empty)".into());
        }
        if let Some(theta) = self.thetas.iter().find(|t| !t.is_finite()) {
            return Err(format!("non-finite theta {theta}"));
        }
        let netlists = self
            .netlists
            .iter()
            .map(|name| {
                profile_by_name(name)
                    .map(|profile| NetlistSpec::new(profile, self.scale, self.netlist_seed))
                    .ok_or_else(|| format!("unknown netlist name {name:?}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(CampaignPlan {
            netlists,
            thetas: self.thetas.clone(),
            seeds: self.seeds.clone(),
            base: base_config_for(self.scale, self.episodes),
            cell_threads: self.cell_threads,
        })
    }

    /// Encodes the spec as a JSON object (the `plan` field of a submit
    /// frame). θ values keep their shortest round-tripping decimal form,
    /// so decoding yields bit-identical floats.
    #[must_use]
    pub fn to_value(&self) -> Value {
        obj([
            (
                "netlists",
                Value::Arr(self.netlists.iter().map(Value::str).collect()),
            ),
            ("scale", Value::u64(self.scale as u64)),
            (
                "thetas",
                Value::Arr(self.thetas.iter().map(|&t| Value::f64(t)).collect()),
            ),
            (
                "seeds",
                Value::Arr(self.seeds.iter().map(|&s| Value::u64(s)).collect()),
            ),
            ("episodes", Value::u64(self.episodes as u64)),
            ("cell_threads", Value::u64(self.cell_threads as u64)),
            ("netlist_seed", Value::u64(self.netlist_seed)),
        ])
    }

    /// Decodes a spec from the JSON object produced by
    /// [`PlanSpec::to_value`].
    ///
    /// # Errors
    ///
    /// Reports the first missing or mistyped field by name.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let object = value.as_obj().ok_or("plan must be a JSON object")?;
        let field = |name: &str| -> Result<&Value, String> {
            object.get(name).ok_or_else(|| format!("missing {name}"))
        };
        let as_usize = |name: &str| -> Result<usize, String> {
            field(name)?
                .as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("{name} must be an unsigned integer"))
        };
        let netlists = match field("netlists")? {
            Value::Arr(items) => items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "netlists entries must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("netlists must be an array".into()),
        };
        let thetas = match field("thetas")? {
            Value::Arr(items) => items
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|t| t.is_finite())
                        .ok_or_else(|| "thetas entries must be finite numbers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("thetas must be an array".into()),
        };
        let seeds = match field("seeds")? {
            Value::Arr(items) => items
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| "seeds entries must be unsigned integers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("seeds must be an array".into()),
        };
        Ok(Self {
            netlists,
            scale: as_usize("scale")?,
            thetas,
            seeds,
            episodes: as_usize("episodes")?,
            cell_threads: as_usize("cell_threads")?,
            netlist_seed: field("netlist_seed")?
                .as_u64()
                .ok_or("netlist_seed must be an unsigned integer")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_cli_default_grid() {
        let spec = PlanSpec::default();
        assert_eq!(spec.cells(), 8);
        let plan = spec.to_plan().unwrap();
        assert_eq!(plan.len(), 8);
        assert_eq!(plan.netlists[0].label, "c2670");
        assert_eq!(plan.netlists[0].scale, 20);
    }

    #[test]
    fn json_round_trip_preserves_thetas_bitwise() {
        let spec = PlanSpec {
            thetas: vec![0.15, 0.2, 0.125, 1.0 / 3.0],
            seeds: vec![1, 2, u64::MAX],
            ..PlanSpec::default()
        };
        let encoded = spec.to_value().to_json();
        let decoded = PlanSpec::from_value(&telemetry::json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, spec);
        for (a, b) in spec.thetas.iter().zip(&decoded.thetas) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejects_unknown_netlists_and_empty_axes() {
        let mut spec = PlanSpec {
            netlists: vec!["nonesuch".into()],
            ..PlanSpec::default()
        };
        assert!(spec.to_plan().unwrap_err().contains("nonesuch"));
        spec.netlists = vec!["c2670".into()];
        spec.thetas.clear();
        assert!(spec.to_plan().unwrap_err().contains("empty plan axis"));
    }

    #[test]
    fn from_value_names_the_bad_field() {
        let mut value = PlanSpec::default().to_value();
        if let Value::Obj(map) = &mut value {
            map.remove("seeds");
        }
        assert_eq!(PlanSpec::from_value(&value).unwrap_err(), "missing seeds");
    }
}
