//! Client side of the daemon protocol: connect, submit, stream, collect.
//!
//! [`submit`] drives one job end to end. When streaming is on, the daemon
//! relays every trace event of the job as an `event` frame; this module
//! re-renders each one through [`campaign::render_trace_line`] — the same
//! function the one-shot CLI's stderr sink uses — so the progress lines a
//! client prints are **byte-identical** to what `deterrent-campaign`
//! would have printed for the same grid.

use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

use campaign::{render_trace_line, PlanSpec};
use telemetry::TraceEvent;

use crate::protocol::{
    frame_str, frame_type, frame_u64, ping_frame, read_frame, submit_frame, write_frame,
    SOCKET_ENV_VAR,
};

/// A completed job as reported by the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// The daemon-assigned job sequence number.
    pub job: u64,
    /// The full campaign report TSV (bit-identical to the one-shot CLI's
    /// `--out` file for the same grid).
    pub tsv: String,
    /// The outcome summary line, e.g. `8 ok`.
    pub outcomes: String,
}

/// Resolves the daemon socket path: an explicit `--socket` value wins,
/// then the `DETERRENT_SOCKET` environment variable.
#[must_use]
pub fn resolve_socket(flag: Option<PathBuf>) -> Option<PathBuf> {
    flag.or_else(|| {
        std::env::var(SOCKET_ENV_VAR)
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    })
}

/// Submits `spec` to the daemon at `socket` and blocks until the job
/// completes. Each streamed progress line (already rendered, no trailing
/// newline) is handed to `progress`; pass `stream = false` to skip the
/// event stream entirely.
///
/// # Errors
///
/// Transport errors, a daemon `error` frame (reported as
/// [`io::ErrorKind::Other`] with the daemon's message), or the daemon
/// hanging up before the report.
pub fn submit(
    socket: &Path,
    spec: &PlanSpec,
    priority: u64,
    stream: bool,
    mut progress: impl FnMut(&str),
) -> io::Result<JobOutcome> {
    let mut conn = UnixStream::connect(socket)?;
    write_frame(&mut conn, &submit_frame(spec, priority, stream))?;
    let mut job = None;
    loop {
        let Some(frame) = read_frame(&mut conn)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before sending a report",
            ));
        };
        match frame_type(&frame) {
            Some("ack") => job = frame_u64(&frame, "job"),
            Some("event") => {
                // Render exactly like the CLI's stderr trace sink; events
                // that don't map to a progress line are dropped the same
                // way there too.
                if let Some(line) = frame_str(&frame, "line") {
                    if let Ok(event) = TraceEvent::parse_line(line) {
                        if let Some(rendered) = render_trace_line(&event) {
                            progress(&rendered);
                        }
                    }
                }
            }
            Some("report") => {
                return Ok(JobOutcome {
                    job: frame_u64(&frame, "job").or(job).unwrap_or(0),
                    tsv: frame_str(&frame, "tsv").unwrap_or_default().to_string(),
                    outcomes: frame_str(&frame, "outcomes")
                        .unwrap_or_default()
                        .to_string(),
                });
            }
            Some("error") => {
                let message = frame_str(&frame, "message")
                    .unwrap_or("daemon reported an error")
                    .to_string();
                return Err(io::Error::other(message));
            }
            // Unknown frame types are skipped for forward compatibility.
            _ => {}
        }
    }
}

/// Probes for a live daemon at `socket` with a `ping` frame.
///
/// # Errors
///
/// Connection failure, transport errors, or a reply that is not `pong`.
pub fn ping(socket: &Path) -> io::Result<()> {
    let mut conn = UnixStream::connect(socket)?;
    write_frame(&mut conn, &ping_frame())?;
    match read_frame(&mut conn)? {
        Some(frame) if frame_type(&frame) == Some("pong") => Ok(()),
        Some(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected reply to ping",
        )),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without a pong",
        )),
    }
}
