//! Criterion micro-benchmarks of the substrates: bit-parallel simulation,
//! SAT justification, compatibility-graph construction, and PPO updates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deterrent_core::CompatibilityGraph;
use netlist::synth::BenchmarkProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{PpoConfig, PpoTrainer, Transition};
use sat::CircuitOracle;
use sim::rare::RareNetAnalysis;
use sim::{Simulator, TestPattern};

fn bench_simulation(c: &mut Criterion) {
    let nl = BenchmarkProfile::c5315().scaled(8).generate(1);
    let sim = Simulator::new(&nl);
    let mut rng = StdRng::seed_from_u64(1);
    let patterns = TestPattern::random_batch(nl.num_scan_inputs(), 64, &mut rng);
    c.bench_function("sim/packed_batch_64", |b| {
        b.iter(|| sim.run_batch(&patterns))
    });
    c.bench_function("sim/scalar_single", |b| b.iter(|| sim.run(&patterns[0])));
}

fn bench_probability(c: &mut Criterion) {
    let nl = BenchmarkProfile::c2670().scaled(10).generate(1);
    c.bench_function("sim/rare_net_analysis_4096", |b| {
        b.iter(|| RareNetAnalysis::estimate(&nl, 0.1, 4096, 7))
    });
}

fn bench_sat(c: &mut Criterion) {
    let nl = BenchmarkProfile::c2670().scaled(10).generate(1);
    let analysis = RareNetAnalysis::estimate(&nl, 0.2, 4096, 7);
    let targets = analysis.targets();
    c.bench_function("sat/encode_oracle", |b| b.iter(|| CircuitOracle::new(&nl)));
    if targets.len() >= 2 {
        c.bench_function("sat/pairwise_justify", |b| {
            b.iter_batched(
                || CircuitOracle::new(&nl),
                |mut oracle| oracle.justify(&targets[..2]),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_compat_graph(c: &mut Criterion) {
    let nl = BenchmarkProfile::c2670().scaled(15).generate(1);
    let analysis = RareNetAnalysis::estimate(&nl, 0.2, 4096, 7);
    c.bench_function("deterrent/compat_graph_serial", |b| {
        b.iter(|| CompatibilityGraph::build(&nl, &analysis, 1))
    });
    c.bench_function("deterrent/compat_graph_4_threads", |b| {
        b.iter(|| CompatibilityGraph::build(&nl, &analysis, 4))
    });
}

fn bench_ppo(c: &mut Criterion) {
    let config = PpoConfig {
        batch_size: 128,
        hidden_sizes: vec![64, 64],
        ..PpoConfig::boosted_exploration()
    };
    c.bench_function("rl/ppo_update_128x32", |b| {
        b.iter_batched(
            || {
                let mut trainer = PpoTrainer::new(32, 32, &config, 3);
                let mut rng = StdRng::seed_from_u64(5);
                for _ in 0..128 {
                    let state = TestPattern::random(32, &mut rng)
                        .iter()
                        .map(f64::from)
                        .collect::<Vec<_>>();
                    let (action, log_prob, value) = trainer.select_action(&state, &[]);
                    trainer.record(Transition {
                        state,
                        mask: vec![],
                        action,
                        reward: 1.0,
                        done: true,
                        log_prob,
                        value,
                    });
                }
                trainer
            },
            |mut trainer| trainer.update(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(10);
    targets = bench_simulation, bench_probability, bench_sat, bench_compat_graph, bench_ppo
}
criterion_main!(substrates);
