//! Progress observation for staged sessions.
//!
//! A [`RunObserver`] registered on a [`crate::DeterrentSession`] is told when
//! each stage starts and finishes (with per-stage [`StageMetrics`], including
//! whether the artifact came from the cache) and, during training, after
//! every frozen-policy rollout round ([`rl::RoundProgress`]). Observation is
//! strictly passive: results are bit-identical with or without observers.

pub use rl::RoundProgress;

/// The six stages of a [`crate::DeterrentSession`], in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Monte-Carlo signal-probability estimation with single-pass
    /// compacting witness harvest — the θ-independent half of rare-net
    /// analysis, shared by every θ a sweep visits.
    Estimate,
    /// Rare-net thresholding at θ over the shared estimation artifact.
    Analyze,
    /// Pairwise-compatibility graph construction.
    BuildGraph,
    /// PPO training over the compatible-set MDP.
    Train,
    /// Harvest of greedy evaluation rollouts and `k`-largest set selection.
    Select,
    /// SAT/witness test-pattern generation.
    Generate,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Estimate,
        Stage::Analyze,
        Stage::BuildGraph,
        Stage::Train,
        Stage::Select,
        Stage::Generate,
    ];

    /// Human-readable stage name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Estimate => "estimate",
            Stage::Analyze => "analyze",
            Stage::BuildGraph => "build_graph",
            Stage::Train => "train",
            Stage::Select => "select",
            Stage::Generate => "generate",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What one stage execution cost and produced, reported to
/// [`RunObserver::stage_finished`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageMetrics {
    /// Which stage finished.
    pub stage: Stage,
    /// Wall-clock seconds the stage took (near zero on a cache hit).
    pub wall_seconds: f64,
    /// `true` when the stage's artifact was served from the
    /// [`crate::ArtifactStore`] instead of being recomputed.
    pub cache_hit: bool,
    /// Stage-specific output cardinality: retained candidate nets
    /// (estimate), rare nets (analyze), resolved pairs (build_graph),
    /// episodes (train), selected sets (select), or generated patterns
    /// (generate).
    pub items: u64,
}

/// Observer of a session's stage and training progress.
///
/// All methods have empty default bodies, so implementors override only what
/// they care about. Observers run on the session's thread, between stages —
/// keep them cheap.
pub trait RunObserver {
    /// A stage is about to run (or be served from the cache).
    fn stage_started(&mut self, stage: Stage) {
        let _ = stage;
    }

    /// A stage finished; `metrics` says how and at what cost.
    fn stage_finished(&mut self, metrics: &StageMetrics) {
        let _ = metrics;
    }

    /// A frozen-policy training round finished (only emitted from the
    /// [`Stage::Train`] stage, and only when it actually trains — a cached
    /// policy artifact emits no rounds).
    fn training_round(&mut self, progress: &RoundProgress) {
        let _ = progress;
    }
}

/// Lets callers keep a handle to an observer they registered: register
/// `Rc::new(RefCell::new(observer))` (boxed) and inspect the `Rc` afterwards.
impl<O: RunObserver> RunObserver for std::rc::Rc<std::cell::RefCell<O>> {
    fn stage_started(&mut self, stage: Stage) {
        self.borrow_mut().stage_started(stage);
    }

    fn stage_finished(&mut self, metrics: &StageMetrics) {
        self.borrow_mut().stage_finished(metrics);
    }

    fn training_round(&mut self, progress: &RoundProgress) {
        self.borrow_mut().training_round(progress);
    }
}

/// A [`RunObserver`] that accumulates everything it sees — handy in tests
/// and for post-run inspection.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    /// Stages that started, in order.
    pub started: Vec<Stage>,
    /// Per-stage metrics, in completion order.
    pub finished: Vec<StageMetrics>,
    /// Every training-round snapshot.
    pub rounds: Vec<RoundProgress>,
}

impl RunObserver for RecordingObserver {
    fn stage_started(&mut self, stage: Stage) {
        self.started.push(stage);
    }

    fn stage_finished(&mut self, metrics: &StageMetrics) {
        self.finished.push(*metrics);
    }

    fn training_round(&mut self, progress: &RoundProgress) {
        self.rounds.push(*progress);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::ALL.len(), 6);
        assert_eq!(Stage::Estimate.to_string(), "estimate");
        assert_eq!(Stage::Analyze.to_string(), "analyze");
        assert_eq!(Stage::Generate.name(), "generate");
    }

    #[test]
    fn recording_observer_accumulates() {
        let mut rec = RecordingObserver::default();
        rec.stage_started(Stage::Analyze);
        rec.stage_finished(&StageMetrics {
            stage: Stage::Analyze,
            wall_seconds: 0.5,
            cache_hit: false,
            items: 3,
        });
        assert_eq!(rec.started, vec![Stage::Analyze]);
        assert_eq!(rec.finished.len(), 1);
        assert!(!rec.finished[0].cache_hit);
    }
}
