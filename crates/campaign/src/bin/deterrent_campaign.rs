//! `deterrent-campaign` — run a netlists × θ × seeds sweep from the CLI.
//!
//! The deterministic report (TSV by default, `--format markdown` for a
//! table) goes to **stdout** — byte-identical at any thread count and
//! across warm cache restarts, so CI can `cmp` two runs. Progress lines
//! and the per-stage `[store]` cache counters go to **stderr**.
//!
//! Flags:
//!
//! | flag | meaning | default |
//! |---|---|---|
//! | `--netlists A,B` | benchmark names (see `campaign::profile_by_name`) | `c2670,c5315` |
//! | `--scale N` | divisor applied to the paper-sized profiles | `20` |
//! | `--thetas A,B` | rareness thresholds θ | `0.15,0.2` |
//! | `--seeds A,B` | master pipeline seeds | `1,2` |
//! | `--episodes N` | PPO episodes per cell | `40` |
//! | `--threads N` | campaign workers (0 = `DETERRENT_THREADS` / cores) | `0` |
//! | `--cell-threads N` | session workers inside each cell | `1` |
//! | `--cache-dir DIR` | persistent cache (else `DETERRENT_CACHE_DIR`) | memory-only |
//! | `--cache-max-bytes N[k\|m\|g]` | cache budget (else `DETERRENT_CACHE_MAX_BYTES`) | unbounded |
//! | `--per-stage-max N[k\|m\|g]` | per-stage-directory budget | unbounded |
//! | `--slim-policy` | slim train-stage artifacts (~3× smaller) | full |
//! | `--format tsv\|markdown` | report format on stdout | `tsv` |
//! | `--quiet` | suppress per-cell progress on stderr | off |
//! | `--expect-warm` | assert every stage was served from the cache | off |
//! | `--checkpoint FILE` | record completed cells; resume skips them | off |
//! | `--max-retries N` | retries per cell after a failed attempt | `2` |
//! | `--cell-deadline-secs F` | per-attempt wall-clock budget | unlimited |
//! | `--fail-fast` | cancel unstarted cells after the first terminal failure | off |
//! | `--max-failures N` | cancel after N terminal failures | never |
//! | `--fault-plan SPEC` | inject faults (else `DETERRENT_FAULT_PLAN`) | none |
//! | `--trace-out FILE` | machine-readable JSONL trace (else `DETERRENT_TRACE_OUT`) | off |
//! | `--metrics-out FILE` | Prometheus-text metric dump after the run | off |
//!
//! Telemetry is strictly out-of-band: arming `--trace-out` /
//! `--metrics-out` changes nothing on stdout, so a traced report still
//! `cmp`s clean against an untraced one.
//!
//! The exit code is `0` only when every cell recovered (outcome `ok` or
//! `retried:N`); any `timeout`/`failed` row exits `1`, flag errors exit `2`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use campaign::{
    profile_by_name, CampaignPlan, NetlistSpec, RunPolicy, SilentProgress, StderrTraceSink,
};
use deterrent_core::{parse_bytes, ArtifactStore, FaultPlan};
use exec::Exec;
use telemetry::{JsonlSink, Telemetry, TraceSink, TRACE_OUT_ENV_VAR};

struct Args {
    netlists: Vec<String>,
    scale: usize,
    thetas: Vec<f64>,
    seeds: Vec<u64>,
    episodes: usize,
    threads: usize,
    cell_threads: usize,
    cache_dir: Option<String>,
    cache_max_bytes: Option<u64>,
    per_stage_max: Option<u64>,
    slim_policy: bool,
    markdown: bool,
    quiet: bool,
    expect_warm: bool,
    checkpoint: Option<PathBuf>,
    max_retries: u32,
    cell_deadline: Option<Duration>,
    fail_fast: bool,
    max_failures: Option<usize>,
    fault_plan: Option<FaultPlan>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            netlists: vec!["c2670".into(), "c5315".into()],
            scale: 20,
            thetas: vec![0.15, 0.2],
            seeds: vec![1, 2],
            episodes: 40,
            threads: 0,
            cell_threads: 1,
            cache_dir: None,
            cache_max_bytes: None,
            per_stage_max: None,
            slim_policy: false,
            markdown: false,
            quiet: false,
            expect_warm: false,
            checkpoint: None,
            max_retries: RunPolicy::default().max_retries,
            cell_deadline: None,
            fail_fast: false,
            max_failures: None,
            fault_plan: None,
            trace_out: None,
            metrics_out: None,
        }
    }
}

fn parse_list<T, F: Fn(&str) -> Option<T>>(raw: &str, parse: F) -> Option<Vec<T>> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect::<Option<Vec<T>>>()
        .filter(|v| !v.is_empty())
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--netlists" => {
                args.netlists = parse_list(&value(&mut i)?, |s| {
                    profile_by_name(s).map(|_| s.to_string())
                })
                .ok_or("unknown netlist name (see `campaign::profile_by_name`)")?;
            }
            "--scale" => args.scale = value(&mut i)?.parse().map_err(|_| "bad --scale")?,
            "--thetas" => {
                args.thetas = parse_list(&value(&mut i)?, |s| s.parse().ok())
                    .ok_or("bad --thetas (comma-separated floats)")?;
            }
            "--seeds" => {
                args.seeds = parse_list(&value(&mut i)?, |s| s.parse().ok())
                    .ok_or("bad --seeds (comma-separated integers)")?;
            }
            "--episodes" => args.episodes = value(&mut i)?.parse().map_err(|_| "bad --episodes")?,
            "--threads" => args.threads = value(&mut i)?.parse().map_err(|_| "bad --threads")?,
            "--cell-threads" => {
                args.cell_threads = value(&mut i)?.parse().map_err(|_| "bad --cell-threads")?;
            }
            "--cache-dir" => args.cache_dir = Some(value(&mut i)?),
            "--cache-max-bytes" => {
                args.cache_max_bytes =
                    Some(parse_bytes(&value(&mut i)?).ok_or("bad --cache-max-bytes")?);
            }
            "--per-stage-max" => {
                args.per_stage_max =
                    Some(parse_bytes(&value(&mut i)?).ok_or("bad --per-stage-max")?);
            }
            "--slim-policy" => args.slim_policy = true,
            "--format" => {
                args.markdown = match value(&mut i)?.as_str() {
                    "tsv" => false,
                    "markdown" | "md" => true,
                    _ => return Err("bad --format (tsv|markdown)".into()),
                };
            }
            "--quiet" => args.quiet = true,
            "--expect-warm" => args.expect_warm = true,
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value(&mut i)?)),
            "--max-retries" => {
                args.max_retries = value(&mut i)?.parse().map_err(|_| "bad --max-retries")?;
            }
            "--cell-deadline-secs" => {
                let secs: f64 = value(&mut i)?
                    .parse()
                    .map_err(|_| "bad --cell-deadline-secs")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("bad --cell-deadline-secs (finite, non-negative)".into());
                }
                args.cell_deadline = Some(Duration::from_secs_f64(secs));
            }
            "--fail-fast" => args.fail_fast = true,
            "--max-failures" => {
                args.max_failures = Some(value(&mut i)?.parse().map_err(|_| "bad --max-failures")?);
            }
            "--fault-plan" => args.fault_plan = Some(FaultPlan::parse(&value(&mut i)?)?),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value(&mut i)?)),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value(&mut i)?)),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if args.fault_plan.is_none() {
        args.fault_plan = FaultPlan::from_env()?;
    }
    if args.trace_out.is_none() {
        if let Ok(path) = std::env::var(TRACE_OUT_ENV_VAR) {
            if !path.trim().is_empty() {
                args.trace_out = Some(PathBuf::from(path));
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("deterrent-campaign: {message}");
            return ExitCode::from(2);
        }
    };

    let mut base = campaign::base_config_for(args.scale, args.episodes);
    if let Some(dir) = &args.cache_dir {
        base = base.with_cache_dir(dir);
    }
    if let Some(max_bytes) = args.cache_max_bytes {
        base = base.with_cache_max_bytes(max_bytes);
    }
    base.cache_policy.per_stage_max = args.per_stage_max;
    base.cache_policy.slim_policy = args.slim_policy;

    // Flag → env → memory-only, exactly like sessions resolve it. The
    // fault plan (if any) is shared between the disk tier and the cell
    // failure domains, so one seeded schedule drives both.
    let store = match base.resolved_cache_dir() {
        Some(dir) => ArtifactStore::with_disk_policy_faults(
            dir,
            base.resolved_cache_policy(),
            args.fault_plan.clone(),
        ),
        None => ArtifactStore::new(),
    };

    let plan = CampaignPlan {
        netlists: args
            .netlists
            .iter()
            .map(|name| {
                let profile = profile_by_name(name).expect("validated at parse time");
                NetlistSpec::new(profile, args.scale, 3)
            })
            .collect(),
        thetas: args.thetas.clone(),
        seeds: args.seeds.clone(),
        base,
        cell_threads: args.cell_threads,
    };
    eprintln!(
        "[campaign] {} cells ({} netlists × {} θ × {} seeds)",
        plan.len(),
        plan.netlists.len(),
        plan.thetas.len(),
        plan.seeds.len()
    );

    // Progress, traces, and metrics all flow through one telemetry
    // pipeline: the stderr sink renders the classic progress lines, the
    // JSONL sink records the machine-readable trace. With neither armed
    // the handle is disabled and the run pays nothing.
    let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
    if !args.quiet {
        sinks.push(Box::new(StderrTraceSink::new()));
    }
    if let Some(path) = &args.trace_out {
        match JsonlSink::create(path) {
            Ok(sink) => sinks.push(Box::new(sink)),
            Err(e) => {
                eprintln!("deterrent-campaign: cannot create {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    let tele = if sinks.is_empty() && args.metrics_out.is_none() {
        Telemetry::disabled()
    } else {
        Telemetry::new(sinks)
    };

    let policy = RunPolicy {
        max_retries: args.max_retries,
        cell_deadline: args.cell_deadline,
        fail_fast: args.fail_fast,
        max_failures: args.max_failures,
        faults: args.fault_plan.clone(),
        checkpoint: args.checkpoint.clone(),
        telemetry: tele.clone(),
        span_parent: None,
    };
    let mut exec = Exec::new(args.threads);
    exec.set_telemetry(tele.clone(), None);
    let report = plan.run_with_policy(&store, &exec, &SilentProgress, &policy);
    eprintln!("[campaign] outcomes: {}", report.outcome_summary());
    if let Some(faults) = &args.fault_plan {
        eprintln!("[campaign] injected faults: {:?}", faults.counts());
    }

    print!(
        "{}",
        if args.markdown {
            report.to_markdown()
        } else {
            report.to_tsv()
        }
    );
    eprint!("{}", store.summary());

    if tele.is_enabled() {
        tele.flush_metrics();
        if let Some(path) = &args.metrics_out {
            let text = tele.metrics().map(|m| m.render_text()).unwrap_or_default();
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("deterrent-campaign: cannot write {}: {e}", path.display());
            }
        }
        tele.flush();
    }

    if args.expect_warm {
        let counters = store.counters();
        if store.disk_dir().is_none() {
            eprintln!("[campaign] --expect-warm requires --cache-dir (or DETERRENT_CACHE_DIR)");
            return ExitCode::FAILURE;
        }
        if counters.total_misses() != 0 || counters.total_disk_corrupt() != 0 {
            eprintln!("[campaign] --expect-warm failed: a stage recomputed or hit a corrupt file");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[campaign] --expect-warm satisfied: {} disk hit(s), 0 recomputations",
            counters.total_disk_hits()
        );
    }
    if !report.all_recovered() {
        eprintln!("[campaign] unrecovered cell failures (see the outcome column)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
