//! Quickstart: drive the staged DETERRENT session on a synthetic
//! c2670-profile netlist, watch per-stage progress through a `RunObserver`,
//! and inspect the generated test patterns.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::io::Write;

use deterrent_repro::deterrent_core::{
    DeterrentConfig, DeterrentSession, RoundProgress, RunObserver, Stage, StageMetrics,
};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::sim::Simulator;

/// Prints one line per stage plus live training progress. Partial lines are
/// flushed so progress is visible *while* a stage runs, not after it.
struct ProgressPrinter;

impl RunObserver for ProgressPrinter {
    fn stage_started(&mut self, stage: Stage) {
        print!("  [{stage}] ");
        let _ = std::io::stdout().flush();
    }

    fn stage_finished(&mut self, metrics: &StageMetrics) {
        println!(
            "{} items in {:.1} ms{}",
            metrics.items,
            metrics.wall_seconds * 1e3,
            if metrics.cache_hit { " (cached)" } else { "" }
        );
    }

    fn training_round(&mut self, progress: &RoundProgress) {
        if progress.episodes_done == progress.episodes_total {
            print!(
                "{}/{} episodes · ",
                progress.episodes_done, progress.episodes_total
            );
            let _ = std::io::stdout().flush();
        }
    }
}

fn main() {
    // 1. Build (or load) a gate-level netlist. Here we generate the synthetic
    //    c2670-profile benchmark scaled down for a fast demo; use
    //    `netlist::bench::parse` to load a real ISCAS .bench file instead.
    let netlist = BenchmarkProfile::c2670().scaled(15).generate(42);
    println!(
        "design {}: {} gates, {} scan inputs",
        netlist.name(),
        netlist.num_logic_gates(),
        netlist.num_scan_inputs()
    );

    // 2. Open a staged session and run the five stages explicitly: rare-net
    //    analysis, offline pairwise compatibility, PPO training with action
    //    masking, set selection, SAT pattern generation. Each stage returns a
    //    cache-keyed artifact you can reuse across configs.
    //    Pass `--cache-dir DIR` (or set DETERRENT_CACHE_DIR) to persist the
    //    artifacts on disk: a second invocation then skips every stage.
    let mut config = DeterrentConfig::fast_preset();
    if let Some(dir) = deterrent_repro::cache_dir_arg() {
        config = config.with_cache_dir(dir);
    }
    let mut session = DeterrentSession::new(&netlist, config);
    session.add_observer(Box::new(ProgressPrinter));
    println!("stages:");
    let rare = session.analyze();
    let graph = session.build_graph(&rare);
    let policy = session.train(&graph);
    let sets = session.select(&graph, &policy);
    let result = session.generate(&graph, &policy, &sets);
    println!(
        "rare nets: {}   largest compatible set: {}   patterns: {}",
        result.rare_nets.len(),
        result.metrics.max_compatible_set,
        result.test_length()
    );

    // 3. Rerunning any stage is free — artifacts come from the session store.
    let again = session.analyze();
    assert_eq!(again.key(), rare.key());
    println!(
        "store: {} artifacts, {} hits / {} misses",
        session.store().len(),
        session.store().counters().total_hits(),
        session.store().counters().total_misses()
    );

    // 4. Inspect the patterns: each one drives a whole set of rare nets to
    //    their rare values simultaneously.
    let sim = Simulator::new(&netlist);
    for (i, pattern) in result.patterns.iter().enumerate().take(5) {
        let values = sim.run(pattern);
        let excited = rare
            .analysis()
            .rare_nets()
            .iter()
            .filter(|r| values.value(r.net) == r.rare_value)
            .count();
        println!("pattern {i}: {pattern} excites {excited} rare nets");
    }
}
