//! Task-level fault containment: panic capture and cooperative cancellation.
//!
//! The pool's legacy combinators propagate a worker panic to the caller (with
//! the task index attached — see [`crate::Exec::par_ranges`]). The *isolated*
//! combinators ([`crate::Exec::par_map_isolated`],
//! [`crate::Exec::try_par_map`]) instead wrap every task body in
//! [`std::panic::catch_unwind`], so one exploding task becomes a
//! [`TaskError`] value carrying its index and downcast payload message while
//! every other task still runs to completion.
//!
//! Cancellation is cooperative: a [`CancelToken`] is a shared flag that
//! workers consult at chunk and task boundaries. Tasks that have already
//! started run to completion; tasks not yet started report
//! [`TaskFailure::Cancelled`]. Nothing is interrupted mid-flight, so partial
//! results never exist and determinism of *completed* work is preserved.

use std::any::Any;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cooperative cancellation flag.
///
/// Cloning yields a handle to the *same* flag. Once [`CancelToken::cancel`]
/// is called every holder observes it; [`CancelToken::reset`] re-arms the
/// token for reuse (e.g. between campaign runs sharing one executor).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Clears the flag so the token can gate a new run.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }
}

/// Why an isolated task produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFailure {
    /// The task body panicked; the string is the downcast panic payload.
    Panicked(String),
    /// The task was skipped because its [`CancelToken`] fired first.
    Cancelled,
}

/// A contained per-task failure: which task, and what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Index of the failing task within its parallel call.
    pub index: usize,
    /// What went wrong.
    pub failure: TaskFailure,
}

impl TaskError {
    /// A cancellation marker for task `index`.
    #[must_use]
    pub fn cancelled(index: usize) -> Self {
        Self {
            index,
            failure: TaskFailure::Cancelled,
        }
    }

    /// The panic payload message, if this error came from a panic.
    #[must_use]
    pub fn panic_message(&self) -> Option<&str> {
        match &self.failure {
            TaskFailure::Panicked(msg) => Some(msg),
            TaskFailure::Cancelled => None,
        }
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            TaskFailure::Panicked(msg) => write!(f, "task {} panicked: {msg}", self.index),
            TaskFailure::Cancelled => write!(f, "task {} cancelled", self.index),
        }
    }
}

impl std::error::Error for TaskError {}

/// Extracts a human-readable message from a panic payload.
///
/// Recognizes the two payload types `panic!` produces (`&str` and `String`);
/// anything else is reported opaquely.
#[must_use]
pub fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f` as an isolated task: a panic is caught and converted into a
/// [`TaskError`] carrying `index` and the downcast payload message.
///
/// The `AssertUnwindSafe` is sound for the pool's usage contract: each task's
/// result is a pure function of its index and inputs, and a failing task's
/// partial state is discarded wholesale (retries rebuild from scratch), so no
/// broken invariant can be observed after an unwind.
pub fn catch_task<R>(index: usize, f: impl FnOnce() -> R) -> Result<R, TaskError> {
    std::panic::catch_unwind(AssertUnwindSafe(f)).map_err(|payload| TaskError {
        index,
        failure: TaskFailure::Panicked(payload_message(payload.as_ref())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancels_and_resets() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        t.reset();
        assert!(!clone.is_cancelled());
    }

    #[test]
    fn catch_task_passes_results_through() {
        assert_eq!(catch_task(3, || 40 + 2), Ok(42));
    }

    #[test]
    fn catch_task_reports_index_and_message() {
        let err = catch_task::<()>(7, || panic!("boom {}", 13)).unwrap_err();
        assert_eq!(err.index, 7);
        assert_eq!(err.panic_message(), Some("boom 13"));
        assert_eq!(err.to_string(), "task 7 panicked: boom 13");
    }

    #[test]
    fn non_string_payload_is_opaque_but_safe() {
        let err = catch_task::<()>(0, || std::panic::panic_any(17_u32)).unwrap_err();
        assert_eq!(err.panic_message(), Some("<non-string panic payload>"));
    }

    #[test]
    fn cancelled_error_displays() {
        let err = TaskError::cancelled(5);
        assert_eq!(err.to_string(), "task 5 cancelled");
        assert_eq!(err.panic_message(), None);
    }
}
