//! Error type shared across the netlist crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing, or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was given a name that already exists in the design.
    DuplicateName(String),
    /// A gate references a net id that does not exist.
    UnknownNet(u32),
    /// A gate references a signal name that was never defined.
    UnknownName(String),
    /// The gate's fanin count is outside the allowed arity for its kind.
    BadFanin {
        /// Name of the offending gate (or its id rendered as text).
        gate: String,
        /// Fanin count supplied by the caller.
        got: usize,
        /// Minimum allowed fanin.
        min: usize,
        /// Maximum allowed fanin.
        max: usize,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle(String),
    /// A `.bench` line could not be parsed.
    ParseBench {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The design declares no primary output.
    NoOutputs,
    /// The design declares no primary input (and no scan flip-flops).
    NoInputs,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(name) => write!(f, "duplicate signal name `{name}`"),
            NetlistError::UnknownNet(id) => write!(f, "reference to unknown net id {id}"),
            NetlistError::UnknownName(name) => write!(f, "reference to undefined signal `{name}`"),
            NetlistError::BadFanin {
                gate,
                got,
                min,
                max,
            } => write!(
                f,
                "gate `{gate}` has {got} fanins, expected between {min} and {max}"
            ),
            NetlistError::CombinationalCycle(name) => {
                write!(f, "combinational cycle detected through `{name}`")
            }
            NetlistError::ParseBench { line, message } => {
                write!(f, "bench parse error at line {line}: {message}")
            }
            NetlistError::NoOutputs => write!(f, "netlist declares no primary outputs"),
            NetlistError::NoInputs => write!(f, "netlist declares no primary inputs"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = NetlistError::DuplicateName("n1".into());
        assert!(err.to_string().contains("n1"));
        let err = NetlistError::BadFanin {
            gate: "g7".into(),
            got: 0,
            min: 1,
            max: 1,
        };
        let text = err.to_string();
        assert!(text.contains("g7") && text.contains('0') && text.contains('1'));
    }
}
