//! Deterministic parallel execution runtime for the DETERRENT workspace.
//!
//! The paper parallelizes its dominant offline cost over 64 processes; this
//! crate is the reproduction's equivalent — a small runtime that lets every
//! hot path (Monte-Carlo probability estimation, the compatibility funnel's
//! witness sweeps and cone enumeration, PPO rollout collection) scale with
//! the hardware while keeping one invariant:
//!
//! > **Results are bit-identical at any thread count.**
//!
//! Three design rules make that hold:
//!
//! 1. **Static chunking, ordered merge.** [`Exec::par_ranges`] splits an
//!    index range into contiguous chunks and returns per-chunk results *in
//!    chunk order*, so callers reassemble outputs positionally instead of in
//!    completion order.
//! 2. **Seed splitting.** [`split_seed`] derives an independent RNG stream
//!    per *task index* (not per worker), so random-pattern generation does
//!    not depend on which thread ran which task.
//! 3. **Per-task purity.** Workers may keep mutable scratch state (see
//!    [`Exec::par_map_with`]) but each task's result must be a function of
//!    the task index and inputs only.
//!
//! The thread count is a single knob: `0` resolves to the
//! `DETERRENT_THREADS` environment variable when set, otherwise to
//! [`std::thread::available_parallelism`]. Every parallel call records task
//! and timing counters in an [`ExecStats`] surface for speedup reporting.
//!
//! Two executors share that contract: [`Exec`] spawns scoped threads per
//! call (zero setup cost to hold, ~20–100 µs to dispatch), while
//! [`ExecPool`] keeps persistent workers fed over channels for resident
//! services that dispatch continuously. Both split work with the same
//! static chunk rule, so their results are interchangeable byte-for-byte.
//!
//! # Fault containment
//!
//! Panics and cancellation are part of the execution contract rather than
//! process-fatal events. The isolated combinators
//! ([`Exec::par_map_isolated`], [`Exec::try_par_map`]) wrap each task in
//! [`std::panic::catch_unwind`] and convert a panic into a [`TaskError`]
//! carrying the task index and payload message, so one exploding task cannot
//! tear down the pool. A cooperative [`CancelToken`] (shared via
//! [`Exec::cancel_token`]) is consulted at chunk and task boundaries; after
//! it fires, unstarted tasks report [`TaskFailure::Cancelled`]. The legacy
//! infallible combinators still propagate panics, but re-raised with the
//! failing task index and message attached instead of a bare join failure.
//! [`ExecStats`] counts both contained panics and cancelled tasks.
//!
//! # Example
//!
//! ```
//! use exec::{split_seed, Exec};
//!
//! let exec = Exec::new(2);
//! let squares = exec.par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Per-task seed streams are independent of the thread count.
//! let a = Exec::new(1).par_index_map(8, |i| split_seed(7, i as u64));
//! let b = Exec::new(4).par_index_map(8, |i| split_seed(7, i as u64));
//! assert_eq!(a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec_pool;
mod pool;
mod seed;
mod stats;
mod task;

pub use exec_pool::ExecPool;
pub use pool::Exec;
pub use seed::{split_seed, SeedStream};
pub use stats::ExecStats;
pub use task::{catch_task, CancelToken, TaskError, TaskFailure};

/// Environment variable consulted by [`Exec::new`] when the thread knob is 0.
pub const THREADS_ENV_VAR: &str = "DETERRENT_THREADS";
