//! Artifact-cache correctness of the staged session API.
//!
//! The contract under test: a session rerun whose config slices did not
//! change hits the cache for every cached stage (counter-asserted) and
//! produces **bit-identical** `DeterrentResult`s to a cold session and to
//! the legacy monolithic `Deterrent::run()` wrapper — at one worker thread
//! and at four (`DeterrentConfig::threads` pins the exec runtime exactly
//! like `DETERRENT_THREADS` does for knob-0 configs; CI additionally runs
//! this whole file under a `DETERRENT_THREADS={1,4}` matrix).

use deterrent_repro::deterrent_core::{
    ArtifactStore, Deterrent, DeterrentConfig, DeterrentResult, DeterrentSession, RewardMode,
};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::netlist::Netlist;

fn test_netlist() -> Netlist {
    BenchmarkProfile::c2670().scaled(20).generate(11)
}

fn test_config() -> DeterrentConfig {
    DeterrentConfig::fast_preset()
        .with_threshold(0.2)
        .with_episodes(30)
        .with_eval_rollouts(8)
}

fn assert_bit_identical(a: &DeterrentResult, b: &DeterrentResult, label: &str) {
    assert_eq!(a.patterns, b.patterns, "{label}: patterns");
    assert_eq!(a.sets, b.sets, "{label}: sets");
    assert_eq!(a.rare_nets, b.rare_nets, "{label}: rare nets");
    assert_eq!(
        a.rareness_threshold.to_bits(),
        b.rareness_threshold.to_bits(),
        "{label}: threshold"
    );
    assert_eq!(
        a.metrics.max_compatible_set, b.metrics.max_compatible_set,
        "{label}: max compatible set"
    );
    assert_eq!(
        a.metrics.env_sat_checks, b.metrics.env_sat_checks,
        "{label}: env SAT checks"
    );
    assert_eq!(
        a.metrics.patterns_witness_reused, b.metrics.patterns_witness_reused,
        "{label}: witness reuse"
    );
}

#[test]
fn warm_rerun_hits_every_cached_stage_and_is_bit_identical() {
    let nl = test_netlist();
    for threads in [1usize, 4] {
        let config = test_config().with_threads(threads);
        let store = ArtifactStore::new();

        let mut cold = DeterrentSession::with_store(&nl, config.clone(), store.clone());
        let cold_result = cold.run();
        let after_cold = store.counters();
        assert_eq!(after_cold.total_hits(), 0, "{threads} threads: cold run");
        assert_eq!(after_cold.analyze.misses, 1);
        assert_eq!(after_cold.build_graph.misses, 1);
        assert_eq!(after_cold.train.misses, 1);
        assert_eq!(after_cold.select.misses, 1);

        let mut warm = DeterrentSession::with_store(&nl, config.clone(), store.clone());
        let warm_result = warm.run();
        let after_warm = store.counters();
        assert_eq!(
            after_warm.total_misses(),
            after_cold.total_misses(),
            "{threads} threads: warm run must recompute nothing"
        );
        assert_eq!(after_warm.analyze.hits, 1, "{threads} threads");
        assert_eq!(after_warm.build_graph.hits, 1, "{threads} threads");
        assert_eq!(after_warm.train.hits, 1, "{threads} threads");
        assert_eq!(after_warm.select.hits, 1, "{threads} threads");

        assert_bit_identical(
            &cold_result,
            &warm_result,
            &format!("warm vs cold at {threads} threads"),
        );

        // The legacy monolithic wrapper is the same computation.
        let legacy = Deterrent::new(&nl, config).run();
        assert_bit_identical(
            &legacy,
            &cold_result,
            &format!("legacy wrapper at {threads} threads"),
        );
    }
}

#[test]
fn results_and_cache_keys_are_thread_count_invariant() {
    let nl = test_netlist();
    let store = ArtifactStore::new();

    // Cold at 1 thread populates the store…
    let mut serial =
        DeterrentSession::with_store(&nl, test_config().with_threads(1), store.clone());
    let serial_result = serial.run();

    // …and a 4-thread session hits every cached stage: thread counts are
    // excluded from artifact keys because results cannot depend on them.
    let mut parallel =
        DeterrentSession::with_store(&nl, test_config().with_threads(4), store.clone());
    let parallel_result = parallel.run();
    let counters = store.counters();
    assert_eq!(counters.total_misses(), 6, "one miss per cached stage");
    assert_eq!(counters.estimate.hits, 1);
    assert_eq!(counters.analyze.hits, 1);
    assert_eq!(counters.build_graph.hits, 1);
    assert_eq!(counters.train.hits, 1);
    assert_eq!(counters.select.hits, 1);
    assert_eq!(counters.generate.hits, 1);
    assert_bit_identical(
        &serial_result,
        &parallel_result,
        "1 vs 4 threads, shared store",
    );

    // And a fully cold 4-thread session (private store) still agrees bit for
    // bit — the cache never substitutes for determinism, it only skips work.
    let mut cold4 = DeterrentSession::new(&nl, test_config().with_threads(4));
    let cold4_result = cold4.run();
    assert_bit_identical(&serial_result, &cold4_result, "1 vs 4 threads, cold");
}

#[test]
fn changing_a_downstream_slice_preserves_upstream_artifacts() {
    let nl = test_netlist();
    let store = ArtifactStore::new();
    let base = test_config();

    let mut first = DeterrentSession::with_store(&nl, base.clone(), store.clone());
    let _ = first.run();

    // A train-section change invalidates training and selection only.
    let ablated = base.clone().with_ablation(RewardMode::EndOfEpisode, true);
    let mut second = DeterrentSession::with_store(&nl, ablated, store.clone());
    let _ = second.run();
    let counters = store.counters();
    assert_eq!(counters.analyze.misses, 1);
    assert_eq!(counters.analyze.hits, 1);
    assert_eq!(counters.build_graph.misses, 1);
    assert_eq!(counters.build_graph.hits, 1);
    assert_eq!(counters.train.misses, 2, "ablation retrains");
    assert_eq!(counters.select.misses, 2, "new policy, new selection");

    // A θ change invalidates thresholding and everything downstream — but
    // not the θ-independent estimation artifact.
    let tighter = base.with_threshold(0.15);
    let mut third = DeterrentSession::with_store(&nl, tighter, store.clone());
    let _ = third.run();
    let counters = store.counters();
    assert_eq!(counters.estimate.misses, 1, "θ never touches the estimate");
    assert_eq!(counters.analyze.misses, 2, "new θ, new analysis");
    assert_eq!(counters.build_graph.misses, 2, "new analysis, new graph");
}

#[test]
fn session_exec_stats_include_estimation_tasks() {
    // PR-3 satellite: the old `Deterrent::run()` built one `Exec` for
    // estimation and a second for everything else, dropping estimation's
    // counters. The session's single shared executor must account for the
    // estimation + witness-harvest parallel calls in the final metrics.
    let nl = test_netlist();
    let config = test_config();
    let mut session = DeterrentSession::new(&nl, config.clone());
    let _ = session.analyze();
    let estimation_stats = session.exec_stats();
    assert!(
        estimation_stats.calls >= 1,
        "the single compacting estimation pass must run on the session executor: {estimation_stats:?}"
    );
    // Estimation processes the pattern stream in 64-pattern chunks: at least
    // patterns/64 tasks must be visible before any later stage runs.
    let min_tasks = (config.analysis.probability_patterns / 64) as u64;
    assert!(
        estimation_stats.tasks >= min_tasks,
        "expected ≥{min_tasks} estimation tasks, got {estimation_stats:?}"
    );

    let rare = session.analyze();
    let result = session.run_from(&rare);
    assert!(
        result.metrics.exec_stats.calls > estimation_stats.calls,
        "later stages accumulate onto the same executor"
    );
    assert!(result.metrics.exec_stats.tasks >= estimation_stats.tasks);

    // The legacy wrapper routes through a session, so its metrics now cover
    // estimation too.
    let legacy = Deterrent::new(&nl, config).run();
    assert!(
        legacy.metrics.exec_stats.tasks >= min_tasks,
        "wrapper metrics must include estimation: {:?}",
        legacy.metrics.exec_stats
    );
}
