//! Cache budgets, LRU eviction, and offline maintenance of the disk tier.
//!
//! PR 4's persistent artifact cache grew without bound: every distinct key
//! writes a file and nothing ever deletes one. This module makes the disk
//! tier *self-maintaining*:
//!
//! * [`CachePolicy`] — a size budget ([`CachePolicy::max_bytes`] for the
//!   whole cache, [`CachePolicy::per_stage_max`] per stage directory)
//!   enforced **on every insert**, plus the [`CachePolicy::slim_policy`]
//!   knob that switches train-stage artifacts to the slim codec variant
//!   (see the `codec` module docs for the on-disk formats).
//! * LRU ordering by an explicit **access-stamp sidecar** (`<key>.lru`
//!   next to each `<key>.dtc`), *not* by file `atime` — CI runners and
//!   many production mounts are `noatime`, so access times cannot be
//!   trusted. Sidecar stamps are written on insert and on every disk hit,
//!   and are monotonic within a process (wall-clock nanoseconds fused with
//!   an atomic counter), so stores in different processes sharing one
//!   directory still agree on recency to wall-clock precision.
//! * An eviction guarantee: an artifact **read by the current process is
//!   never evicted by that process** (the store pins every disk hit), so a
//!   long campaign can re-open artifacts it already used without them
//!   vanishing mid-run. Freshly *inserted* artifacts are evictable — they
//!   are already in the memory tier, so deleting the file costs nothing
//!   until the next process.
//! * Offline maintenance entry points used by the `deterrent-cache` CLI:
//!   [`cache_stats`] (per-stage file counts and bytes), [`gc`] (prune
//!   corrupt files, orphan sidecars, and over-budget artifacts), and
//!   [`verify`] (validate every file's header + checksum, optionally
//!   healing by deletion, with I/O errors reported separately from
//!   corruption so CI can gate on the distinction).
//!
//! Budgets never affect results — only which lookups are served warm. The
//! [`crate::DeterrentConfig::cache_policy`] knob and the
//! `DETERRENT_CACHE_MAX_BYTES` environment variable (see
//! [`crate::DeterrentConfig::resolved_cache_policy`]) configure the policy
//! for sessions; [`crate::ArtifactStore::with_disk_policy`] sets it
//! directly.
//!
//! # Choosing between the two budgets
//!
//! A *global* budget smaller than a campaign's whole working set hits the
//! classic **LRU scan anomaly** on reruns: a cyclic rescan evicts every
//! artifact just before it is needed, so the second sweep runs cold even
//! though it stays under budget (output is still byte-identical — budgets
//! never change results, only wall clock). When the goal is "keep the
//! cheap stages warm and shed the expensive ones", use
//! [`CachePolicy::per_stage_max`]: train-stage files are ~4× the other
//! five stages combined, so a cap that only the `train/` directory
//! exceeds retains estimate/analyze/graph/select/generate in full across reruns
//! and confines recomputation (and the anomaly) to the train stage. The
//! CI bounded-cache gate does exactly this. Use `max_bytes` as the hard
//! disk ceiling, `per_stage_max` as the retention shaper, and
//! [`CachePolicy::slim_policy`] to make each train file ~3× cheaper
//! before any eviction is needed.

use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::codec::{self, CacheEntry, DiskStage};
use crate::Stage;

/// Classification of a disk-tier failure.
///
/// Every ad-hoc "treat as corrupt" path of the disk tier now produces one of
/// these kinds, so failure events are countable and distinguishable (see
/// [`CacheEvents`]) while the recovery semantics stay exactly what they
/// were: recompute and heal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheErrorKind {
    /// The file's magic, stage tag, key, length, checksum, or payload
    /// structure is invalid.
    Corrupt,
    /// The header is intact but carries a different format version (an old
    /// or future cache — recomputed, never migrated).
    VersionMismatch,
    /// The file or directory could not be read or written.
    Io,
    /// A budget-driven eviction removed the artifact.
    Budget,
}

impl CacheErrorKind {
    /// Stable lower-case name (`corrupt`, `version-mismatch`, `io`,
    /// `budget`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Corrupt => "corrupt",
            Self::VersionMismatch => "version-mismatch",
            Self::Io => "io",
            Self::Budget => "budget",
        }
    }
}

/// A classified disk-tier failure: what kind, which artifact, and a short
/// human-readable detail. All variants heal the same way (the stage
/// recomputes and overwrites), so this type is informational — it feeds the
/// [`CacheEvents`] counters and the rate-limited heal warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheError {
    /// The failure class.
    pub kind: CacheErrorKind,
    /// The stage whose artifact failed.
    pub stage: Stage,
    /// The artifact cache key.
    pub key: u64,
    /// Short description of what exactly failed.
    pub detail: String,
}

impl CacheError {
    pub(crate) fn new(
        kind: CacheErrorKind,
        stage: Stage,
        key: u64,
        detail: impl Into<String>,
    ) -> Self {
        Self {
            kind,
            stage,
            key,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} artifact {}/{:016x}: {}",
            self.kind.name(),
            self.stage,
            self.key,
            self.detail
        )
    }
}

impl std::error::Error for CacheError {}

/// Per-kind counters of every disk-tier failure event a store has seen,
/// including budget-driven evictions. Counting is additional to — never a
/// replacement for — the per-stage [`crate::StageCounters`]: a corrupt
/// lookup still counts in `disk_corrupt` exactly as before.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheEvents {
    /// Structurally invalid files encountered (header, checksum, or payload
    /// decode failures).
    pub corrupt: u64,
    /// Files with an intact header but a different format version.
    pub version_mismatch: u64,
    /// Read or write I/O errors (including injected ones).
    pub io: u64,
    /// Artifacts evicted by budget enforcement.
    pub budget_evictions: u64,
}

impl CacheEvents {
    /// Total failure events across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.corrupt + self.version_mismatch + self.io + self.budget_evictions
    }
}

/// How over-budget artifacts are chosen for eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Eviction {
    /// Least-recently-used first, by sidecar access stamp (ties broken by
    /// stage and key so eviction order is deterministic).
    #[default]
    Lru,
}

/// Size budget and codec options of the persistent disk tier.
///
/// The default policy is unbounded (both budgets `None`) with the full
/// policy codec — exactly PR 4's behaviour. Budgets are enforced on every
/// insert: after writing a new artifact the store evicts
/// least-recently-used files (skipping any artifact this process has read)
/// until the cache fits. A policy never changes results, only what is
/// served warm, so it is excluded from every cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CachePolicy {
    /// Maximum total bytes of the cache directory (artifact files plus
    /// their sidecars), or `None` for unbounded.
    pub max_bytes: Option<u64>,
    /// Maximum bytes per stage directory, applied before the global
    /// budget. Useful because train-stage artifacts dominate (roughly 4× the
    /// other five stages combined at fast-preset scale).
    pub per_stage_max: Option<u64>,
    /// Eviction order among over-budget artifacts.
    pub eviction: Eviction,
    /// Write train-stage artifacts with the slim codec variant: Adam
    /// optimizer moments dropped and the loss history truncated to its most
    /// recent entries, shrinking policy files roughly 3×. Greedy/frozen
    /// rollouts from a slim artifact are bit-identical to full ones; the
    /// only observable difference is that a warm run's
    /// [`crate::TrainingMetrics::loss_history`] holds at most
    /// [`crate::SLIM_LOSS_KEEP`] entries. Default `false` (full
    /// fidelity).
    pub slim_policy: bool,
}

impl CachePolicy {
    /// An unbounded policy with the full codec (the default).
    #[must_use]
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A policy bounding the whole cache at `max_bytes`.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Returns a copy bounding every stage directory at `per_stage_max`.
    #[must_use]
    pub fn with_per_stage_max(mut self, per_stage_max: u64) -> Self {
        self.per_stage_max = Some(per_stage_max);
        self
    }

    /// Returns a copy with the slim train-stage codec toggled.
    #[must_use]
    pub fn with_slim_policy(mut self, slim: bool) -> Self {
        self.slim_policy = slim;
        self
    }

    /// `true` when neither budget is set (no insert-time eviction runs).
    #[must_use]
    pub fn is_unbounded(&self) -> bool {
        self.max_bytes.is_none() && self.per_stage_max.is_none()
    }
}

/// Parses a human-friendly byte count: a plain integer, or one with a
/// `k`/`m`/`g` suffix (powers of 1024, case-insensitive). Used by the
/// `--cache-max-bytes` CLI flags and the `DETERRENT_CACHE_MAX_BYTES`
/// environment variable.
///
/// ```
/// use deterrent_core::parse_bytes;
/// assert_eq!(parse_bytes("65536"), Some(65536));
/// assert_eq!(parse_bytes("64k"), Some(64 * 1024));
/// assert_eq!(parse_bytes("2M"), Some(2 * 1024 * 1024));
/// assert_eq!(parse_bytes("1g"), Some(1024 * 1024 * 1024));
/// assert_eq!(parse_bytes("nope"), None);
/// ```
#[must_use]
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, multiplier) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1024u64),
        b'm' | b'M' => (&s[..s.len() - 1], 1024 * 1024),
        b'g' | b'G' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(multiplier))
}

/// Disk usage of one stage directory, reported by [`cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageUsage {
    /// Which stage.
    pub stage: Stage,
    /// Number of artifact files.
    pub files: u64,
    /// Bytes of artifact files plus their access-stamp sidecars.
    pub bytes: u64,
}

/// Disk usage of a cache directory, per stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Per-stage usage, in stage-tag order (the `estimate` stage was added
    /// after the original five, so it reports last).
    pub stages: [StageUsage; 6],
}

impl CacheStats {
    /// Total artifact files across all stages.
    #[must_use]
    pub fn total_files(&self) -> u64 {
        self.stages.iter().map(|s| s.files).sum()
    }

    /// Total bytes (artifacts + sidecars) across all stages.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.bytes).sum()
    }

    /// Estimates the working set of the campaign that produced this cache:
    /// the bytes the directory would hold if *every* stage still had as
    /// many files as the most-populated stage does now.
    ///
    /// Each campaign cell writes roughly one artifact per stage, so the
    /// most-populated stage's file count approximates the cell count even
    /// after budget eviction has thinned the others; scaling every stage's
    /// mean file size back up to that count reconstructs the pre-eviction
    /// footprint. On an unevicted cache this equals [`total_bytes`]
    /// (every stage has the same count), so the estimate never shrinks
    /// below actual usage. A `max_bytes` budget under this value will
    /// churn on reruns (the LRU scan anomaly — see the module docs).
    ///
    /// [`total_bytes`]: CacheStats::total_bytes
    #[must_use]
    pub fn working_set_estimate(&self) -> u64 {
        let max_files = self.stages.iter().map(|s| s.files).max().unwrap_or(0);
        self.stages
            .iter()
            .filter(|s| s.files > 0)
            .map(|s| {
                let scaled = u128::from(s.bytes) * u128::from(max_files) / u128::from(s.files);
                u64::try_from(scaled).unwrap_or(u64::MAX)
            })
            .sum()
    }
}

/// Measures the disk usage of the cache at `root`, per stage. A missing
/// directory (nothing cached yet) reports zeroes; unreadable directories
/// are an error.
///
/// # Errors
///
/// Returns any I/O error encountered while listing the stage directories.
pub fn cache_stats(root: &Path) -> io::Result<CacheStats> {
    let entries = codec::scan_entries(root)?;
    let mut stages = DiskStage::ALL.map(|stage| StageUsage {
        stage: stage.stage(),
        files: 0,
        bytes: 0,
    });
    for entry in &entries {
        let slot = &mut stages[entry.stage.index()];
        slot.files += 1;
        slot.bytes += entry.bytes;
    }
    Ok(CacheStats { stages })
}

/// What [`gc`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Artifacts evicted to fit the policy budgets (LRU first).
    pub evicted_files: u64,
    /// Bytes freed by budget eviction.
    pub evicted_bytes: u64,
    /// Corrupt or unreadable artifact files removed.
    pub corrupt_removed: u64,
    /// Access-stamp sidecars whose artifact no longer exists, removed.
    pub orphan_sidecars_removed: u64,
    /// Stale `.tmp-*` files — residue of a writer killed mid-write, before
    /// the atomic rename — removed.
    pub stale_tmp_removed: u64,
    /// Bytes remaining in the cache after the sweep.
    pub bytes_remaining: u64,
}

/// Garbage-collects the cache at `root`: removes stale temp files left by
/// torn writes, removes corrupt artifact files (bad header, version, key,
/// or checksum), deletes orphaned sidecars, and then evicts
/// least-recently-used artifacts until the cache fits `policy`'s budgets.
/// Nothing is pinned — offline gc assumes no run is in flight; the
/// in-process insert-time enforcement is what protects a live run's working
/// set.
///
/// # Errors
///
/// Returns any I/O error encountered while listing the stage directories
/// (individual unreadable files are treated as corrupt, not errors).
pub fn gc(root: &Path, policy: &CachePolicy) -> io::Result<GcReport> {
    let mut report = GcReport::default();

    // Stale temp files are invisible to scan_entries (they have no `.dtc`
    // extension), so a torn write never serves reads — but the bytes leak
    // until an offline sweep removes them.
    for stale in codec::scan_stale_temps(root)? {
        if fs::remove_file(&stale).is_ok() {
            report.stale_tmp_removed += 1;
        }
    }

    let mut entries = codec::scan_entries(root)?;

    // Remove corrupt artifacts (validate header + checksum in full).
    entries.retain(|entry| {
        if codec::validate_file(&entry.artifact, entry.stage, entry.key) {
            true
        } else {
            remove_entry(entry);
            report.corrupt_removed += 1;
            false
        }
    });

    report.orphan_sidecars_removed = remove_orphan_sidecars(root)?;

    let evict = codec::plan_evictions(&entries, policy, &HashSet::new());
    for index in evict {
        let entry = &entries[index];
        remove_entry(entry);
        report.evicted_files += 1;
        report.evicted_bytes += entry.bytes;
    }
    if report.corrupt_removed + report.orphan_sidecars_removed + report.evicted_files > 0 {
        // Invalidate the in-memory index of any live store sharing this
        // directory (see the generation-counter protocol in `codec`).
        codec::bump_generation(root);
    }
    report.bytes_remaining = cache_stats(root)?.total_bytes();
    Ok(report)
}

/// What [`verify`] found. `is_clean` / exit-code mapping: corruption and
/// I/O errors are deliberately separate so callers (the `deterrent-cache
/// verify` CLI, CI gates) can distinguish "the cache had bad files, which
/// were healed and will simply recompute" from "the cache could not be
/// inspected at all".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Artifact files whose header and checksum validated.
    pub valid: u64,
    /// Artifact files that failed validation (and were deleted when
    /// healing).
    pub corrupt: Vec<PathBuf>,
    /// Whether corrupt files were deleted (`heal` was set).
    pub healed: bool,
    /// Paths that could not be inspected, with the error text.
    pub io_errors: Vec<(PathBuf, String)>,
}

impl VerifyReport {
    /// `true` when every file validated and every directory was readable.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.io_errors.is_empty()
    }
}

/// Verifies every artifact file under `root` against the codec's header
/// and FNV-1a payload checksum. With `heal`, corrupt files are deleted (the
/// next run recomputes them); without it they are only reported. I/O
/// errors (unreadable directories or files) are collected in
/// [`VerifyReport::io_errors`], never conflated with corruption.
#[must_use]
pub fn verify(root: &Path, heal: bool) -> VerifyReport {
    let mut report = VerifyReport {
        healed: heal,
        ..VerifyReport::default()
    };
    let entries = match codec::scan_entries(root) {
        Ok(entries) => entries,
        Err(e) => {
            report.io_errors.push((root.to_path_buf(), e.to_string()));
            return report;
        }
    };
    for entry in &entries {
        match fs::read(&entry.artifact) {
            Ok(bytes) => {
                if codec::validate_bytes(&bytes, entry.stage, entry.key) {
                    report.valid += 1;
                } else {
                    if heal {
                        remove_entry(entry);
                    }
                    report.corrupt.push(entry.artifact.clone());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // Raced with an eviction or concurrent writer; not an error.
            }
            Err(e) => {
                report
                    .io_errors
                    .push((entry.artifact.clone(), e.to_string()));
            }
        }
    }
    if heal && !report.corrupt.is_empty() {
        codec::bump_generation(root);
    }
    report
}

fn remove_entry(entry: &CacheEntry) {
    let _ = fs::remove_file(&entry.artifact);
    let _ = fs::remove_file(&entry.sidecar);
}

fn remove_orphan_sidecars(root: &Path) -> io::Result<u64> {
    let mut removed = 0;
    for stage in DiskStage::ALL {
        let dir = root.join(stage.dir());
        let listing = match fs::read_dir(&dir) {
            Ok(listing) => listing,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for item in listing.flatten() {
            let path = item.path();
            if path.extension().and_then(|e| e.to_str()) == Some(codec::SIDECAR_EXT)
                && !path.with_extension(codec::FILE_EXT).exists()
            {
                let _ = fs::remove_file(&path);
                removed += 1;
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bytes_handles_suffixes_and_rejects_garbage() {
        assert_eq!(parse_bytes(" 42 "), Some(42));
        assert_eq!(parse_bytes("1K"), Some(1024));
        assert_eq!(parse_bytes("3m"), Some(3 << 20));
        assert_eq!(parse_bytes("2G"), Some(2 << 30));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("k"), None);
        assert_eq!(parse_bytes("12q"), None);
        assert_eq!(parse_bytes("-5"), None);
    }

    #[test]
    fn policy_builders_compose() {
        let policy = CachePolicy::unbounded()
            .with_max_bytes(1 << 20)
            .with_per_stage_max(1 << 18)
            .with_slim_policy(true);
        assert_eq!(policy.max_bytes, Some(1 << 20));
        assert_eq!(policy.per_stage_max, Some(1 << 18));
        assert!(policy.slim_policy);
        assert!(!policy.is_unbounded());
        assert!(CachePolicy::default().is_unbounded());
    }

    #[test]
    fn working_set_estimate_reconstructs_evicted_stages() {
        let usage = |stage, files, bytes| StageUsage {
            stage,
            files,
            bytes,
        };
        // Unevicted cache: estimate equals actual usage.
        let full = CacheStats {
            stages: [
                usage(Stage::Analyze, 4, 400),
                usage(Stage::BuildGraph, 4, 800),
                usage(Stage::Train, 4, 4000),
                usage(Stage::Select, 4, 200),
                usage(Stage::Generate, 4, 200),
                usage(Stage::Estimate, 4, 600),
            ],
        };
        assert_eq!(full.working_set_estimate(), full.total_bytes());

        // Eviction thinned the train stage to one of four files: the
        // estimate scales its mean file size back up to four.
        let evicted = CacheStats {
            stages: [
                usage(Stage::Analyze, 4, 400),
                usage(Stage::BuildGraph, 4, 800),
                usage(Stage::Train, 1, 1000),
                usage(Stage::Select, 4, 200),
                usage(Stage::Generate, 4, 200),
                usage(Stage::Estimate, 4, 600),
            ],
        };
        assert_eq!(evicted.working_set_estimate(), 6200);
        assert!(evicted.working_set_estimate() > evicted.total_bytes());

        // Empty cache estimates zero.
        let empty = cache_stats(Path::new("/definitely/not/a/real/dir")).unwrap();
        assert_eq!(empty.working_set_estimate(), 0);
    }

    #[test]
    fn stats_of_missing_root_are_zero() {
        let stats = cache_stats(Path::new("/definitely/not/a/real/dir")).expect("missing is ok");
        assert_eq!(stats.total_files(), 0);
        assert_eq!(stats.total_bytes(), 0);
        assert_eq!(stats.stages.len(), 6);
    }

    #[test]
    fn verify_of_missing_root_is_clean() {
        let report = verify(Path::new("/definitely/not/a/real/dir"), true);
        assert!(report.is_clean());
        assert_eq!(report.valid, 0);
    }

    #[test]
    fn cache_error_classification_and_display() {
        let err = CacheError::new(
            CacheErrorKind::Corrupt,
            Stage::Analyze,
            0xAB,
            "checksum mismatch".to_string(),
        );
        assert_eq!(err.kind, CacheErrorKind::Corrupt);
        assert_eq!(
            err.to_string(),
            "corrupt artifact analyze/00000000000000ab: checksum mismatch"
        );
        assert_eq!(CacheErrorKind::VersionMismatch.name(), "version-mismatch");
        assert_eq!(CacheErrorKind::Io.name(), "io");
        assert_eq!(CacheErrorKind::Budget.name(), "budget");
        let events = CacheEvents {
            corrupt: 1,
            version_mismatch: 2,
            io: 3,
            budget_evictions: 4,
        };
        assert_eq!(events.total(), 10);
    }

    #[test]
    fn gc_heals_torn_writes_without_panicking() {
        use crate::codec::DiskStore;

        let root = std::env::temp_dir().join(format!(
            "deterrent-gc-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        let disk = DiskStore::with_faults(root.clone(), CachePolicy::default(), None);
        disk.store(DiskStage::Analyze, 0xFEED, b"whole artifact payload");

        // Simulate a writer killed between temp-file creation and rename:
        // a stale temp file plus a truncated (torn) artifact.
        let stage_dir = root.join(DiskStage::Analyze.dir());
        fs::write(
            stage_dir.join(".tmp-99999-0-000000000000feed"),
            b"partial bytes of a dead writer",
        )
        .unwrap();
        let artifact = stage_dir.join(format!("{:016x}.dtc", 0xFEED_u64));
        let whole = fs::read(&artifact).unwrap();
        fs::write(&artifact, &whole[..whole.len() / 2]).unwrap();

        let report = gc(&root, &CachePolicy::default()).expect("gc survives torn state");
        assert_eq!(report.stale_tmp_removed, 1, "stale temp file removed");
        assert_eq!(report.corrupt_removed, 1, "torn artifact removed");
        assert!(!stage_dir.join(".tmp-99999-0-000000000000feed").exists());
        assert!(!artifact.exists());

        // The healed cache is simply cold again.
        assert!(matches!(
            disk.load(DiskStage::Analyze, 0xFEED),
            codec::DiskLookup::Miss
        ));
        let clean = gc(&root, &CachePolicy::default()).expect("second gc");
        assert_eq!(clean.stale_tmp_removed, 0);
        assert_eq!(clean.corrupt_removed, 0);
        let _ = fs::remove_dir_all(&root);
    }
}
