//! Boolean satisfiability substrate for the DETERRENT reproduction.
//!
//! The original DETERRENT implementation uses `pycosat` (PicoSAT) for two
//! tasks: checking whether a set of rare nets is *compatible* (an input
//! pattern exists that drives them all to their rare values), and generating
//! the final test patterns from the maximal compatible sets found by the RL
//! agent. This crate provides those capabilities from scratch:
//!
//! * [`Cnf`], [`Lit`], [`Var`] — clause database primitives.
//! * [`Solver`] — a CDCL SAT solver (two-watched literals, first-UIP clause
//!   learning, VSIDS-style activities, phase saving, Luby or geometric
//!   restarts, activity-based learned-clause deletion, incremental solving
//!   under assumptions) configured through [`SolverConfig`].
//! * [`dimacs`] — DIMACS CNF reading/writing for interoperability.
//! * [`CircuitEncoder`] — Tseitin encoding of a [`netlist::Netlist`], either
//!   whole-design or restricted to a fanin cone.
//! * [`CircuitOracle`] — the high-level interface used by the rest of the
//!   workspace: "give me an input pattern that justifies these `(net, value)`
//!   targets, or prove none exists".
//! * [`ConeOracle`] — the same interface with lazy cone-restricted encoding
//!   and one assumption-based solver shared across queries; the workhorse of
//!   the offline compatibility funnel.
//!
//! # Example
//!
//! ```
//! use netlist::samples;
//! use sat::CircuitOracle;
//!
//! let nl = samples::rare_chain(4);
//! let mut oracle = CircuitOracle::new(&nl);
//! let root = nl.net_by_name("and3").unwrap();
//! // Justify the rare value of the AND-chain root.
//! let pattern = oracle.justify(&[(root, true)]).expect("satisfiable");
//! assert!(pattern.iter().all(|&b| b), "only the all-ones pattern works");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimacs;
mod encoder;
mod oracle;
mod order;
mod solver;
mod types;

pub use encoder::CircuitEncoder;
pub use oracle::{CircuitOracle, ConeOracle};
pub use solver::{luby, RestartPolicy, SolveResult, Solver, SolverConfig, SolverStats};
pub use types::{Clause, Cnf, Lit, Var};
