//! Figure 7: impact of the rareness threshold (0.10–0.14) on the number of
//! rare nets and on DETERRENT's trigger coverage for c6288, plus the
//! threshold-transfer experiment (train at 0.14, evaluate at 0.10).

use deterrent_bench::HarnessOptions;
use netlist::synth::BenchmarkProfile;
use sim::rare::RareNetAnalysis;
use trojan::{CoverageEvaluator, TrojanGenerator};

fn main() {
    let options = HarnessOptions::from_args();
    let profile = BenchmarkProfile::c6288();
    let netlist = options.netlist(&profile);
    println!(
        "Figure 7 — rareness-threshold sweep on {} ({} gates)\n",
        profile.name,
        netlist.num_logic_gates()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>18} {:>14}",
        "threshold", "#rare nets", "#Trojans", "DETERRENT cov (%)", "test length"
    );

    let thresholds = [0.10, 0.11, 0.12, 0.13, 0.14];
    let mut analyses = Vec::new();
    for &theta in &thresholds {
        let analysis = RareNetAnalysis::estimate(&netlist, theta, 8192, options.seed);
        let mut generator = TrojanGenerator::new(&netlist, options.seed ^ (theta * 1000.0) as u64);
        let trojans =
            generator.sample_many(&analysis, options.trigger_width.min(4), options.num_trojans);
        let mut config = options.deterrent_config();
        config.rareness_threshold = theta;
        let result = deterrent_core::Deterrent::new(&netlist, config).run_with_analysis(&analysis);
        let coverage = if trojans.is_empty() {
            f64::NAN
        } else {
            CoverageEvaluator::new(&netlist, trojans.clone())
                .evaluate(&result.patterns)
                .coverage_percent()
        };
        println!(
            "{theta:>10.2} {:>12} {:>12} {coverage:>18.1} {:>14}",
            analysis.len(),
            trojans.len(),
            result.test_length()
        );
        analyses.push((theta, analysis, result));
    }

    // Threshold transfer: patterns generated from the loosest threshold
    // evaluated against Trojans built from the tightest one.
    if let (Some((_, tight_analysis, _)), Some((_, _, loose_result))) =
        (analyses.first(), analyses.last())
    {
        let mut generator = TrojanGenerator::new(&netlist, options.seed ^ 0x0f14);
        let trojans = generator.sample_many(
            tight_analysis,
            options.trigger_width.min(4),
            options.num_trojans,
        );
        if !trojans.is_empty() {
            let coverage = CoverageEvaluator::new(&netlist, trojans)
                .evaluate(&loose_result.patterns)
                .coverage_percent();
            println!(
                "\nTransfer: patterns trained at threshold 0.14 achieve {coverage:.1}% coverage \
                 against threshold-0.10 triggers (paper reports 99%)."
            );
        }
    }
    println!(
        "\nShape to verify: the number of rare nets grows with the threshold while \
         DETERRENT's coverage stays within a few percent."
    );
}
