//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! Provides the `proptest!` macro, `prop_assert*`/`prop_assume!`,
//! `ProptestConfig`, `any::<T>()`, range/tuple/`prop::collection::vec`
//! strategies, `Strategy::prop_map`, and `prop::sample::Index`. Cases are
//! generated from a deterministic per-test RNG; there is no shrinking — a
//! failing case reports its inputs via the panic message instead.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection and sampling strategy namespaces (`prop::collection::vec`,
/// `prop::sample::Index`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Sampling helpers.
    pub mod sample {
        pub use crate::strategy::Index;
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares a block of property tests.
///
/// Supported grammar (a subset of the real macro):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))] // optional
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        );
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(32).max(1024),
                        "proptest '{}' rejected too many cases via prop_assume!",
                        stringify!($name)
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest '{}' failed at case {} with inputs [{}]: {}",
                            stringify!($name), accepted, inputs, msg
                        ),
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?} ({})", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discards the current case (it does not count towards `cases`) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
