//! The scoped-thread execution pool.

use std::ops::Range;
use std::time::Instant;

use crate::stats::StatsCell;
use crate::{ExecStats, THREADS_ENV_VAR};

/// A deterministic parallel executor with a fixed worker count.
///
/// `Exec` owns no long-lived threads: every parallel call spawns scoped
/// workers (joined before the call returns), so borrowing local data in task
/// closures works naturally and a dropped `Exec` leaks nothing. Splitting is
/// *static* — an index range is divided into one contiguous chunk per worker
/// and results are merged in chunk order — so outputs are independent of
/// scheduling and thread count.
#[derive(Debug)]
pub struct Exec {
    threads: usize,
    stats: StatsCell,
}

impl Default for Exec {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Exec {
    /// Creates an executor with `threads` workers.
    ///
    /// `0` means "auto": the `DETERRENT_THREADS` environment variable when
    /// set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads > 0 {
            threads
        } else {
            std::env::var(THREADS_ENV_VAR)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                })
        };
        Self {
            threads,
            stats: StatsCell::default(),
        }
    }

    /// An executor that runs everything inline on the calling thread,
    /// ignoring the environment. Useful as the serial reference in
    /// determinism tests and for callers that must not spawn.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            threads: 1,
            stats: StatsCell::default(),
        }
    }

    /// The resolved worker count (always at least 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the accumulated task/timing counters.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        self.stats.snapshot()
    }

    /// Resets the accumulated counters to zero.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Splits `0..n` into one contiguous range per worker, runs `work` on
    /// each range concurrently, and returns the per-range results **in range
    /// order**.
    ///
    /// This is the primitive the other combinators build on. The caller's
    /// `work` must make each range's result independent of how `0..n` was
    /// chunked (e.g. fold with an associative operation, or return per-index
    /// values) — then the merged output is bit-identical at any thread
    /// count.
    pub fn par_ranges<R, F>(&self, n: usize, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let call_start = Instant::now();
        let results = if n == 0 {
            Vec::new()
        } else if self.threads <= 1 || n == 1 {
            let busy_start = Instant::now();
            let r = work(0..n);
            self.stats
                .record_busy(busy_start.elapsed().as_nanos() as u64);
            vec![r]
        } else {
            let chunk = n.div_ceil(self.threads.min(n));
            let work = &work;
            let stats = &self.stats;
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .step_by(chunk)
                    .map(|lo| {
                        let hi = (lo + chunk).min(n);
                        scope.spawn(move |_| {
                            let busy_start = Instant::now();
                            let r = work(lo..hi);
                            stats.record_busy(busy_start.elapsed().as_nanos() as u64);
                            r
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("exec worker panicked"))
                    .collect()
            })
            .expect("exec thread scope")
        };
        self.stats
            .record_call(n as u64, call_start.elapsed().as_nanos() as u64);
        results
    }

    /// Applies `f` to every index in `0..n` and returns the results in index
    /// order.
    pub fn par_index_map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.par_ranges(n, |range| range.map(&f).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Applies `f(index, item)` to every item and returns the results in
    /// item order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_index_map(items.len(), |i| f(i, &items[i]))
    }

    /// Like [`Exec::par_map`], but each worker first builds one scratch
    /// value with `init` and reuses it across all its items — the pattern
    /// for expensive per-thread state such as packed-word simulation
    /// buffers.
    ///
    /// `f` must not let the result depend on the scratch *history* (only on
    /// the current item), otherwise chunk boundaries would leak into the
    /// output.
    pub fn par_map_with<S, T, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        self.par_ranges(items.len(), |range| {
            let mut scratch = init();
            range
                .map(|i| f(&mut scratch, i, &items[i]))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Splits `items` into fixed-size chunks of `chunk_len`, applies
    /// `f(first_index, chunk)` to each, and returns the per-chunk results in
    /// chunk order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        let chunks = items.len().div_ceil(chunk_len);
        self.par_index_map(chunks, |c| {
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(items.len());
            f(lo, &items[lo..hi])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split_seed;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn resolves_thread_counts() {
        assert_eq!(Exec::new(3).threads(), 3);
        assert_eq!(Exec::serial().threads(), 1);
        assert!(Exec::new(0).threads() >= 1);
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let exec = Exec::new(threads);
            assert_eq!(exec.par_map(&items, |_, &x| x * 3 + 1), reference);
        }
    }

    #[test]
    fn par_ranges_covers_exactly_once() {
        let exec = Exec::new(4);
        let ranges = exec.par_ranges(10, |r| r);
        let flat: Vec<usize> = ranges.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        assert!(exec.par_ranges(0, |r| r).is_empty());
    }

    #[test]
    fn seeded_work_is_thread_count_independent() {
        let run = |threads| {
            Exec::new(threads).par_index_map(64, |i| {
                // Stand-in for per-chunk RNG streams.
                split_seed(0xDEAD, i as u64).wrapping_mul(i as u64 + 1)
            })
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(1), run(7));
    }

    #[test]
    fn par_map_with_builds_one_scratch_per_worker() {
        let inits = AtomicUsize::new(0);
        let exec = Exec::new(4);
        let items: Vec<u32> = (0..100).collect();
        let out = exec.par_map_with(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u32>::with_capacity(8)
            },
            |scratch, _, &x| {
                scratch.clear();
                scratch.push(x);
                scratch[0] + 1
            },
        );
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= 4, "at most one per worker");
    }

    #[test]
    fn par_chunks_sees_fixed_chunks_in_order() {
        let exec = Exec::new(3);
        let items: Vec<u8> = (0..10).collect();
        let sums = exec.par_chunks(&items, 4, |lo, chunk| {
            (lo, chunk.iter().map(|&x| u32::from(x)).sum::<u32>())
        });
        assert_eq!(sums, vec![(0, 6), (4, 22), (8, 17)]);
    }

    #[test]
    fn stats_count_calls_and_tasks() {
        let exec = Exec::new(2);
        let _ = exec.par_index_map(10, |i| i);
        let _ = exec.par_index_map(5, |i| i);
        let s = exec.stats();
        assert_eq!(s.calls, 2);
        assert_eq!(s.tasks, 15);
        assert!(s.speedup() > 0.0);
        exec.reset_stats();
        assert_eq!(exec.stats().calls, 0);
    }

    #[test]
    #[should_panic(expected = "chunk length")]
    fn zero_chunk_len_panics() {
        let _ = Exec::serial().par_chunks(&[1, 2, 3], 0, |_, _| ());
    }
}
