//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The implementation follows the classic MiniSat recipe: two watched
//! literals per clause, first-UIP conflict analysis, activity-based (VSIDS)
//! decision heuristics with phase saving, geometric restarts, and incremental
//! solving under assumptions. Clause deletion is intentionally omitted — the
//! formulas produced by circuit encoding in this workspace are small enough
//! that the learned-clause database stays manageable.

use crate::order::VarOrder;
use crate::types::{Clause, Cnf, Lit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// The formula is satisfiable; the model assigns every variable.
    Sat(Vec<bool>),
    /// The formula is unsatisfiable (under the given assumptions, if any).
    Unsat,
}

impl SolveResult {
    /// Returns `true` for [`SolveResult::Sat`].
    #[must_use]
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// The model, if satisfiable.
    #[must_use]
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }
}

/// Search statistics accumulated over the lifetime of a [`Solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of learned clauses.
    pub learned_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

const UNASSIGNED: u8 = 2;

/// A CDCL SAT solver.
///
/// Clauses are added with [`Solver::add_clause`]; [`Solver::solve`] may be
/// called repeatedly with different assumption sets (incremental usage), and
/// more clauses may be added between calls.
///
/// # Example
///
/// ```
/// use sat::{Lit, Solver, Var};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause([a.positive(), b.positive()]);
/// solver.add_clause([a.negative()]);
/// let result = solver.solve(&[]);
/// let model = result.model().expect("satisfiable");
/// assert!(!model[a.index()] && model[b.index()]);
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit.code()] = indices of clauses currently watching `lit`.
    watches: Vec<Vec<usize>>,
    /// Current value per variable: 0 = false, 1 = true, 2 = unassigned.
    values: Vec<u8>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason clause index for each implied variable (usize::MAX = decision).
    reason: Vec<usize>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    propagate_head: usize,
    activity: Vec<f64>,
    activity_inc: f64,
    /// Decision order: activity-keyed max-heap over the variables
    /// (MiniSat's `order_heap`), making each decision O(log vars) instead of
    /// an O(vars) scan. Assigned variables may linger in the heap (lazy
    /// removal on pop) and are re-inserted when backtracking unassigns them.
    order: VarOrder,
    /// Saved phase per variable for phase-saving.
    phase: Vec<bool>,
    seen: Vec<bool>,
    unsat: bool,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with no variables or clauses.
    #[must_use]
    pub fn new() -> Self {
        Self {
            clauses: Vec::new(),
            watches: Vec::new(),
            values: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            propagate_head: 0,
            activity: Vec::new(),
            activity_inc: 1.0,
            order: VarOrder::default(),
            phase: Vec::new(),
            seen: Vec::new(),
            unsat: false,
            stats: SolverStats::default(),
        }
    }

    /// Creates a solver preloaded with the clauses of `cnf`.
    #[must_use]
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut solver = Self::new();
        solver.reserve_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.values.len() as u32);
        self.values.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(usize::MAX);
        self.activity.push(0.0);
        self.order.push_new_var(&self.activity);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.values.len() < n {
            self.new_var();
        }
    }

    /// Number of variables currently known to the solver.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of clauses (original + learned).
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Accumulated search statistics.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn value_lit(&self, lit: Lit) -> u8 {
        let v = self.values[lit.var().index()];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if (v == 1) == lit.polarity() {
            1
        } else {
            0
        }
    }

    /// Adds a clause. Duplicate literals are removed and tautological clauses
    /// are ignored. Adding the empty clause makes the solver permanently
    /// unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses may only be added at decision level 0"
        );
        let mut clause: Clause = lits.into_iter().collect();
        for lit in &clause {
            self.reserve_vars(lit.var().index() + 1);
        }
        clause.sort_by_key(|l| l.code());
        clause.dedup();
        // Tautology check (x ∨ ¬x).
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        // Remove literals already false at level 0; skip clause if any literal
        // is already true at level 0.
        if clause.iter().any(|&l| self.value_lit(l) == 1) {
            return;
        }
        clause.retain(|&l| self.value_lit(l) != 0);

        match clause.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(clause[0], usize::MAX) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[clause[0].code()].push(idx);
                self.watches[clause[1].code()].push(idx);
                self.clauses.push(clause);
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Assigns `lit` to true with the given reason. Returns `false` if `lit`
    /// is already false (conflict at the caller's level).
    fn enqueue(&mut self, lit: Lit, reason: usize) -> bool {
        match self.value_lit(lit) {
            0 => false,
            1 => true,
            _ => {
                let v = lit.var().index();
                self.values[v] = u8::from(lit.polarity());
                self.level[v] = self.decision_level() as u32;
                self.reason[v] = reason;
                self.phase[v] = lit.polarity();
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.propagate_head < self.trail.len() {
            let p = self.trail[self.propagate_head];
            self.propagate_head += 1;
            self.stats.propagations += 1;
            // Literal ¬p became false; visit clauses watching ¬p.
            let false_lit = !p;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Ensure the false literal is at position 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                let first = self.clauses[ci][0];
                if self.value_lit(first) == 1 {
                    // Clause already satisfied; keep watching.
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                for k in 2..self.clauses[ci].len() {
                    let cand = self.clauses[ci][k];
                    if self.value_lit(cand) != 0 {
                        self.clauses[ci].swap(1, k);
                        self.watches[cand.code()].push(ci);
                        watch_list.swap_remove(i);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // No replacement: clause is unit or conflicting.
                if self.value_lit(first) == 0 {
                    // Conflict: restore remaining watches and report.
                    self.watches[false_lit.code()].extend_from_slice(&watch_list);
                    self.propagate_head = self.trail.len();
                    return Some(ci);
                }
                let ok = self.enqueue(first, ci);
                debug_assert!(ok);
                i += 1;
            }
            // Put back whatever remains in the (possibly shrunk) list, merged
            // with watches added during replacement search.
            let existing = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut merged = watch_list;
            merged.extend(existing);
            self.watches[false_lit.code()] = merged;
        }
        None
    }

    fn bump_activity(&mut self, var: Var) {
        let a = &mut self.activity[var.index()];
        *a += self.activity_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.activity_inc *= 1e-100;
            self.order.rebuild(&self.activity);
        }
        self.order.bumped(var.index() as u32, &self.activity);
    }

    fn decay_activity(&mut self) {
        self.activity_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: usize) -> (Clause, usize) {
        let mut learned: Clause = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();
        let current_level = self.decision_level() as u32;
        let mut to_clear: Vec<Var> = Vec::new();

        loop {
            let clause = self.clauses[confl].clone();
            let start = usize::from(p.is_some());
            for &q in &clause[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_activity(v);
                    if self.level[v.index()] == current_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal on the trail (at the current level) to
            // resolve on.
            loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if self.seen[lit.var().index()] {
                    p = Some(lit);
                    break;
                }
            }
            let p_lit = p.expect("resolution literal");
            self.seen[p_lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learned.insert(0, !p_lit);
                break;
            }
            confl = self.reason[p_lit.var().index()];
            debug_assert_ne!(confl, usize::MAX, "implied literal must have a reason");
        }

        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // Backtrack level = highest level among learned[1..].
        let backtrack_level = learned[1..]
            .iter()
            .map(|l| self.level[l.var().index()] as usize)
            .max()
            .unwrap_or(0);

        // Move a literal of the backtrack level to position 1 so the watched
        // literals are correct after backjumping.
        if learned.len() > 1 {
            let (pos, _) = learned[1..]
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| self.level[l.var().index()])
                .expect("non-empty");
            learned.swap(1, pos + 1);
        }

        (learned, backtrack_level)
    }

    fn backtrack_to(&mut self, level: usize) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("non-root level");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail entry");
                let v = lit.var().index();
                self.values[v] = UNASSIGNED;
                self.reason[v] = usize::MAX;
                self.order.insert(v as u32, &self.activity);
            }
        }
        self.propagate_head = self.trail.len().min(self.propagate_head);
        self.propagate_head = self.trail.len();
    }

    /// Next decision variable: the unassigned variable of maximum activity,
    /// ties to the lowest index. O(log vars) via the order heap; assigned
    /// entries popped on the way are dropped (backtracking re-inserts them).
    fn pick_branch_var(&mut self) -> Option<Var> {
        let picked = loop {
            match self.order.pop(&self.activity) {
                None => break None,
                Some(v) if self.values[v as usize] == UNASSIGNED => break Some(Var(v)),
                Some(_) => {}
            }
        };
        #[cfg(debug_assertions)]
        assert_eq!(
            picked,
            self.pick_branch_var_linear(),
            "order heap must reproduce the linear scan's decision"
        );
        picked
    }

    /// The original O(vars) scan, kept as the reference the heap is checked
    /// against on every decision in debug builds.
    #[cfg(debug_assertions)]
    fn pick_branch_var_linear(&self) -> Option<Var> {
        let mut best: Option<(f64, usize)> = None;
        for (i, &v) in self.values.iter().enumerate() {
            if v == UNASSIGNED {
                let act = self.activity[i];
                match best {
                    Some((b, _)) if act <= b => {}
                    _ => best = Some((act, i)),
                }
            }
        }
        best.map(|(_, i)| Var(i as u32))
    }

    /// Solves the formula under the given `assumptions` (literals forced true
    /// for this call only).
    ///
    /// The solver state (learned clauses, activities, saved phases) persists
    /// across calls, making repeated related queries fast.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        for lit in assumptions {
            self.reserve_vars(lit.var().index() + 1);
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }

        let mut conflict_budget = 128u64;
        loop {
            match self.search(assumptions, conflict_budget) {
                SearchOutcome::Sat(model) => {
                    self.backtrack_to(0);
                    return SolveResult::Sat(model);
                }
                SearchOutcome::Unsat => {
                    self.backtrack_to(0);
                    return SolveResult::Unsat;
                }
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                    conflict_budget = conflict_budget.saturating_mul(3) / 2;
                }
            }
        }
    }

    fn search(&mut self, assumptions: &[Lit], conflict_budget: u64) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SearchOutcome::Unsat;
                }
                let (learned, backtrack_level) = self.analyze(confl);
                self.backtrack_to(backtrack_level);
                let asserting = learned[0];
                if learned.len() == 1 {
                    let ok = self.enqueue(asserting, usize::MAX);
                    if !ok {
                        self.unsat = true;
                        return SearchOutcome::Unsat;
                    }
                } else {
                    let idx = self.clauses.len();
                    self.watches[learned[0].code()].push(idx);
                    self.watches[learned[1].code()].push(idx);
                    self.clauses.push(learned);
                    self.stats.learned_clauses += 1;
                    let ok = self.enqueue(asserting, idx);
                    debug_assert!(ok);
                }
                self.decay_activity();
                if conflicts_here >= conflict_budget && self.decision_level() > assumptions.len() {
                    return SearchOutcome::Restart;
                }
            } else {
                // Decide.
                if self.decision_level() < assumptions.len() {
                    let lit = assumptions[self.decision_level()];
                    match self.value_lit(lit) {
                        0 => return SearchOutcome::Unsat,
                        1 => {
                            // Already true: open an empty decision level so the
                            // assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.stats.decisions += 1;
                            let ok = self.enqueue(lit, usize::MAX);
                            debug_assert!(ok);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        // Complete assignment: build the model.
                        let model = self
                            .values
                            .iter()
                            .enumerate()
                            .map(|(i, &v)| {
                                if v == UNASSIGNED {
                                    self.phase[i]
                                } else {
                                    v == 1
                                }
                            })
                            .collect();
                        return SearchOutcome::Sat(model);
                    }
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = var.lit(self.phase[var.index()]);
                        let ok = self.enqueue(lit, usize::MAX);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

enum SearchOutcome {
    Sat(Vec<bool>),
    Unsat,
    Restart,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v)
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        assert!(s.solve(&[]).is_sat());

        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve(&[]).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause([]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (¬1 ∨ 2) ∧ (¬2 ∨ 3) ∧ (1) forces 3.
        let mut s = Solver::new();
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s.add_clause([lit(1)]);
        let model = s.solve(&[]).model().unwrap().to_vec();
        assert!(model[0] && model[1] && model[2]);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Pigeons p in {1,2,3}, holes h in {1,2}: var(p,h) = 2(p-1)+h.
        let var = |p: i64, h: i64| 2 * (p - 1) + h;
        let mut s = Solver::new();
        for p in 1..=3 {
            s.add_clause([lit(var(p, 1)), lit(var(p, 2))]);
        }
        for h in 1..=2 {
            for p1 in 1..=3 {
                for p2 in (p1 + 1)..=3 {
                    s.add_clause([lit(-var(p1, h)), lit(-var(p2, h))]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_restrict_and_release() {
        // (1 ∨ 2) with assumption ¬1 forces 2; assumptions don't persist.
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        let m = s.solve(&[lit(-1)]).model().unwrap().to_vec();
        assert!(!m[0] && m[1]);
        // Conflicting assumptions => UNSAT under assumptions, SAT without.
        assert_eq!(s.solve(&[lit(-1), lit(-2)]), SolveResult::Unsat);
        assert!(s.solve(&[]).is_sat());
        assert!(s.solve(&[lit(1)]).is_sat());
    }

    #[test]
    fn xor_chain_sat() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 0 is satisfiable.
        let mut s = Solver::new();
        // x1 ⊕ x2: (1∨2) ∧ (¬1∨¬2)
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(-2)]);
        s.add_clause([lit(2), lit(3)]);
        s.add_clause([lit(-2), lit(-3)]);
        // x1 ⊕ x3 = 0: (¬1∨3) ∧ (1∨¬3)
        s.add_clause([lit(-1), lit(3)]);
        s.add_clause([lit(1), lit(-3)]);
        let m = s.solve(&[]).model().unwrap().to_vec();
        assert!(m[0] ^ m[1]);
        assert!(m[1] ^ m[2]);
        assert!(!(m[0] ^ m[2]));
    }

    #[test]
    fn model_satisfies_random_3sat() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..30 {
            let num_vars = 12;
            let num_clauses = 40;
            let mut cnf = Cnf::with_vars(num_vars);
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(0..num_vars) as u32;
                    clause.push(Var(v).lit(rng.gen_bool(0.5)));
                }
                cnf.add_clause(clause);
            }
            let mut solver = Solver::from_cnf(&cnf);
            match solver.solve(&[]) {
                SolveResult::Sat(model) => {
                    assert_eq!(cnf.eval(&model), Some(true), "round {round}: bad model");
                }
                SolveResult::Unsat => {
                    // Verify by brute force that it really is UNSAT.
                    let mut any = false;
                    for code in 0u32..(1 << num_vars) {
                        let assignment: Vec<bool> =
                            (0..num_vars).map(|i| (code >> i) & 1 == 1).collect();
                        if cnf.eval(&assignment) == Some(true) {
                            any = true;
                            break;
                        }
                    }
                    assert!(!any, "round {round}: solver said UNSAT but a model exists");
                }
            }
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses_handled() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(1), lit(1)]);
        s.add_clause([lit(2), lit(-2)]); // tautology, ignored
        assert!(s.solve(&[]).is_sat());
        assert_eq!(s.num_clauses(), 0); // unit went straight to the trail
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        assert!(s.solve(&[]).is_sat());
        s.add_clause([lit(-1)]);
        s.add_clause([lit(-2)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn fresh_ties_break_by_lowest_variable_index() {
        // All activities are zero on a fresh solver, so the old linear scan
        // decided the lowest-index unassigned variable first; the order heap
        // must reproduce that. With saved phase `false`, deciding ¬1 forces 2
        // from (1∨2), then ¬3 forces 4 from (3∨4).
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(3), lit(4)]);
        let model = s.solve(&[]).model().unwrap().to_vec();
        assert_eq!(model, vec![false, true, false, true]);
        assert_eq!(s.stats().decisions, 2, "one decision per clause");
    }

    #[test]
    fn heap_decisions_match_linear_reference_on_random_instances() {
        // `pick_branch_var` asserts heap-vs-linear-scan agreement on *every*
        // decision in debug builds; driving a batch of conflict-heavy random
        // instances (bumps, restarts, backtracking, incremental reuse)
        // exercises that assertion thoroughly.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..20 {
            let num_vars = 30;
            let mut solver = Solver::new();
            for _ in 0..120 {
                let clause: Vec<Lit> = (0..3)
                    .map(|_| Var(rng.gen_range(0..num_vars) as u32).lit(rng.gen_bool(0.5)))
                    .collect();
                solver.add_clause(clause);
            }
            let first = solver.solve(&[]);
            // Incremental re-solve under assumptions keeps the heap coherent
            // across backtrack_to(0) boundaries.
            let assumption = Var(0).lit(rng.gen_bool(0.5));
            let _ = solver.solve(&[assumption]);
            let second = solver.solve(&[]);
            assert_eq!(first.is_sat(), second.is_sat());
            assert!(solver.stats().decisions > 0);
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(-1), lit(-2)]);
        let _ = s.solve(&[]);
        assert!(s.stats().decisions > 0);
    }
}
