//! Reading and writing DIMACS CNF.
//!
//! Besides plain [`parse`]/[`write()`], the module supports *repro files* for
//! the differential test harness: [`write_repro`] serializes a CNF together
//! with an assumption set (as `c assume … 0` comment lines, so the file stays
//! valid DIMACS for any other tool), and [`parse_repro`] reads both back.
//! A failing fuzz instance dumped this way is a standalone, replayable file.

use std::error::Error;
use std::fmt;

use crate::types::{Cnf, Lit};

/// Error produced while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

fn err(line: usize, message: impl Into<String>) -> ParseDimacsError {
    ParseDimacsError {
        line,
        message: message.into(),
    }
}

/// Declared `p cnf` header contents.
struct Header {
    line: usize,
    vars: usize,
    clauses: usize,
}

fn parse_header(lineno: usize, line: &str) -> Result<Header, ParseDimacsError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() != 4 || toks[0] != "p" || toks[1] != "cnf" {
        return Err(err(
            lineno,
            format!("malformed header `{line}` (expected `p cnf <vars> <clauses>`)"),
        ));
    }
    let vars: usize = toks[2]
        .parse()
        .map_err(|_| err(lineno, format!("invalid variable count `{}`", toks[2])))?;
    let clauses: usize = toks[3]
        .parse()
        .map_err(|_| err(lineno, format!("invalid clause count `{}`", toks[3])))?;
    Ok(Header {
        line: lineno,
        vars,
        clauses,
    })
}

/// Parses DIMACS CNF text into a [`Cnf`].
///
/// The `p cnf <vars> <clauses>` header is optional, but when present it is
/// validated: it must be well-formed, appear at most once, and its declared
/// counts must match the body (no literal may reference a variable beyond
/// the declared count; the clause count must be exact). Comment lines start
/// with `c`. Clauses may span lines and are terminated by `0`.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] when a token is not an integer, the header
/// is malformed or duplicated, or the body contradicts the header.
pub fn parse(src: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut header: Option<Header> = None;
    let mut current: Vec<Lit> = Vec::new();
    let mut num_clauses = 0usize;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            if header.is_some() {
                return Err(err(lineno, "duplicate `p cnf` header"));
            }
            if num_clauses > 0 || !current.is_empty() {
                return Err(err(lineno, "`p cnf` header must precede all clauses"));
            }
            header = Some(parse_header(lineno, line)?);
            continue;
        }
        for tok in line.split_whitespace() {
            let value: i64 = tok
                .parse()
                .map_err(|_| err(lineno, format!("invalid literal `{tok}`")))?;
            if value == 0 {
                cnf.add_clause(current.drain(..));
                num_clauses += 1;
            } else {
                if let Some(h) = &header {
                    if value.unsigned_abs() > h.vars as u64 {
                        return Err(err(
                            lineno,
                            format!(
                                "literal `{value}` exceeds declared variable count {}",
                                h.vars
                            ),
                        ));
                    }
                }
                current.push(Lit::from_dimacs(value));
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(current);
        num_clauses += 1;
    }
    if let Some(h) = header {
        if num_clauses != h.clauses {
            return Err(err(
                h.line,
                format!(
                    "header declares {} clauses but the body has {num_clauses}",
                    h.clauses
                ),
            ));
        }
        cnf.reserve_vars(h.vars);
    }
    Ok(cnf)
}

/// Serializes a [`Cnf`] to DIMACS text.
#[must_use]
pub fn write(cnf: &Cnf) -> String {
    let mut out = format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for lit in clause {
            out.push_str(&lit.to_dimacs().to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

/// Serializes a CNF plus an assumption set as a standalone repro file.
///
/// The assumptions ride in `c assume <lits> 0` comment lines, so the output
/// is still plain DIMACS to any tool that ignores comments; [`parse_repro`]
/// recovers both parts. The differential harness dumps failing fuzz
/// instances in this format.
#[must_use]
pub fn write_repro(cnf: &Cnf, assumptions: &[Lit]) -> String {
    let mut out = String::new();
    if !assumptions.is_empty() {
        out.push_str("c assume");
        for lit in assumptions {
            out.push(' ');
            out.push_str(&lit.to_dimacs().to_string());
        }
        out.push_str(" 0\n");
    }
    out.push_str(&write(cnf));
    out
}

/// Parses a repro file produced by [`write_repro`], returning the CNF and
/// the assumption literals collected from every `c assume … 0` line.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on any error [`parse`] would report, or when
/// an `c assume` line carries a malformed literal.
pub fn parse_repro(src: &str) -> Result<(Cnf, Vec<Lit>), ParseDimacsError> {
    let mut assumptions = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let Some(rest) = line.strip_prefix("c assume") else {
            continue;
        };
        for tok in rest.split_whitespace() {
            let value: i64 = tok
                .parse()
                .map_err(|_| err(idx + 1, format!("invalid assumption literal `{tok}`")))?;
            if value != 0 {
                assumptions.push(Lit::from_dimacs(value));
            }
        }
    }
    let cnf = parse(src)?;
    Ok((cnf, assumptions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    #[test]
    fn parse_simple() {
        let cnf = parse("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.clauses()[0], vec![Var(0).positive(), Var(1).negative()]);
    }

    #[test]
    fn round_trip() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var(0).positive(), Var(2).negative()]);
        cnf.add_clause([Var(1).negative()]);
        let text = write(&cnf);
        let back = parse(&text).unwrap();
        assert_eq!(back.clauses(), cnf.clauses());
        assert_eq!(back.num_vars(), cnf.num_vars());
    }

    #[test]
    fn bad_token_is_error() {
        let err = parse("1 two 0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("two"));
    }

    #[test]
    fn clause_spanning_lines() {
        let cnf = parse("1 2\n3 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn malformed_headers_are_errors() {
        for (src, needle) in [
            ("p cnf 3\n1 0\n", "malformed header"),
            ("p dnf 3 1\n1 0\n", "malformed header"),
            ("p cnf three 1\n1 0\n", "invalid variable count"),
            ("p cnf 3 one\n1 0\n", "invalid clause count"),
            ("p cnf 3 1 extra\n1 0\n", "malformed header"),
            ("p cnf 3 1\np cnf 3 1\n1 0\n", "duplicate"),
            ("1 0\np cnf 3 1\n", "must precede"),
        ] {
            let e = parse(src).unwrap_err();
            assert!(
                e.message.contains(needle),
                "`{src}` → `{}` (wanted `{needle}`)",
                e.message
            );
        }
    }

    #[test]
    fn header_body_mismatches_are_errors() {
        let e = parse("p cnf 2 1\n1 -3 0\n").unwrap_err();
        assert!(e.message.contains("exceeds declared variable count"));
        let e = parse("p cnf 3 2\n1 2 0\n").unwrap_err();
        assert!(e.message.contains("declares 2 clauses"));
        let e = parse("p cnf 3 1\n1 0\n2 0\n").unwrap_err();
        assert!(e.message.contains("declares 1 clauses"));
    }

    #[test]
    fn header_reserves_unused_variables() {
        let cnf = parse("p cnf 5 1\n1 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 5);
    }

    #[test]
    fn repro_round_trip() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var(0).positive(), Var(1).negative()]);
        let assumptions = vec![Var(1).positive(), Var(0).negative()];
        let text = write_repro(&cnf, &assumptions);
        let (back, back_assumptions) = parse_repro(&text).unwrap();
        assert_eq!(back.clauses(), cnf.clauses());
        assert_eq!(back_assumptions, assumptions);
        // The repro file is also plain DIMACS (assumptions are comments).
        assert_eq!(parse(&text).unwrap().clauses(), cnf.clauses());
    }

    #[test]
    fn repro_without_assumptions_is_plain_dimacs() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var(0).positive()]);
        let text = write_repro(&cnf, &[]);
        assert_eq!(text, write(&cnf));
        let (_, assumptions) = parse_repro(&text).unwrap();
        assert!(assumptions.is_empty());
    }

    #[test]
    fn bad_assumption_literal_is_error() {
        let e = parse_repro("c assume 1 x 0\np cnf 1 1\n1 0\n").unwrap_err();
        assert!(e.message.contains("invalid assumption literal"));
    }
}
