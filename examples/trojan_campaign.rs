//! Trojan detection campaign: plant a population of randomly inserted,
//! SAT-validated hardware Trojans and measure how many are exposed by
//! DETERRENT patterns compared to an equal budget of random patterns.
//!
//! ```text
//! cargo run --example trojan_campaign
//! ```

use deterrent_repro::baselines::{RandomPatterns, TestGenerator};
use deterrent_repro::deterrent_core::{Deterrent, DeterrentConfig};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::sim::rare::RareNetAnalysis;
use deterrent_repro::trojan::{CoverageEvaluator, TrojanGenerator};

fn main() {
    let netlist = BenchmarkProfile::c5315().scaled(25).generate(9);
    let analysis = RareNetAnalysis::estimate(&netlist, 0.15, 8192, 2);
    println!(
        "design {}: {} gates, {} rare nets at threshold 0.15",
        netlist.name(),
        netlist.num_logic_gates(),
        analysis.len()
    );

    // Adversary: plant 40 two-net-trigger Trojans (each validated by SAT).
    let mut adversary = TrojanGenerator::new(&netlist, 1337);
    let trojans = adversary.sample_many(&analysis, 2, 40);
    println!("adversary planted {} valid Trojans", trojans.len());
    let evaluator = CoverageEvaluator::new(&netlist, trojans);

    // Defender A: DETERRENT.
    let mut config = DeterrentConfig::fast_preset();
    config.rareness_threshold = 0.15;
    let deterrent = Deterrent::new(&netlist, config).run_with_analysis(&analysis);
    let deterrent_report = evaluator.evaluate(&deterrent.patterns);

    // Defender B: the same number of random patterns.
    let random =
        RandomPatterns::new(deterrent.test_length().max(1), 7).generate(&netlist, &analysis);
    let random_report = evaluator.evaluate(&random);

    println!(
        "DETERRENT : {:>3} patterns -> {:>5.1}% trigger coverage",
        deterrent_report.test_length,
        deterrent_report.coverage_percent()
    );
    println!(
        "Random    : {:>3} patterns -> {:>5.1}% trigger coverage",
        random_report.test_length,
        random_report.coverage_percent()
    );
    println!(
        "At an equal pattern budget the RL-guided patterns expose {}x as many Trojans.",
        if random_report.detected == 0 {
            deterrent_report.detected as f64
        } else {
            deterrent_report.detected as f64 / random_report.detected as f64
        }
    );
}
