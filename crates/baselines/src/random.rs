//! Uniformly random test patterns.

use netlist::Netlist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::rare::RareNetAnalysis;
use sim::TestPattern;

use crate::TestGenerator;

/// The weakest baseline: a fixed budget of uniformly random patterns.
///
/// The paper sizes the random budget to match TGRL's test length; the bench
/// harness does the same.
#[derive(Debug, Clone)]
pub struct RandomPatterns {
    count: usize,
    seed: u64,
}

impl RandomPatterns {
    /// Creates a generator producing `count` random patterns from `seed`.
    #[must_use]
    pub fn new(count: usize, seed: u64) -> Self {
        Self { count, seed }
    }

    /// The configured pattern budget.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }
}

impl TestGenerator for RandomPatterns {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn generate(&mut self, netlist: &Netlist, _analysis: &RareNetAnalysis) -> Vec<TestPattern> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        TestPattern::random_batch(netlist.num_scan_inputs(), self.count, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn produces_requested_count() {
        let nl = samples::c17();
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.3);
        let mut gen = RandomPatterns::new(17, 3);
        let patterns = gen.generate(&nl, &analysis);
        assert_eq!(patterns.len(), 17);
        assert_eq!(gen.count(), 17);
        assert_eq!(gen.name(), "Random");
    }

    #[test]
    fn deterministic_per_seed() {
        let nl = samples::c17();
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.3);
        let a = RandomPatterns::new(5, 9).generate(&nl, &analysis);
        let b = RandomPatterns::new(5, 9).generate(&nl, &analysis);
        assert_eq!(a, b);
    }
}
