//! Campaign sweeps over the DETERRENT pipeline.
//!
//! The paper's evaluation is a *campaign*: the same pipeline swept over
//! many benchmarks, rareness thresholds θ, and seeds (Table 2 runs every
//! technique over eight designs; TARMAC/TGRL-style coverage harnesses
//! repeat that per seed). This crate turns the staged
//! [`deterrent_core::DeterrentSession`] API into exactly that kind of
//! engine:
//!
//! * [`CampaignPlan`] — a grid of [`NetlistSpec`]s × θ × seeds over one
//!   base [`deterrent_core::DeterrentConfig`], expanded in a deterministic
//!   order by [`CampaignPlan::cells`].
//! * [`CampaignPlan::run`] — schedules every cell on the deterministic
//!   parallel runtime ([`exec::Exec`]), one
//!   [`deterrent_core::DeterrentSession`] per cell, all sharing one
//!   (optionally disk-backed and size-bounded) [`ArtifactStore`]. Per-cell
//!   stage progress streams through a [`ProgressSink`]. The resulting
//!   [`CampaignReport`] contains only deterministic quantities, so its
//!   TSV/Markdown rendering is **bit-identical at any thread count** and
//!   across warm restarts from the cache.
//! * Binaries: `deterrent-campaign` (run a sweep from the command line)
//!   and `deterrent-cache` (`stats` / `gc` / `verify` maintenance of a
//!   cache directory; see the binary sources for flag tables).
//!
//! # Failure domains
//!
//! Every cell runs in its own failure domain:
//! [`CampaignPlan::run_with_policy`] wraps each attempt in
//! [`exec::catch_task`], retries with deterministic backoff
//! ([`RunPolicy::max_retries`]), enforces an optional per-cell wall-clock
//! deadline, and reports what happened in a [`CellOutcome`] column of the
//! report. A seeded [`deterrent_core::FaultPlan`] can inject panics and
//! timeouts into the domains (each site at most once), so the recovery
//! paths are ordinary tested code and a faulted run's report is
//! byte-identical to a clean run's in every data column. A
//! [`Checkpoint`] file records completed rows so a killed campaign
//! resumes without recomputing them; `fail_fast` / `max_failures` cancel
//! the remaining cells once real (non-recoverable) failures accumulate.
//!
//! # Example
//!
//! ```
//! use campaign::{CampaignPlan, NetlistSpec};
//! use deterrent_core::DeterrentConfig;
//! use netlist::synth::BenchmarkProfile;
//!
//! let plan = CampaignPlan {
//!     netlists: vec![NetlistSpec::new(BenchmarkProfile::c2670(), 20, 1)],
//!     thetas: vec![0.15, 0.2],
//!     seeds: vec![1, 2],
//!     base: DeterrentConfig::fast_preset(),
//!     cell_threads: 1,
//! };
//! // One netlist × two θ × two seeds = four cells, θ-major within a netlist.
//! let cells = plan.cells();
//! assert_eq!(cells.len(), 4);
//! assert_eq!(cells[0].theta, 0.15);
//! assert_eq!(cells[0].seed, 1);
//! assert_eq!(cells[3].theta, 0.2);
//! assert_eq!(cells[3].seed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod spec;
mod trace;

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use deterrent_core::{
    ArtifactStore, CacheEvents, DeterrentConfig, DeterrentResult, DeterrentSession, FaultKind,
    FaultPlan, RunObserver, Stage, StageMetrics, StoreCounters, QUIET_ENV_VAR,
};
use exec::{catch_task, split_seed, CancelToken, Exec, ExecPool, ExecStats};
use netlist::synth::BenchmarkProfile;
use netlist::Netlist;
use telemetry::{Counter, Span, SpanContext, Telemetry};

pub use checkpoint::{Checkpoint, SavedRow};
pub use spec::{base_config_for, PlanSpec};
pub use trace::{render_trace_line, StderrTraceSink};

/// Marker substring of the panic a [`RunPolicy::cell_deadline`] expiry
/// raises inside a cell's failure domain — how the retry loop tells a
/// deadline expiry apart from an ordinary panic and classifies it as
/// [`CellOutcome::TimedOut`].
pub const DEADLINE_MARKER: &str = "cell deadline exceeded";

/// One benchmark of a campaign: a synthetic profile, the divisor applied
/// to its paper-sized gate counts, and the generation seed.
#[derive(Debug, Clone)]
pub struct NetlistSpec {
    /// Display label (the profile's benchmark name).
    pub label: String,
    profile: BenchmarkProfile,
    /// Divisor applied to the profile (1 = paper-sized).
    pub scale: usize,
    /// Seed of the deterministic netlist generator.
    pub netlist_seed: u64,
}

impl NetlistSpec {
    /// A spec for `profile` shrunk by `scale` (1 = paper-sized), generated
    /// with `netlist_seed`.
    #[must_use]
    pub fn new(profile: BenchmarkProfile, scale: usize, netlist_seed: u64) -> Self {
        Self {
            label: profile.name.clone(),
            profile,
            scale,
            netlist_seed,
        }
    }

    /// Generates the netlist (deterministic in the spec).
    #[must_use]
    pub fn build(&self) -> Netlist {
        let profile = if self.scale <= 1 {
            self.profile.clone()
        } else {
            self.profile.scaled(self.scale)
        };
        profile.generate(self.netlist_seed)
    }
}

/// Looks up a benchmark profile by its lowercase name (`c2670`, `c5315`,
/// `c6288`, `c7552`, `s13207`, `s15850`, `s35932`, `mips`) — the names the
/// `deterrent-campaign --netlists` flag accepts.
#[must_use]
pub fn profile_by_name(name: &str) -> Option<BenchmarkProfile> {
    match name {
        "c2670" => Some(BenchmarkProfile::c2670()),
        "c5315" => Some(BenchmarkProfile::c5315()),
        "c6288" => Some(BenchmarkProfile::c6288()),
        "c7552" => Some(BenchmarkProfile::c7552()),
        "s13207" => Some(BenchmarkProfile::s13207()),
        "s15850" => Some(BenchmarkProfile::s15850()),
        "s35932" => Some(BenchmarkProfile::s35932()),
        "mips" => Some(BenchmarkProfile::mips()),
        _ => None,
    }
}

/// One cell of the expanded grid: which netlist, θ, and seed to run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Position in [`CampaignPlan::cells`] order (also the report row).
    pub index: usize,
    /// Label of the netlist spec.
    pub netlist: String,
    /// Index into [`CampaignPlan::netlists`].
    pub netlist_index: usize,
    /// Rareness threshold θ of this cell.
    pub theta: f64,
    /// Master pipeline seed of this cell.
    pub seed: u64,
}

/// A grid of pipeline runs: netlists × θ × seeds over one base config.
///
/// [`CampaignPlan::run`] executes the grid on the deterministic parallel
/// runtime with one shared [`ArtifactStore`], which is where campaigns pay
/// off: reruns (and overlapping grids) are served from the cache, and a
/// bounded cache (see [`deterrent_core::CachePolicy`]) keeps long sweeps
/// from growing the cache dir without limit.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// The benchmarks to sweep.
    pub netlists: Vec<NetlistSpec>,
    /// The rareness thresholds θ to sweep.
    pub thetas: Vec<f64>,
    /// The master seeds to sweep.
    pub seeds: Vec<u64>,
    /// Base configuration of every cell; each cell replaces only θ, the
    /// seed, and the thread knob.
    pub base: DeterrentConfig,
    /// Worker threads of each cell's *session* executor (0 is clamped to
    /// 1: campaign-level parallelism comes from the campaign executor, so
    /// cells default to serial sessions and results stay bit-identical
    /// whichever level the parallelism lives at).
    pub cell_threads: usize,
}

impl CampaignPlan {
    /// Expands the grid in deterministic report order: netlists outermost,
    /// then θ, then seeds.
    #[must_use]
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut cells = Vec::with_capacity(self.len());
        for (netlist_index, spec) in self.netlists.iter().enumerate() {
            for &theta in &self.thetas {
                for &seed in &self.seeds {
                    cells.push(CampaignCell {
                        index: cells.len(),
                        netlist: spec.label.clone(),
                        netlist_index,
                        theta,
                        seed,
                    });
                }
            }
        }
        cells
    }

    /// Number of cells in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.netlists.len() * self.thetas.len() * self.seeds.len()
    }

    /// `true` when the grid is empty along any axis.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs every cell of the grid on `exec` with the default
    /// [`RunPolicy`] (bounded retries, no deadline, no faults, no
    /// checkpoint), sharing `store` across all sessions and streaming
    /// progress to `sink`. The report rows are in [`CampaignPlan::cells`]
    /// order regardless of which thread ran which cell, and contain only
    /// deterministic quantities — rendering the report is bit-identical at
    /// any thread count and across warm restarts from a persistent cache.
    #[must_use]
    pub fn run(
        &self,
        store: &ArtifactStore,
        exec: &Exec,
        sink: &dyn ProgressSink,
    ) -> CampaignReport {
        self.run_with_policy(store, exec, sink, &RunPolicy::default())
    }

    /// Like [`CampaignPlan::run`], but with explicit fault-tolerance
    /// machinery: each cell runs in its own failure domain (panics are
    /// contained by [`exec::catch_task`] and retried up to
    /// [`RunPolicy::max_retries`] times with deterministic backoff), an
    /// optional per-cell wall-clock deadline converts runaway cells into
    /// [`CellOutcome::TimedOut`], a [`deterrent_core::FaultPlan`] injects
    /// deterministic panics/timeouts for testing, completed rows persist
    /// to a [`Checkpoint`] for kill-and-resume, and `fail_fast` /
    /// `max_failures` cancel the rest of the grid once terminal failures
    /// accumulate.
    ///
    /// Because injected faults fire at most once per cell and retried
    /// attempts recompute from the same deterministic inputs, every
    /// recovered cell's data columns are bit-identical to a fault-free
    /// run — only the outcome column records that recovery happened.
    #[must_use]
    pub fn run_with_policy(
        &self,
        store: &ArtifactStore,
        exec: &Exec,
        sink: &dyn ProgressSink,
        policy: &RunPolicy,
    ) -> CampaignReport {
        let netlists: Vec<Netlist> = self.netlists.iter().map(NetlistSpec::build).collect();
        let cells = self.cells();
        let checkpoint = policy.checkpoint.as_ref().map(Checkpoint::open);
        // A fresh token per run: cancellation never leaks across runs.
        let cancel = CancelToken::new();
        let failures = AtomicUsize::new(0);
        let tele = &policy.telemetry;
        let run_span = open_run_span(self, cells.len(), policy);
        let run_ctx = run_span.context();
        let counters_before = store.counters();
        let events_before = store.cache_events();
        let exec_before = exec.stats();
        let checkpoint_writes = tele.counter("campaign.checkpoint_writes");
        let checkpoint_write_failures = tele.counter("campaign.checkpoint_write_failures");
        let env = CellEnv {
            plan: self,
            netlists: &netlists,
            store,
            sink,
            policy,
            checkpoint: checkpoint.as_ref(),
            cancel: &cancel,
            failures: &failures,
            run_ctx: &run_ctx,
            checkpoint_writes: &checkpoint_writes,
            checkpoint_write_failures: &checkpoint_write_failures,
        };
        let results = exec.par_map(&cells, |_, cell| env.execute(cell));
        let report = CampaignReport { cells: results };
        finish_run_span(
            run_span,
            tele.is_enabled(),
            &report,
            store,
            &counters_before,
            &events_before,
            exec_before,
            exec.stats(),
        );
        report
    }

    /// Like [`CampaignPlan::run_with_policy`], but scheduled on a
    /// persistent [`ExecPool`] instead of per-run scoped threads — the
    /// runner a resident service (the `deterrent-serve` daemon) uses so
    /// sequential campaigns reuse one set of workers.
    ///
    /// The pool splits the cell list with the same static chunk rule as
    /// the scoped executor and merges rows in plan order, so for any given
    /// plan the report is **bit-identical** to [`CampaignPlan::run_with_policy`]
    /// at any thread count. In-flight cells are bounded by the pool's
    /// worker count. The progress sink is shared (`Arc`) rather than
    /// borrowed because pool tasks outlive the caller's stack frame.
    #[must_use]
    pub fn run_on_pool(
        &self,
        store: &ArtifactStore,
        pool: &ExecPool,
        sink: Arc<dyn ProgressSink + Send + Sync>,
        policy: &RunPolicy,
    ) -> CampaignReport {
        let cells = Arc::new(self.cells());
        let tele = &policy.telemetry;
        let run_span = open_run_span(self, cells.len(), policy);
        let counters_before = store.counters();
        let events_before = store.cache_events();
        let exec_before = pool.stats();
        let shared = Arc::new(PoolCellEnv {
            plan: self.clone(),
            netlists: self.netlists.iter().map(NetlistSpec::build).collect(),
            store: store.clone(),
            sink,
            policy: policy.clone(),
            checkpoint: policy.checkpoint.as_ref().map(Checkpoint::open),
            // A fresh token per run: cancellation never leaks across runs.
            cancel: CancelToken::new(),
            failures: AtomicUsize::new(0),
            run_ctx: run_span.context(),
            checkpoint_writes: tele.counter("campaign.checkpoint_writes"),
            checkpoint_write_failures: tele.counter("campaign.checkpoint_write_failures"),
        });
        let results = {
            let shared = Arc::clone(&shared);
            let cells = Arc::clone(&cells);
            pool.par_index_map(cells.len(), move |i| shared.env().execute(&cells[i]))
        };
        let report = CampaignReport { cells: results };
        finish_run_span(
            run_span,
            tele.is_enabled(),
            &report,
            store,
            &counters_before,
            &events_before,
            exec_before,
            pool.stats(),
        );
        report
    }

    /// One cell's failure domain: up to `1 + max_retries` attempts, each
    /// wrapped in [`exec::catch_task`], with deterministic seeded backoff
    /// between attempts. Fault-plan timeouts consume an attempt without
    /// consuming wall clock; fault-plan panics unwind through the same
    /// containment as real ones.
    #[allow(clippy::too_many_arguments)]
    fn run_cell(
        &self,
        cell: &CampaignCell,
        netlist: &Netlist,
        store: &ArtifactStore,
        sink: &dyn ProgressSink,
        policy: &RunPolicy,
        key: u64,
        cell_ctx: &SpanContext,
    ) -> CellResult {
        let tele = &policy.telemetry;
        let mut last_failure: Option<AttemptFailure> = None;
        for attempt in 0..=policy.max_retries {
            let mut attempt_span = tele.child_span(cell_ctx, &format!("attempt.{attempt}"));
            attempt_span.attr_u64("attempt", u64::from(attempt));
            if attempt > 0 {
                // Seeded backoff: the duration is a pure function of
                // (cell key, attempt) — wall clock never enters the
                // decision, so retried runs stay deterministic.
                let millis = 1 + split_seed(key ^ BACKOFF_SALT, u64::from(attempt)) % 8;
                attempt_span.attr_u64("backoff_ms", millis);
                std::thread::sleep(Duration::from_millis(millis));
            }
            if let Some(plan) = &policy.faults {
                if plan.should_inject(FaultKind::CellTimeout, key) {
                    // Simulated deadline expiry: a timed-out attempt that
                    // consumes no wall clock.
                    attempt_span.attr_str("result", "timeout");
                    attempt_span.attr_bool("injected", true);
                    attempt_span.close();
                    last_failure = Some(AttemptFailure::Timeout);
                    continue;
                }
            }
            let attempt_ctx = attempt_span.context();
            let attempt_tele = tele.clone();
            let attempt_result = catch_task(cell.index, move || {
                if let Some(plan) = &policy.faults {
                    if plan.should_inject(FaultKind::CellPanic, key) {
                        panic!("injected cell fault (plan seed {})", plan.seed());
                    }
                }
                let config = self
                    .base
                    .clone()
                    .with_threshold(cell.theta)
                    .with_seed(cell.seed)
                    .with_threads(self.cell_threads.max(1));
                let mut session = DeterrentSession::with_store(netlist, config, store.clone());
                session.set_telemetry(attempt_tele, Some(attempt_ctx));
                session.add_observer(Box::new(CellObserver { sink, cell }));
                if let Some(limit) = policy.cell_deadline {
                    session.add_observer(Box::new(DeadlineObserver::new(limit)));
                }
                session.run()
            });
            match attempt_result {
                Ok(result) => {
                    let outcome = if attempt == 0 {
                        CellOutcome::Ok
                    } else {
                        CellOutcome::Retried(attempt)
                    };
                    attempt_span.attr_str("result", "ok");
                    // Executor totals depend on which session computed the
                    // shared artifacts, so they are nondeterministic facts.
                    attempt_span.vary_u64("exec_calls", result.metrics.exec_stats.calls);
                    attempt_span.vary_u64("exec_tasks", result.metrics.exec_stats.tasks);
                    attempt_span.close();
                    return CellResult::new(cell, netlist, &result, outcome);
                }
                Err(err) => {
                    let message = err
                        .panic_message()
                        .unwrap_or("attempt cancelled")
                        .to_string();
                    let failure = if message.contains(DEADLINE_MARKER) {
                        AttemptFailure::Timeout
                    } else {
                        AttemptFailure::Panic(message)
                    };
                    attempt_span.attr_str(
                        "result",
                        match failure {
                            AttemptFailure::Timeout => "timeout",
                            AttemptFailure::Panic(_) => "panic",
                        },
                    );
                    if let AttemptFailure::Panic(message) = &failure {
                        attempt_span.vary_str("error", message);
                    }
                    attempt_span.close();
                    last_failure = Some(failure);
                }
            }
        }
        let outcome = match last_failure {
            Some(AttemptFailure::Timeout) => CellOutcome::TimedOut,
            Some(AttemptFailure::Panic(message)) => CellOutcome::Failed(message),
            None => CellOutcome::Failed("no attempts ran".to_string()),
        };
        CellResult::unrun(cell, netlist, outcome)
    }

    /// Content fingerprint of one cell: netlist spec (label, scale,
    /// generation seed) ⊕ the semantic fields of the cell's effective
    /// config (θ and the master seed included;
    /// [`DeterrentConfig::content_fingerprint`] excludes threads and cache
    /// knobs). This is the checkpoint row key and the fault-injection site
    /// identity, so both survive replanning as long as the cell means the
    /// same computation.
    fn cell_key(&self, cell: &CampaignCell) -> u64 {
        let spec = &self.netlists[cell.netlist_index];
        let config_fp = self
            .base
            .clone()
            .with_threshold(cell.theta)
            .with_seed(cell.seed)
            .content_fingerprint();
        let mut hash = fnv1a_bytes(0xcbf2_9ce4_8422_2325, b"campaign/cell");
        hash = fnv1a_bytes(hash, spec.label.as_bytes());
        for v in [
            spec.scale as u64,
            spec.netlist_seed,
            cell.theta.to_bits(),
            cell.seed,
            config_fp,
        ] {
            hash = fnv1a_bytes(hash, &v.to_le_bytes());
        }
        hash
    }
}

/// Salt decorrelating backoff durations from fault-plan decisions on the
/// same cell key.
const BACKOFF_SALT: u64 = 0xBAC0_FF5A_17ED_0001;

fn fnv1a_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why one attempt of a cell failed (the loop keeps only the last).
enum AttemptFailure {
    Timeout,
    Panic(String),
}

/// Fault-tolerance knobs of [`CampaignPlan::run_with_policy`].
#[derive(Debug, Clone)]
pub struct RunPolicy {
    /// Retries after a failed attempt (so `1 + max_retries` attempts per
    /// cell). Default 2 — enough to absorb one injected timeout *and* one
    /// injected panic on the same cell.
    pub max_retries: u32,
    /// Wall-clock budget of one attempt, enforced at stage boundaries by
    /// a [`RunObserver`] that panics with [`DEADLINE_MARKER`] (contained
    /// and classified as [`CellOutcome::TimedOut`]). `None` = unlimited.
    pub cell_deadline: Option<Duration>,
    /// Cancel every not-yet-started cell after the first terminal
    /// (non-recovered) cell failure.
    pub fail_fast: bool,
    /// Cancel after this many terminal cell failures. `None` = never.
    pub max_failures: Option<usize>,
    /// Deterministic fault-injection schedule for the cell failure
    /// domains. (Thread the same plan into the store via
    /// [`ArtifactStore::with_disk_policy_faults`] to also fault the disk
    /// tier.)
    pub faults: Option<FaultPlan>,
    /// Checkpoint file recording completed rows for kill-and-resume.
    pub checkpoint: Option<PathBuf>,
    /// Telemetry handle the run emits spans and counters through. The
    /// default (disabled) handle costs nothing and emits nothing; attach
    /// sinks with [`telemetry::Telemetry::new`] to capture a trace. All
    /// telemetry is out-of-band: the [`CampaignReport`] is byte-identical
    /// with or without it, at any thread count.
    pub telemetry: Telemetry,
    /// Parent span context for the root `campaign` span. `None` (the
    /// default) makes it a root span; the serve daemon sets this to its
    /// per-job `serve.job` span so streamed traces nest the whole campaign
    /// under the job that requested it.
    pub span_parent: Option<SpanContext>,
}

impl Default for RunPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            cell_deadline: None,
            fail_fast: false,
            max_failures: None,
            faults: None,
            checkpoint: None,
            telemetry: Telemetry::disabled(),
            span_parent: None,
        }
    }
}

/// `true` when [`QUIET_ENV_VAR`] requests stderr silence (`"1"`, after
/// trimming). Gates the checkpoint-write warning; the failure is still
/// counted in the `campaign.checkpoint_write_failures` telemetry counter.
fn quiet_requested() -> bool {
    std::env::var(QUIET_ENV_VAR).is_ok_and(|v| v.trim() == "1")
}

/// Everything one cell's failure domain reads, borrowed from whichever
/// runner owns the storage — [`CampaignPlan::run_with_policy`] borrows
/// straight from its stack frame, [`CampaignPlan::run_on_pool`] from an
/// [`Arc`]-shared [`PoolCellEnv`]. Keeping a single `execute` body is what
/// guarantees the two runners produce identical rows, spans, checkpoint
/// writes, and cancellation behavior.
struct CellEnv<'a> {
    plan: &'a CampaignPlan,
    netlists: &'a [Netlist],
    store: &'a ArtifactStore,
    sink: &'a dyn ProgressSink,
    policy: &'a RunPolicy,
    checkpoint: Option<&'a Checkpoint>,
    cancel: &'a CancelToken,
    failures: &'a AtomicUsize,
    run_ctx: &'a SpanContext,
    checkpoint_writes: &'a Counter,
    checkpoint_write_failures: &'a Counter,
}

impl CellEnv<'_> {
    /// Runs one cell end to end: checkpoint restore, cancellation check,
    /// the retry loop ([`CampaignPlan::run_cell`]), checkpoint recording,
    /// and failure accounting for `fail_fast` / `max_failures`.
    fn execute(&self, cell: &CampaignCell) -> CellResult {
        let tele = &self.policy.telemetry;
        let key = self.plan.cell_key(cell);
        let netlist = &self.netlists[cell.netlist_index];
        let mut cell_span = tele.child_span(self.run_ctx, &format!("cell.{}", cell.index));
        cell_span.attr_u64("index", cell.index as u64);
        cell_span.attr_str("netlist", &cell.netlist);
        cell_span.attr_f64("theta", cell.theta);
        cell_span.attr_u64("seed", cell.seed);
        if let Some(saved) = self.checkpoint.and_then(|c| c.get(key)) {
            let row = CellResult::from_saved(cell, &saved);
            cell_span.attr_bool("restored", true);
            close_cell_span(cell_span, &row);
            self.sink.cell_finished(&row);
            return row;
        }
        if self.cancel.is_cancelled() {
            let row =
                CellResult::unrun(cell, netlist, CellOutcome::Failed("cancelled".to_string()));
            // Which cells a fail-fast cancellation catches unstarted
            // depends on scheduling, so the span opts out of the
            // canonical (thread-invariance) projection.
            cell_span.attr_bool("cancelled", true);
            cell_span.vary(telemetry::NONDET_VARY_KEY, telemetry::Value::Bool(true));
            close_cell_span(cell_span, &row);
            return row;
        }
        self.sink.cell_started(cell);
        let mut start_mark = cell_span.child("cell_start");
        start_mark.attr_u64("index", cell.index as u64);
        start_mark.attr_str("netlist", &cell.netlist);
        start_mark.attr_f64("theta", cell.theta);
        start_mark.attr_u64("seed", cell.seed);
        start_mark.mark();
        let row = self.plan.run_cell(
            cell,
            netlist,
            self.store,
            self.sink,
            self.policy,
            key,
            &cell_span.context(),
        );
        if row.outcome.recovered() {
            if let Some(ckpt) = self.checkpoint {
                match ckpt.record(key, row.to_saved()) {
                    Ok(()) => self.checkpoint_writes.inc(1),
                    Err(e) => {
                        self.checkpoint_write_failures.inc(1);
                        if !quiet_requested() {
                            eprintln!("[campaign] warning: checkpoint write failed: {e}");
                        }
                    }
                }
            }
        } else {
            let seen = self.failures.fetch_add(1, Ordering::Relaxed) + 1;
            if self.policy.fail_fast || self.policy.max_failures.is_some_and(|limit| seen >= limit)
            {
                self.cancel.cancel();
            }
        }
        close_cell_span(cell_span, &row);
        self.sink.cell_finished(&row);
        row
    }
}

/// The owned (`'static`) storage behind [`CellEnv`] for pool scheduling:
/// pool tasks outlive the caller's stack frame, so everything a cell
/// touches lives in one [`Arc`]-shared bundle for the duration of the run.
struct PoolCellEnv {
    plan: CampaignPlan,
    netlists: Vec<Netlist>,
    store: ArtifactStore,
    sink: Arc<dyn ProgressSink + Send + Sync>,
    policy: RunPolicy,
    checkpoint: Option<Checkpoint>,
    cancel: CancelToken,
    failures: AtomicUsize,
    run_ctx: SpanContext,
    checkpoint_writes: Counter,
    checkpoint_write_failures: Counter,
}

impl PoolCellEnv {
    /// Borrows the bundle as the shared per-cell environment.
    fn env(&self) -> CellEnv<'_> {
        CellEnv {
            plan: &self.plan,
            netlists: &self.netlists,
            store: &self.store,
            sink: self.sink.as_ref(),
            policy: &self.policy,
            checkpoint: self.checkpoint.as_ref(),
            cancel: &self.cancel,
            failures: &self.failures,
            run_ctx: &self.run_ctx,
            checkpoint_writes: &self.checkpoint_writes,
            checkpoint_write_failures: &self.checkpoint_write_failures,
        }
    }
}

/// Opens the root `campaign` span with the grid-shape attrs — parented
/// under [`RunPolicy::span_parent`] when set (the serve daemon parents
/// campaigns under its per-job `serve.job` span), a root span otherwise.
fn open_run_span(plan: &CampaignPlan, cells: usize, policy: &RunPolicy) -> Span {
    let tele = &policy.telemetry;
    let mut run_span = match &policy.span_parent {
        Some(parent) => tele.child_span(parent, "campaign"),
        None => tele.span("campaign"),
    };
    run_span.attr_u64("cells", cells as u64);
    run_span.attr_u64("netlists", plan.netlists.len() as u64);
    run_span.attr_u64("thetas", plan.thetas.len() as u64);
    run_span.attr_u64("seeds", plan.seeds.len() as u64);
    run_span
}

/// Closes the root `campaign` span with the outcome tally in `attrs` and
/// the store/cache/executor deltas in `vary` — the deltas go in `vary`
/// because the store may be shared with other concurrent work, and which
/// tier served an artifact depends on scheduling when a disk tier backs
/// the run.
#[allow(clippy::too_many_arguments)]
fn finish_run_span(
    mut run_span: Span,
    enabled: bool,
    report: &CampaignReport,
    store: &ArtifactStore,
    counters_before: &StoreCounters,
    events_before: &CacheEvents,
    exec_before: ExecStats,
    exec_after: ExecStats,
) {
    if enabled {
        let mut tally = [0u64; 4];
        for row in &report.cells {
            tally[match row.outcome {
                CellOutcome::Ok => 0,
                CellOutcome::Retried(_) => 1,
                CellOutcome::TimedOut => 2,
                CellOutcome::Failed(_) => 3,
            }] += 1;
        }
        run_span.attr_u64("ok", tally[0]);
        run_span.attr_u64("retried", tally[1]);
        run_span.attr_u64("timeout", tally[2]);
        run_span.attr_u64("failed", tally[3]);
        let counters_after = store.counters();
        for (stage, after) in counters_after.stages() {
            let before = counters_before.stage(stage);
            let name = stage.name();
            run_span.vary_u64(
                &format!("store.{name}.mem_hits"),
                after.hits.saturating_sub(before.hits),
            );
            run_span.vary_u64(
                &format!("store.{name}.computed"),
                after.misses.saturating_sub(before.misses),
            );
            run_span.vary_u64(
                &format!("store.{name}.disk_hits"),
                after.disk_hits.saturating_sub(before.disk_hits),
            );
            run_span.vary_u64(
                &format!("store.{name}.disk_misses"),
                after.disk_misses.saturating_sub(before.disk_misses),
            );
            run_span.vary_u64(
                &format!("store.{name}.disk_corrupt"),
                after.disk_corrupt.saturating_sub(before.disk_corrupt),
            );
        }
        let events_after = store.cache_events();
        run_span.vary_u64(
            "cache.corrupt",
            events_after.corrupt.saturating_sub(events_before.corrupt),
        );
        run_span.vary_u64(
            "cache.version_mismatch",
            events_after
                .version_mismatch
                .saturating_sub(events_before.version_mismatch),
        );
        run_span.vary_u64("cache.io", events_after.io.saturating_sub(events_before.io));
        run_span.vary_u64(
            "cache.evictions",
            events_after
                .budget_evictions
                .saturating_sub(events_before.budget_evictions),
        );
        run_span.vary_u64(
            "exec.calls",
            exec_after.calls.saturating_sub(exec_before.calls),
        );
        run_span.vary_u64(
            "exec.tasks",
            exec_after.tasks.saturating_sub(exec_before.tasks),
        );
        run_span.vary_u64(
            "exec.busy_nanos",
            exec_after.busy_nanos.saturating_sub(exec_before.busy_nanos),
        );
        run_span.vary_u64(
            "exec.panics_caught",
            exec_after
                .panics_caught
                .saturating_sub(exec_before.panics_caught),
        );
        run_span.vary_u64(
            "exec.tasks_cancelled",
            exec_after
                .tasks_cancelled
                .saturating_sub(exec_before.tasks_cancelled),
        );
    }
    run_span.close();
}

/// Closes a cell span with the row's outcome and data columns. Outcome
/// kind, retry count, and the deterministic data columns go in `attrs`
/// (thread-count invariant); a failure's free-text reason goes in `vary`
/// (panic messages can carry durations).
fn close_cell_span(mut span: Span, row: &CellResult) {
    span.attr_str("outcome", row.outcome.kind());
    if let CellOutcome::Retried(n) = row.outcome {
        span.attr_u64("retries", u64::from(n));
    }
    if let CellOutcome::Failed(reason) = &row.outcome {
        span.vary_str("error", reason);
    }
    span.attr_u64("gates", row.gates as u64);
    span.attr_u64("rare_nets", row.rare_nets as u64);
    span.attr_u64("sets", row.sets as u64);
    span.attr_u64("patterns", row.patterns as u64);
    span.attr_u64("max_compatible_set", row.max_compatible_set as u64);
    span.close();
}

/// A [`RunObserver`] that enforces a per-attempt wall-clock deadline at
/// stage boundaries: the first stage to finish past the limit panics with
/// [`DEADLINE_MARKER`], which the cell's failure domain contains and
/// classifies as [`CellOutcome::TimedOut`]. Checking at stage boundaries
/// keeps the session code free of cancellation plumbing while still
/// bounding every cell to roughly one stage past its budget.
struct DeadlineObserver {
    start: Instant,
    limit: Duration,
}

impl DeadlineObserver {
    fn new(limit: Duration) -> Self {
        Self {
            start: Instant::now(),
            limit,
        }
    }
}

impl RunObserver for DeadlineObserver {
    fn stage_started(&mut self, _stage: Stage) {}

    fn stage_finished(&mut self, metrics: &StageMetrics) {
        let elapsed = self.start.elapsed();
        if elapsed > self.limit {
            panic!(
                "{DEADLINE_MARKER}: {elapsed:?} > {:?} after {}",
                self.limit, metrics.stage
            );
        }
    }
}

/// How one cell's failure domain concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// Succeeded on the first attempt.
    Ok,
    /// Succeeded after this many retries; the data columns are
    /// bit-identical to a first-try success.
    Retried(u32),
    /// Every attempt ran past the cell deadline (real or injected); the
    /// data columns are zero.
    TimedOut,
    /// Every attempt panicked; the string is the last panic message. The
    /// data columns are zero.
    Failed(String),
}

impl CellOutcome {
    /// `true` when the cell produced its result (first try or retried) —
    /// the outcomes a checkpoint persists and a chaos gate accepts.
    #[must_use]
    pub fn recovered(&self) -> bool {
        matches!(self, Self::Ok | Self::Retried(_))
    }

    /// The outcome's kind as a static token: `ok`, `retried`, `timeout`,
    /// or `failed`. This is what cell spans carry in their deterministic
    /// `attrs`; the retry count and failure reason ride separately (the
    /// count as another attr, the free-text reason in `vary`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Retried(_) => "retried",
            Self::TimedOut => "timeout",
            Self::Failed(_) => "failed",
        }
    }

    /// The outcome as the report's single-token column value: `ok`,
    /// `retried:N`, `timeout`, or `failed:<reason>` (reason whitespace
    /// flattened so the TSV stays one row per cell).
    #[must_use]
    pub fn column(&self) -> String {
        match self {
            Self::Ok => "ok".to_string(),
            Self::Retried(n) => format!("retried:{n}"),
            Self::TimedOut => "timeout".to_string(),
            Self::Failed(reason) => {
                format!("failed:{}", reason.replace(['\t', '\n', '\r'], " "))
            }
        }
    }
}

/// Deterministic outcome of one cell, a row of the [`CampaignReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell that produced this row.
    pub cell: CampaignCell,
    /// Logic gates of the (scaled) netlist.
    pub gates: usize,
    /// Rare nets found at this cell's θ.
    pub rare_nets: usize,
    /// Compatible sets selected (`k` largest distinct).
    pub sets: usize,
    /// Test patterns generated.
    pub patterns: usize,
    /// Largest compatible set harvested.
    pub max_compatible_set: usize,
    /// How the cell's failure domain concluded.
    pub outcome: CellOutcome,
}

impl CellResult {
    fn new(
        cell: &CampaignCell,
        netlist: &Netlist,
        result: &DeterrentResult,
        outcome: CellOutcome,
    ) -> Self {
        Self {
            cell: cell.clone(),
            gates: netlist.num_logic_gates(),
            rare_nets: result.rare_nets.len(),
            sets: result.sets.len(),
            patterns: result.patterns.len(),
            max_compatible_set: result.metrics.max_compatible_set,
            outcome,
        }
    }

    /// A row for a cell that produced no result (timed out, failed, or
    /// cancelled): data columns zero, gates still known from the netlist.
    fn unrun(cell: &CampaignCell, netlist: &Netlist, outcome: CellOutcome) -> Self {
        Self {
            cell: cell.clone(),
            gates: netlist.num_logic_gates(),
            rare_nets: 0,
            sets: 0,
            patterns: 0,
            max_compatible_set: 0,
            outcome,
        }
    }

    /// A row restored from a checkpoint without recomputing the cell.
    fn from_saved(cell: &CampaignCell, saved: &SavedRow) -> Self {
        Self {
            cell: cell.clone(),
            gates: saved.gates as usize,
            rare_nets: saved.rare_nets as usize,
            sets: saved.sets as usize,
            patterns: saved.patterns as usize,
            max_compatible_set: saved.max_compatible_set as usize,
            outcome: if saved.retries == 0 {
                CellOutcome::Ok
            } else {
                CellOutcome::Retried(saved.retries)
            },
        }
    }

    /// The checkpoint-persisted slice of this row (recovered rows only).
    fn to_saved(&self) -> SavedRow {
        SavedRow {
            retries: match self.outcome {
                CellOutcome::Retried(n) => n,
                _ => 0,
            },
            gates: self.gates as u64,
            rare_nets: self.rare_nets as u64,
            sets: self.sets as u64,
            patterns: self.patterns as u64,
            max_compatible_set: self.max_compatible_set as u64,
        }
    }
}

/// The collected rows of a campaign, in plan order.
///
/// Rows hold only quantities that are bit-identical at any thread count
/// and across warm cache restarts — no wall clocks, no cache counters —
/// so [`CampaignReport::to_tsv`] / [`CampaignReport::to_markdown`] output
/// can be `cmp`-gated in CI. Cache-tier counters belong on stderr (see
/// [`ArtifactStore::summary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// One row per cell, in [`CampaignPlan::cells`] order.
    pub cells: Vec<CellResult>,
}

impl CampaignReport {
    const COLUMNS: [&'static str; 9] = [
        "netlist",
        "theta",
        "seed",
        "gates",
        "rare_nets",
        "sets",
        "patterns",
        "max_compatible_set",
        "outcome",
    ];

    fn row(r: &CellResult) -> [String; 9] {
        [
            r.cell.netlist.clone(),
            format!("{}", r.cell.theta),
            format!("{}", r.cell.seed),
            format!("{}", r.gates),
            format!("{}", r.rare_nets),
            format!("{}", r.sets),
            format!("{}", r.patterns),
            format!("{}", r.max_compatible_set),
            r.outcome.column(),
        ]
    }

    /// `true` when every cell recovered (outcome `ok` or `retried:N`) —
    /// the success criterion of chaos gates and the campaign CLI's exit
    /// code.
    #[must_use]
    pub fn all_recovered(&self) -> bool {
        self.cells.iter().all(|r| r.outcome.recovered())
    }

    /// One-line outcome tally, e.g. `ok=6 retried=2 timeout=0 failed=0`.
    #[must_use]
    pub fn outcome_summary(&self) -> String {
        let (mut ok, mut retried, mut timeout, mut failed) = (0u64, 0u64, 0u64, 0u64);
        for r in &self.cells {
            match r.outcome {
                CellOutcome::Ok => ok += 1,
                CellOutcome::Retried(_) => retried += 1,
                CellOutcome::TimedOut => timeout += 1,
                CellOutcome::Failed(_) => failed += 1,
            }
        }
        format!("ok={ok} retried={retried} timeout={timeout} failed={failed}")
    }

    /// The report as tab-separated values with a header row.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = Self::COLUMNS.join("\t");
        out.push('\n');
        for r in &self.cells {
            out.push_str(&Self::row(r).join("\t"));
            out.push('\n');
        }
        out
    }

    /// The report as a GitHub-flavoured Markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", Self::COLUMNS.join(" | "));
        let _ = writeln!(out, "|{}", "---|".repeat(Self::COLUMNS.len()));
        for r in &self.cells {
            let _ = writeln!(out, "| {} |", Self::row(r).join(" | "));
        }
        out
    }
}

/// Receiver of campaign progress. Implementations must be [`Sync`]: cells
/// run on worker threads and report concurrently (events from different
/// cells interleave; events of one cell arrive in order). Progress is
/// strictly passive — results are identical with any sink.
pub trait ProgressSink: Sync {
    /// A cell is about to run.
    fn cell_started(&self, cell: &CampaignCell) {
        let _ = cell;
    }

    /// A pipeline stage of `cell` finished (cache hits included).
    fn stage_finished(&self, cell: &CampaignCell, metrics: &StageMetrics) {
        let _ = (cell, metrics);
    }

    /// A cell finished with `result`.
    fn cell_finished(&self, result: &CellResult) {
        let _ = result;
    }
}

/// A [`ProgressSink`] that reports nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentProgress;

impl ProgressSink for SilentProgress {}

/// A [`ProgressSink`] printing one stderr line per stage and per cell.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrProgress;

impl ProgressSink for StderrProgress {
    fn cell_started(&self, cell: &CampaignCell) {
        eprintln!(
            "{}",
            trace::render_cell_start(
                cell.index,
                &cell.netlist,
                &cell.theta.to_string(),
                cell.seed
            )
        );
    }

    fn stage_finished(&self, cell: &CampaignCell, metrics: &StageMetrics) {
        eprintln!(
            "{}",
            trace::render_stage_finished(
                cell.index,
                metrics.stage.name(),
                metrics.cache_hit,
                metrics.wall_seconds
            )
        );
    }

    fn cell_finished(&self, result: &CellResult) {
        eprintln!(
            "{}",
            trace::render_cell_done(
                result.cell.index,
                result.rare_nets,
                result.sets,
                result.patterns
            )
        );
    }
}

/// Forwards one session's [`RunObserver`] events to the campaign's
/// [`ProgressSink`], tagged with the cell.
struct CellObserver<'s> {
    sink: &'s dyn ProgressSink,
    cell: &'s CampaignCell,
}

impl RunObserver for CellObserver<'_> {
    fn stage_started(&mut self, _stage: Stage) {}

    fn stage_finished(&mut self, metrics: &StageMetrics) {
        self.sink.stage_finished(self.cell, metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> CampaignPlan {
        CampaignPlan {
            netlists: vec![
                NetlistSpec::new(BenchmarkProfile::c2670(), 25, 3),
                NetlistSpec::new(BenchmarkProfile::c5315(), 30, 3),
            ],
            thetas: vec![0.18, 0.22],
            seeds: vec![7, 8],
            base: DeterrentConfig::fast_preset()
                .with_probability_patterns(1024)
                .with_episodes(12)
                .with_eval_rollouts(4)
                .with_k_patterns(4),
            cell_threads: 1,
        }
    }

    #[test]
    fn cells_expand_in_deterministic_order() {
        let plan = tiny_plan();
        let cells = plan.cells();
        assert_eq!(cells.len(), plan.len());
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].netlist, "c2670");
        assert_eq!((cells[0].theta, cells[0].seed), (0.18, 7));
        assert_eq!((cells[1].theta, cells[1].seed), (0.18, 8));
        assert_eq!((cells[2].theta, cells[2].seed), (0.22, 7));
        assert_eq!(cells[7].netlist, "c5315");
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn report_is_bit_identical_at_any_thread_count() {
        let plan = tiny_plan();
        let serial = plan.run(&ArtifactStore::new(), &Exec::new(1), &SilentProgress);
        let parallel = plan.run(&ArtifactStore::new(), &Exec::new(4), &SilentProgress);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_tsv(), parallel.to_tsv());
        assert_eq!(serial.to_markdown(), parallel.to_markdown());
        assert_eq!(serial.cells.len(), 8);
    }

    #[test]
    fn shared_store_makes_reruns_warm() {
        let plan = tiny_plan();
        let store = ArtifactStore::new();
        let exec = Exec::new(1);
        let cold = plan.run(&store, &exec, &SilentProgress);
        let misses_after_cold = store.counters().total_misses();
        assert!(misses_after_cold > 0);
        let warm = plan.run(&store, &exec, &SilentProgress);
        assert_eq!(cold, warm, "warm rerun must reproduce the report");
        assert_eq!(
            store.counters().total_misses(),
            misses_after_cold,
            "the rerun must not compute anything new"
        );
    }

    #[test]
    fn progress_reaches_the_sink() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Counting {
            started: Mutex<usize>,
            stages: Mutex<usize>,
            finished: Mutex<usize>,
        }
        impl ProgressSink for Counting {
            fn cell_started(&self, _cell: &CampaignCell) {
                *self.started.lock().unwrap() += 1;
            }
            fn stage_finished(&self, _cell: &CampaignCell, _metrics: &StageMetrics) {
                *self.stages.lock().unwrap() += 1;
            }
            fn cell_finished(&self, _result: &CellResult) {
                *self.finished.lock().unwrap() += 1;
            }
        }

        let mut plan = tiny_plan();
        plan.netlists.truncate(1);
        plan.thetas.truncate(1);
        let sink = Counting::default();
        let _ = plan.run(&ArtifactStore::new(), &Exec::new(2), &sink);
        assert_eq!(*sink.started.lock().unwrap(), 2);
        assert_eq!(*sink.finished.lock().unwrap(), 2);
        // Five stages per cell (empty-graph cells emit fewer; θ=0.18 on
        // c2670/25 finds rare nets, so all five run).
        assert!(*sink.stages.lock().unwrap() >= 2 * 2);
    }

    /// A smaller grid for the fault-tolerance tests: two cells, one
    /// netlist.
    fn two_cell_plan() -> CampaignPlan {
        let mut plan = tiny_plan();
        plan.netlists.truncate(1);
        plan.seeds.truncate(1);
        plan
    }

    /// The report TSV minus the outcome column — the projection that must
    /// be byte-identical between clean and faulted runs.
    fn data_projection(tsv: &str) -> String {
        tsv.lines()
            .map(|line| match line.rfind('\t') {
                Some(cut) => &line[..cut],
                None => line,
            })
            .fold(String::new(), |mut out, line| {
                out.push_str(line);
                out.push('\n');
                out
            })
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "deterrent-campaign-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn faulted_run_recovers_bit_identical_at_any_thread_count() {
        let plan = two_cell_plan();
        let cache = temp_dir("chaos");
        let _ = std::fs::remove_dir_all(&cache);

        // Clean cold run populates the disk tier and fixes the expected
        // data bytes.
        let clean_store = ArtifactStore::with_disk(&cache);
        let clean = plan.run(&clean_store, &Exec::new(1), &SilentProgress);
        assert!(clean.all_recovered());
        let expected = data_projection(&clean.to_tsv());

        // Warm faulted runs: fresh memory tier, same disk tier, so every
        // lookup exercises the faulted disk path; cell panics and
        // timeouts fire on top. Each run gets a fresh plan instance (the
        // fire-once state must not leak between runs).
        let spec = "seed=11,panic=1000,timeout=1000,corrupt=800,io=300,evict=500";
        for threads in [1, 4] {
            let faults = deterrent_core::FaultPlan::parse(spec).expect("spec");
            let store = ArtifactStore::with_disk_policy_faults(
                &cache,
                deterrent_core::CachePolicy::default(),
                Some(faults.clone()),
            );
            let policy = RunPolicy {
                faults: Some(faults.clone()),
                ..RunPolicy::default()
            };
            let report =
                plan.run_with_policy(&store, &Exec::new(threads), &SilentProgress, &policy);
            assert!(
                report.all_recovered(),
                "fire-once faults always heal (threads={threads}): {}",
                report.outcome_summary()
            );
            assert_eq!(
                data_projection(&report.to_tsv()),
                expected,
                "data columns bit-identical under faults at threads={threads}"
            );
            let counts = faults.counts();
            assert!(counts.panics >= 1, "≥1 injected panic: {counts:?}");
            assert!(counts.timeouts >= 1, "≥1 injected timeout: {counts:?}");
            assert!(
                counts.corrupt_reads + counts.io_errors + counts.eviction_races >= 1,
                "≥1 injected disk fault: {counts:?}"
            );
            // Every outcome records the recovery.
            for row in &report.cells {
                assert!(
                    matches!(row.outcome, CellOutcome::Retried(_)),
                    "panic+timeout at rate 1000 forces retries: {:?}",
                    row.outcome
                );
            }
            // The store healed whatever the plan corrupted.
            let events = store.cache_events();
            assert_eq!(
                events.corrupt + events.io,
                counts.corrupt_reads + counts.io_errors,
                "every injected disk fault was classified: {events:?} vs {counts:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&cache);
    }

    #[test]
    fn zero_deadline_times_out_deterministically() {
        let plan = two_cell_plan();
        let policy = RunPolicy {
            max_retries: 1,
            cell_deadline: Some(Duration::ZERO),
            ..RunPolicy::default()
        };
        let a = plan.run_with_policy(
            &ArtifactStore::new(),
            &Exec::new(1),
            &SilentProgress,
            &policy,
        );
        let b = plan.run_with_policy(
            &ArtifactStore::new(),
            &Exec::new(4),
            &SilentProgress,
            &policy,
        );
        assert_eq!(a.to_tsv(), b.to_tsv(), "timeouts render identically");
        assert!(!a.all_recovered());
        for row in &a.cells {
            assert_eq!(row.outcome, CellOutcome::TimedOut);
            assert_eq!((row.rare_nets, row.patterns), (0, 0), "no data columns");
            assert!(row.gates > 0, "gates are known without running");
        }
        assert_eq!(a.outcome_summary(), "ok=0 retried=0 timeout=2 failed=0");
    }

    #[test]
    fn fail_fast_cancels_unstarted_cells() {
        let plan = two_cell_plan();
        let policy = RunPolicy {
            max_retries: 0,
            cell_deadline: Some(Duration::ZERO),
            fail_fast: true,
            ..RunPolicy::default()
        };
        // Serial executor: the first cell times out, cancelling the rest.
        let report = plan.run_with_policy(
            &ArtifactStore::new(),
            &Exec::serial(),
            &SilentProgress,
            &policy,
        );
        assert_eq!(report.cells[0].outcome, CellOutcome::TimedOut);
        assert_eq!(
            report.cells[1].outcome,
            CellOutcome::Failed("cancelled".to_string())
        );
    }

    #[test]
    fn checkpoint_resume_recomputes_only_unfinished_cells() {
        let plan = two_cell_plan();
        let ckpt = temp_dir("ckpt").join("campaign.ckpt");
        let _ = std::fs::remove_dir_all(ckpt.parent().unwrap());
        let policy = RunPolicy {
            checkpoint: Some(ckpt.clone()),
            ..RunPolicy::default()
        };

        let store1 = ArtifactStore::new();
        let first = plan.run_with_policy(&store1, &Exec::new(1), &SilentProgress, &policy);
        assert!(first.all_recovered());
        assert!(store1.counters().total_misses() > 0);

        // Full resume: every cell restored, nothing recomputed.
        let store2 = ArtifactStore::new();
        let resumed = plan.run_with_policy(&store2, &Exec::new(1), &SilentProgress, &policy);
        assert_eq!(resumed, first, "restored rows reproduce the report");
        assert_eq!(
            store2.counters().total_misses(),
            0,
            "a fully checkpointed campaign computes nothing"
        );

        // Partial resume: grow the grid; only the new cells compute.
        let mut bigger = plan.clone();
        bigger.seeds.push(8);
        let store3 = ArtifactStore::new();
        let grown = bigger.run_with_policy(&store3, &Exec::new(1), &SilentProgress, &policy);
        assert!(grown.all_recovered());
        assert_eq!(grown.cells.len(), 4);
        assert_eq!(
            store3.counters().analyze.misses,
            2,
            "exactly the two new cells ran their analyze stage"
        );
        // The restored rows are byte-identical to the first run's.
        let old_rows: Vec<&CellResult> = grown.cells.iter().filter(|r| r.cell.seed == 7).collect();
        assert_eq!(old_rows.len(), 2);
        for (restored, original) in old_rows.iter().zip(&first.cells) {
            assert_eq!(
                (restored.rare_nets, restored.sets, restored.patterns),
                (original.rare_nets, original.sets, original.patterns)
            );
        }

        // A semantic config change invalidates the checkpoint keys.
        let mut changed = plan.clone();
        changed.base = changed.base.with_episodes(13);
        let store4 = ArtifactStore::new();
        let rerun = changed.run_with_policy(&store4, &Exec::new(1), &SilentProgress, &policy);
        assert!(rerun.all_recovered());
        assert!(
            store4.counters().total_misses() > 0,
            "changed semantics must recompute despite the checkpoint"
        );
        let _ = std::fs::remove_dir_all(ckpt.parent().unwrap());
    }

    #[test]
    fn profiles_resolve_by_name() {
        for name in [
            "c2670", "c5315", "c6288", "c7552", "s13207", "s15850", "s35932", "mips",
        ] {
            assert!(profile_by_name(name).is_some(), "{name}");
        }
        assert!(profile_by_name("b17").is_none());
    }

    #[test]
    fn telemetry_spans_cover_the_whole_campaign() {
        use telemetry::{EventKind, MemorySink, Telemetry};

        let plan = two_cell_plan();
        let sink = MemorySink::new();
        let policy = RunPolicy {
            telemetry: Telemetry::new(vec![Box::new(sink.clone())]),
            ..RunPolicy::default()
        };
        let store = ArtifactStore::new();
        let report = plan.run_with_policy(&store, &Exec::new(2), &SilentProgress, &policy);
        assert!(report.all_recovered());

        let events = sink.events();
        let run = events
            .iter()
            .find(|e| e.name == "campaign")
            .expect("one campaign root span");
        assert_eq!(run.kind, EventKind::Span);
        assert_eq!(run.parent, 0);
        assert_eq!(run.attr_u64("cells"), Some(2));
        assert_eq!(run.attr_u64("ok"), Some(2));
        assert_eq!(run.attr_u64("failed"), Some(0));
        // The run span reconciles with the store's own counters: the two
        // cold cells computed every stage.
        let computed: u64 = store
            .counters()
            .stages()
            .iter()
            .map(|(_, c)| c.misses)
            .sum();
        let traced: u64 = Stage::ALL
            .iter()
            .map(|s| {
                run.vary_u64(&format!("store.{}.computed", s.name()))
                    .unwrap()
            })
            .sum();
        assert_eq!(traced, computed);

        // One cell span + one start mark + one attempt span per cell,
        // each under the right parent.
        for index in 0..2 {
            let cell = events
                .iter()
                .find(|e| e.name == format!("cell.{index}"))
                .unwrap_or_else(|| panic!("cell.{index} span"));
            assert_eq!(cell.parent, run.id);
            assert_eq!(cell.attr_str("outcome"), Some("ok"));
            assert_eq!(cell.attr_str("netlist"), Some("c2670"));
            let mark = events
                .iter()
                .find(|e| {
                    e.kind == EventKind::Mark
                        && e.path == format!("campaign/cell.{index}/cell_start")
                })
                .expect("start mark");
            assert_eq!(mark.parent, cell.id);
            let attempt = events
                .iter()
                .find(|e| e.path == format!("campaign/cell.{index}/attempt.0"))
                .expect("attempt span");
            assert_eq!(attempt.parent, cell.id);
            assert_eq!(attempt.attr_str("result"), Some("ok"));
            // All five pipeline stages ran inside the attempt.
            for stage in Stage::ALL {
                assert!(
                    events
                        .iter()
                        .any(|e| e.path
                            == format!("campaign/cell.{index}/attempt.0/{}", stage.name())),
                    "stage span {} for cell {index}",
                    stage.name()
                );
            }
        }
        // Cell data columns mirror the report rows exactly.
        for row in &report.cells {
            let span = events
                .iter()
                .find(|e| e.name == format!("cell.{}", row.cell.index))
                .expect("cell span");
            assert_eq!(span.attr_u64("rare_nets"), Some(row.rare_nets as u64));
            assert_eq!(span.attr_u64("sets"), Some(row.sets as u64));
            assert_eq!(span.attr_u64("patterns"), Some(row.patterns as u64));
        }
    }

    #[test]
    fn checkpoint_write_failure_is_counted() {
        use telemetry::{MemorySink, Telemetry};

        let plan = two_cell_plan();
        let dir = temp_dir("ckpt-fail");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        // A checkpoint path whose parent is a regular file: every row
        // write fails with NotADirectory, exercising the warning path.
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, b"not a directory").expect("blocker");
        let tele = Telemetry::new(vec![Box::new(MemorySink::new())]);
        let policy = RunPolicy {
            checkpoint: Some(blocker.join("campaign.ckpt")),
            telemetry: tele.clone(),
            ..RunPolicy::default()
        };
        let report = plan.run_with_policy(
            &ArtifactStore::new(),
            &Exec::new(1),
            &SilentProgress,
            &policy,
        );
        assert!(report.all_recovered(), "write failures never fail cells");
        assert_eq!(
            tele.counter("campaign.checkpoint_write_failures").get(),
            2,
            "both rows failed to persist and were counted"
        );
        assert_eq!(tele.counter("campaign.checkpoint_writes").get(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
