//! Shipping [`TraceSink`] implementations.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// A consumer of [`TraceEvent`]s. Sinks must tolerate concurrent calls —
/// span closes arrive from whichever worker thread owned the span.
pub trait TraceSink: Send + Sync {
    /// Handles one event.
    fn event(&self, event: &TraceEvent);

    /// Flushes any buffered output. Called at orderly shutdown.
    fn flush(&self) {}
}

/// Writes each event as one JSON line to a buffered writer (the
/// `--trace-out FILE` / `DETERRENT_TRACE_OUT` format).
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Wraps an arbitrary writer (tests, future daemon streams).
    #[must_use]
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(BufWriter::new(writer)),
        }
    }
}

impl TraceSink for JsonlSink {
    fn event(&self, event: &TraceEvent) {
        let mut line = event.to_line();
        line.push('\n');
        let mut out = self.out.lock().expect("trace writer poisoned");
        // Telemetry is strictly out-of-band: a full disk must not fail the
        // run, so write errors are swallowed here by design.
        let _ = out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("trace writer poisoned").flush();
    }
}

/// Collects events in memory; clones share one buffer. Intended for tests
/// and in-process consumers.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every event received so far, in arrival order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("event buffer poisoned").clone()
    }
}

impl TraceSink for MemorySink {
    fn event(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("event buffer poisoned")
            .push(event.clone());
    }
}
