//! Cache-keyed stage artifacts and the store that shares them.
//!
//! Every stage of a [`crate::DeterrentSession`] produces a cheaply clonable
//! artifact (the heavy payload lives behind an [`Arc`]) whose **key** is a
//! stable fingerprint of exactly the inputs that can change the stage's
//! output: the netlist's behavioural content, the stage's own config
//! section, the master seed, and the key of the upstream artifact. Thread
//! counts are deliberately excluded — the deterministic parallel runtime
//! guarantees bit-identical results at any worker count, so a graph built at
//! one thread is served verbatim to a four-thread session.
//!
//! An [`ArtifactStore`] is a shareable handle (clone it freely); ablation
//! grids hand one store to every cell's session so only the stages whose
//! config slice actually changed are recomputed. Per-stage hit/miss counters
//! make the reuse auditable.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rl::{PpoConfig, PpoTrainer, TrainReport};
use sim::rare::RareNetAnalysis;
use sim::PatternSource;

use crate::{
    AnalysisConfig, CompatConfig, CompatibilityGraph, EnumerationBudget, RareNetSet, SelectConfig,
    Stage, TrainConfig,
};

// ───────────────────────── fingerprinting ─────────────────────────

/// Incremental FNV-1a over explicitly serialized fields: stable across runs
/// and platforms, unlike [`std::collections::hash_map::DefaultHasher`].
#[derive(Clone, Copy)]
pub(crate) struct Fp(u64);

impl Fp {
    pub(crate) fn new(tag: &str) -> Self {
        Fp(0xcbf2_9ce4_8422_2325).bytes(tag.as_bytes())
    }

    pub(crate) fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub(crate) fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Bulk variant for large word arrays (witness-bank rows): one
    /// xor + multiply per word instead of eight. Weaker per-bit diffusion
    /// than the byte-wise path, which is fine for content identity — and
    /// ~8× cheaper on the banks' millions of words.
    pub(crate) fn words(mut self, words: &[u64]) -> Self {
        for &w in words {
            self.0 ^= w;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub(crate) fn usize(self, v: usize) -> Self {
        self.u64(v as u64)
    }

    pub(crate) fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    pub(crate) fn bool(self, v: bool) -> Self {
        self.u64(u64::from(v))
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

fn fp_ppo(fp: Fp, ppo: &PpoConfig) -> Fp {
    let mut fp = fp
        .f64(ppo.gamma)
        .f64(ppo.gae_lambda)
        .f64(ppo.clip_epsilon)
        .f64(ppo.entropy_coef)
        .f64(ppo.value_coef)
        .f64(ppo.learning_rate)
        .usize(ppo.epochs)
        .usize(ppo.batch_size)
        .usize(ppo.hidden_sizes.len());
    for &h in &ppo.hidden_sizes {
        fp = fp.usize(h);
    }
    fp
}

fn fp_budget(fp: Fp, budget: &EnumerationBudget) -> Fp {
    match *budget {
        EnumerationBudget::Disabled => fp.u64(0),
        EnumerationBudget::FixedSupportLimit(limit) => fp.u64(1).u64(u64::from(limit)),
        EnumerationBudget::Adaptive {
            sat_base_word_ops,
            sat_per_gate_word_ops,
            max_support,
        } => fp
            .u64(2)
            .u64(sat_base_word_ops)
            .u64(sat_per_gate_word_ops)
            .u64(u64::from(max_support)),
    }
}

fn fp_compat(fp: Fp, config: &CompatConfig) -> Fp {
    match config.strategy {
        crate::CompatStrategy::AllSat => fp.u64(0),
        crate::CompatStrategy::Funnel(f) => fp_budget(
            fp.u64(1)
                .bool(f.sim_witnesses)
                .bool(f.structural_pruning)
                .bool(f.cone_sat),
            &f.enumeration,
        ),
    }
}

/// Key of an [`RareArtifact`] computed by the session's own analyze stage.
pub(crate) fn rare_key(netlist_fp: u64, config: &AnalysisConfig, seed: u64) -> u64 {
    Fp::new("deterrent/analyze")
        .u64(netlist_fp)
        .f64(config.rareness_threshold)
        .usize(config.probability_patterns)
        .u64(seed)
        .finish()
}

/// Key of an imported (externally computed) analysis: a fingerprint of its
/// *content* — rare nets, threshold, and witness bank — so two sessions
/// importing equal analyses share downstream artifacts.
pub(crate) fn imported_rare_key(netlist_fp: u64, analysis: &RareNetAnalysis) -> u64 {
    let mut fp = Fp::new("deterrent/import")
        .u64(netlist_fp)
        .f64(analysis.threshold())
        .usize(analysis.len());
    for r in analysis.rare_nets() {
        fp = fp
            .usize(r.net.index())
            .bool(r.rare_value)
            .f64(r.probability);
    }
    match analysis.witnesses() {
        None => fp = fp.u64(0),
        Some(bank) => {
            fp = fp.u64(1).usize(bank.num_patterns());
            for t in 0..bank.len() {
                fp = fp.words(bank.row(t));
            }
            fp = match bank.source() {
                None => fp.u64(0),
                Some(PatternSource::Random { width, seed }) => fp.u64(1).usize(width).u64(seed),
                Some(PatternSource::Exhaustive { width }) => fp.u64(2).usize(width),
            };
        }
    }
    fp.finish()
}

/// Key of a [`GraphArtifact`] derived from the rare artifact `parent`.
pub(crate) fn graph_key(parent: u64, config: &CompatConfig) -> u64 {
    fp_compat(Fp::new("deterrent/graph").u64(parent), config).finish()
}

/// Key of a [`PolicyArtifact`] derived from the graph artifact `parent`.
pub(crate) fn policy_key(parent: u64, config: &TrainConfig, seed: u64) -> u64 {
    let fp = Fp::new("deterrent/train")
        .u64(parent)
        .u64(config.reward_mode as u64)
        .bool(config.masking)
        .u64(config.compat_check as u64)
        .usize(config.episodes)
        .usize(config.steps_per_episode)
        .usize(config.rollout_round)
        .u64(seed);
    fp_ppo(fp, &config.ppo).finish()
}

/// Key of a [`SetsArtifact`] derived from the policy artifact `parent`.
pub(crate) fn sets_key(parent: u64, config: &SelectConfig, seed: u64) -> u64 {
    Fp::new("deterrent/select")
        .u64(parent)
        .usize(config.eval_rollouts)
        .usize(config.k_patterns)
        .u64(seed)
        .finish()
}

// ───────────────────────── artifacts ─────────────────────────

/// Output of the analyze stage: the rare-net analysis (with its retained
/// witness bank) behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct RareArtifact {
    pub(crate) key: u64,
    analysis: Arc<RareNetAnalysis>,
}

impl RareArtifact {
    pub(crate) fn new(key: u64, analysis: RareNetAnalysis) -> Self {
        Self {
            key,
            analysis: Arc::new(analysis),
        }
    }

    /// The cache key (netlist fingerprint ⊕ analysis config ⊕ seed).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The rare-net analysis.
    #[must_use]
    pub fn analysis(&self) -> &RareNetAnalysis {
        &self.analysis
    }

    /// Number of rare nets found.
    #[must_use]
    pub fn len(&self) -> usize {
        self.analysis.len()
    }

    /// `true` when no net is rare at the threshold.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.analysis.is_empty()
    }
}

/// Output of the build-graph stage: the pairwise-compatibility graph behind
/// an [`Arc`], plus the threshold it answers for.
#[derive(Debug, Clone)]
pub struct GraphArtifact {
    pub(crate) key: u64,
    graph: Arc<CompatibilityGraph>,
    pub(crate) rareness_threshold: f64,
    pub(crate) build_seconds: f64,
}

impl GraphArtifact {
    pub(crate) fn new(
        key: u64,
        graph: CompatibilityGraph,
        rareness_threshold: f64,
        build_seconds: f64,
    ) -> Self {
        Self {
            key,
            graph: Arc::new(graph),
            rareness_threshold,
            build_seconds,
        }
    }

    /// The cache key (rare-artifact key ⊕ compat config).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The compatibility graph.
    #[must_use]
    pub fn graph(&self) -> &CompatibilityGraph {
        &self.graph
    }

    /// The rareness threshold of the originating analysis.
    #[must_use]
    pub fn rareness_threshold(&self) -> f64 {
        self.rareness_threshold
    }

    /// Wall-clock seconds the (cold) build took.
    #[must_use]
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }
}

/// Payload of a [`PolicyArtifact`].
#[derive(Debug)]
pub struct TrainedPolicy {
    /// The trained PPO agent (frozen; the select stage rolls it out
    /// greedily).
    pub trainer: PpoTrainer,
    /// Episode rewards/lengths, losses, wall clock.
    pub report: TrainReport,
    /// Episode-final compatible sets harvested during training, in episode
    /// order.
    pub harvested_sets: Vec<Vec<usize>>,
    /// Exact SAT compatibility checks spent inside training environments
    /// (non-zero only under [`crate::CompatCheck::ExactSat`]).
    pub env_sat_checks: u64,
    /// Wall-clock seconds of the (cold) training run.
    pub training_seconds: f64,
    /// Mean reward over the last 10% of training episodes.
    pub final_mean_reward: f64,
}

/// Output of the train stage: the trained policy and its training harvest,
/// behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct PolicyArtifact {
    pub(crate) key: u64,
    inner: Arc<TrainedPolicy>,
}

impl PolicyArtifact {
    pub(crate) fn new(key: u64, inner: TrainedPolicy) -> Self {
        Self {
            key,
            inner: Arc::new(inner),
        }
    }

    /// The cache key (graph-artifact key ⊕ train config ⊕ seed).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The trained policy and its training harvest.
    #[must_use]
    pub fn policy(&self) -> &TrainedPolicy {
        &self.inner
    }
}

/// Payload of a [`SetsArtifact`].
#[derive(Debug)]
pub struct SelectedSets {
    /// The `k` largest distinct compatible sets, largest first.
    pub sets: Vec<RareNetSet>,
    /// Size of the largest harvested compatible set (training + evaluation).
    pub max_compatible_set: usize,
    /// Exact SAT checks spent inside the greedy evaluation environments.
    pub eval_env_sat_checks: u64,
    /// Total candidate sets harvested before selection.
    pub harvested_total: usize,
}

/// Output of the select stage: the chosen compatible sets, behind an
/// [`Arc`].
#[derive(Debug, Clone)]
pub struct SetsArtifact {
    pub(crate) key: u64,
    inner: Arc<SelectedSets>,
}

impl SetsArtifact {
    pub(crate) fn new(key: u64, inner: SelectedSets) -> Self {
        Self {
            key,
            inner: Arc::new(inner),
        }
    }

    /// The cache key (policy-artifact key ⊕ select config ⊕ seed).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The selection result.
    #[must_use]
    pub fn selected(&self) -> &SelectedSets {
        &self.inner
    }

    /// The selected sets, largest first.
    #[must_use]
    pub fn sets(&self) -> &[RareNetSet] {
        &self.inner.sets
    }
}

// ───────────────────────── the store ─────────────────────────

/// Hit/miss counters of one cached stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that had to compute (and then inserted).
    pub misses: u64,
}

/// Per-stage hit/miss counters of an [`ArtifactStore`].
///
/// The generate stage is not cached (pattern generation is cheap relative to
/// everything upstream), so it has no counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Analyze-stage counters.
    pub analyze: StageCounters,
    /// Build-graph-stage counters.
    pub build_graph: StageCounters,
    /// Train-stage counters.
    pub train: StageCounters,
    /// Select-stage counters.
    pub select: StageCounters,
}

impl StoreCounters {
    /// The counters of `stage` ([`Stage::Generate`] is uncached and always
    /// zero).
    #[must_use]
    pub fn stage(&self, stage: Stage) -> StageCounters {
        match stage {
            Stage::Analyze => self.analyze,
            Stage::BuildGraph => self.build_graph,
            Stage::Train => self.train,
            Stage::Select => self.select,
            Stage::Generate => StageCounters::default(),
        }
    }

    /// Total hits across all stages.
    #[must_use]
    pub fn total_hits(&self) -> u64 {
        self.analyze.hits + self.build_graph.hits + self.train.hits + self.select.hits
    }

    /// Total misses across all stages.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.analyze.misses + self.build_graph.misses + self.train.misses + self.select.misses
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    rare: HashMap<u64, RareArtifact>,
    graph: HashMap<u64, GraphArtifact>,
    policy: HashMap<u64, PolicyArtifact>,
    sets: HashMap<u64, SetsArtifact>,
    counters: StoreCounters,
}

/// A shareable, thread-safe store of stage artifacts.
///
/// Cloning the store clones a *handle*: all clones see the same cache. Hand
/// one store to every cell of an ablation grid (via
/// [`crate::DeterrentSession::with_store`]) and the shared prefix of the
/// pipeline — typically rare-net analysis and the compatibility graph — is
/// computed once.
///
/// Lookups and inserts are individually atomic but a miss does not reserve
/// its key: two *simultaneous* sessions racing on the same cold key will
/// each compute the artifact (both correct and identical — last insert
/// wins) and each count a miss. Drive grid cells sequentially, or warm the
/// store first, when the counters feed assertions.
#[derive(Debug, Clone, Default)]
pub struct ArtifactStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl ArtifactStore {
    /// A fresh, empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().expect("artifact store lock poisoned")
    }

    /// Per-stage hit/miss counters so far.
    #[must_use]
    pub fn counters(&self) -> StoreCounters {
        self.lock().counters
    }

    /// Number of artifacts currently cached (all stages).
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.lock();
        inner.rare.len() + inner.graph.len() + inner.policy.len() + inner.sets.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached artifact and zeroes the counters.
    pub fn clear(&self) {
        let mut inner = self.lock();
        *inner = StoreInner::default();
    }

    pub(crate) fn lookup_rare(&self, key: u64) -> Option<RareArtifact> {
        let mut inner = self.lock();
        let found = inner.rare.get(&key).cloned();
        let c = &mut inner.counters.analyze;
        if found.is_some() {
            c.hits += 1;
        } else {
            c.misses += 1;
        }
        found
    }

    pub(crate) fn insert_rare(&self, artifact: &RareArtifact) {
        self.lock().rare.insert(artifact.key, artifact.clone());
    }

    pub(crate) fn lookup_graph(&self, key: u64) -> Option<GraphArtifact> {
        let mut inner = self.lock();
        let found = inner.graph.get(&key).cloned();
        let c = &mut inner.counters.build_graph;
        if found.is_some() {
            c.hits += 1;
        } else {
            c.misses += 1;
        }
        found
    }

    pub(crate) fn insert_graph(&self, artifact: &GraphArtifact) {
        self.lock().graph.insert(artifact.key, artifact.clone());
    }

    pub(crate) fn lookup_policy(&self, key: u64) -> Option<PolicyArtifact> {
        let mut inner = self.lock();
        let found = inner.policy.get(&key).cloned();
        let c = &mut inner.counters.train;
        if found.is_some() {
            c.hits += 1;
        } else {
            c.misses += 1;
        }
        found
    }

    pub(crate) fn insert_policy(&self, artifact: &PolicyArtifact) {
        self.lock().policy.insert(artifact.key, artifact.clone());
    }

    pub(crate) fn lookup_sets(&self, key: u64) -> Option<SetsArtifact> {
        let mut inner = self.lock();
        let found = inner.sets.get(&key).cloned();
        let c = &mut inner.counters.select;
        if found.is_some() {
            c.hits += 1;
        } else {
            c.misses += 1;
        }
        found
    }

    pub(crate) fn insert_sets(&self, artifact: &SetsArtifact) {
        self.lock().sets.insert(artifact.key, artifact.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn fingerprints_are_stable_and_field_sensitive() {
        let cfg = AnalysisConfig::default();
        let a = rare_key(1, &cfg, 7);
        assert_eq!(a, rare_key(1, &cfg, 7), "same inputs, same key");
        assert_ne!(a, rare_key(2, &cfg, 7), "netlist matters");
        assert_ne!(a, rare_key(1, &cfg, 8), "seed matters");
        let tighter = AnalysisConfig {
            rareness_threshold: 0.09,
            ..cfg
        };
        assert_ne!(a, rare_key(1, &tighter, 7), "threshold matters");
    }

    #[test]
    fn stage_keys_chain() {
        let compat = CompatConfig::default();
        let g1 = graph_key(1, &compat);
        let g2 = graph_key(2, &compat);
        assert_ne!(g1, g2, "a different parent invalidates downstream");
        let train = TrainConfig::default();
        assert_ne!(policy_key(g1, &train, 3), policy_key(g2, &train, 3));
        assert_ne!(policy_key(g1, &train, 3), policy_key(g1, &train, 4));
    }

    #[test]
    fn imported_keys_reflect_content() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(3);
        let fp = nl.content_fingerprint();
        let a = RareNetAnalysis::estimate(&nl, 0.2, 1024, 1);
        let b = RareNetAnalysis::estimate(&nl, 0.2, 1024, 1);
        assert_eq!(imported_rare_key(fp, &a), imported_rare_key(fp, &b));
        let c = RareNetAnalysis::estimate(&nl, 0.2, 1024, 2);
        assert_ne!(
            imported_rare_key(fp, &a),
            imported_rare_key(fp, &c),
            "different estimation seeds give different witness banks"
        );
    }

    #[test]
    fn store_counts_hits_and_misses() {
        let store = ArtifactStore::new();
        assert!(store.is_empty());
        assert!(store.lookup_rare(42).is_none());
        let nl = BenchmarkProfile::c2670().scaled(30).generate(1);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 512, 1);
        store.insert_rare(&RareArtifact::new(42, analysis));
        assert!(store.lookup_rare(42).is_some());
        let shared = store.clone();
        assert!(shared.lookup_rare(42).is_some(), "clones share the cache");
        let c = store.counters();
        assert_eq!(c.analyze.misses, 1);
        assert_eq!(c.analyze.hits, 2);
        assert_eq!(store.len(), 1);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.counters(), StoreCounters::default());
    }
}
