//! Masked categorical action distribution.

use rand::Rng;

/// A categorical distribution over discrete actions built from raw logits,
/// with an optional validity mask.
///
/// Masked (invalid) actions receive probability zero, matching DETERRENT's
/// action-masking architecture where nets that are incompatible with the
/// current state are removed from the agent's choices (Theorem 3.1 of the
/// paper shows this loses nothing).
#[derive(Debug, Clone)]
pub struct MaskedCategorical {
    probs: Vec<f64>,
    log_probs: Vec<f64>,
}

impl MaskedCategorical {
    /// Builds the distribution from `logits`, keeping only actions whose mask
    /// entry is `true`. Pass `None` to allow every action.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has a different length than `logits` or if no action
    /// is allowed.
    #[must_use]
    pub fn new(logits: &[f64], mask: Option<&[bool]>) -> Self {
        if let Some(m) = mask {
            assert_eq!(m.len(), logits.len(), "mask length mismatch");
            assert!(
                m.iter().any(|&allowed| allowed),
                "at least one action must be allowed"
            );
        }
        let allowed = |i: usize| mask.is_none_or(|m| m[i]);
        // Numerically stable masked softmax.
        let max_logit = logits
            .iter()
            .enumerate()
            .filter(|&(i, _)| allowed(i))
            .map(|(_, &l)| l)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut probs = vec![0.0; logits.len()];
        let mut total = 0.0;
        for (i, &l) in logits.iter().enumerate() {
            if allowed(i) {
                let e = (l - max_logit).exp();
                probs[i] = e;
                total += e;
            }
        }
        for p in &mut probs {
            *p /= total;
        }
        let log_probs = probs
            .iter()
            .map(|&p| if p > 0.0 { p.ln() } else { f64::NEG_INFINITY })
            .collect();
        Self { probs, log_probs }
    }

    /// Number of actions (masked ones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Returns `true` if the distribution has no actions (never the case for
    /// a successfully constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of `action`.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range.
    #[must_use]
    pub fn prob(&self, action: usize) -> f64 {
        self.probs[action]
    }

    /// Natural log-probability of `action` (`-inf` for masked actions).
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range.
    #[must_use]
    pub fn log_prob(&self, action: usize) -> f64 {
        self.log_probs[action]
    }

    /// All probabilities.
    #[must_use]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Shannon entropy (natural log) of the distribution.
    #[must_use]
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// Samples an action index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut last_allowed = 0;
        for (i, &p) in self.probs.iter().enumerate() {
            if p > 0.0 {
                last_allowed = i;
                acc += p;
                if u < acc {
                    return i;
                }
            }
        }
        last_allowed
    }

    /// The most probable action.
    #[must_use]
    pub fn argmax(&self) -> usize {
        self.probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Gradient of `log π(action)` with respect to the (unmasked) logits:
    /// `onehot(action) - probs`, with zeros at masked positions.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range or masked.
    #[must_use]
    pub fn grad_log_prob(&self, action: usize) -> Vec<f64> {
        assert!(
            self.probs[action] > 0.0,
            "cannot take gradient of a masked action"
        );
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| if i == action { 1.0 - p } else { -p })
            .collect()
    }

    /// Gradient of the entropy with respect to the logits:
    /// `dH/dz_k = -p_k (ln p_k + H)`, zeros at masked positions.
    #[must_use]
    pub fn grad_entropy(&self) -> Vec<f64> {
        let h = self.entropy();
        self.probs
            .iter()
            .map(|&p| if p > 0.0 { -p * (p.ln() + h) } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let d = MaskedCategorical::new(&[0.0, 0.0, 0.0, 0.0], None);
        for i in 0..4 {
            assert!((d.prob(i) - 0.25).abs() < 1e-12);
        }
        assert!((d.entropy() - 4.0f64.ln()).abs() < 1e-12);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn masked_actions_have_zero_probability() {
        let d = MaskedCategorical::new(&[1.0, 2.0, 3.0], Some(&[true, false, true]));
        assert_eq!(d.prob(1), 0.0);
        assert!(d.log_prob(1).is_infinite());
        assert!((d.prob(0) + d.prob(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_mask_and_distribution() {
        let d = MaskedCategorical::new(&[0.0, 5.0, 0.0], Some(&[true, false, true]));
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let a = d.sample(&mut rng);
            assert_ne!(a, 1, "masked action must never be sampled");
        }
    }

    #[test]
    fn argmax_finds_largest_logit() {
        let d = MaskedCategorical::new(&[0.1, 3.0, -1.0], None);
        assert_eq!(d.argmax(), 1);
        let d = MaskedCategorical::new(&[0.1, 3.0, -1.0], Some(&[true, false, true]));
        assert_eq!(d.argmax(), 0);
    }

    #[test]
    fn grad_log_prob_matches_finite_difference() {
        let logits = [0.3, -0.8, 1.2, 0.0];
        let d = MaskedCategorical::new(&logits, None);
        let action = 2;
        let analytic = d.grad_log_prob(action);
        let eps = 1e-6;
        for k in 0..logits.len() {
            let mut plus = logits;
            plus[k] += eps;
            let mut minus = logits;
            minus[k] -= eps;
            let numeric = (MaskedCategorical::new(&plus, None).log_prob(action)
                - MaskedCategorical::new(&minus, None).log_prob(action))
                / (2.0 * eps);
            assert!((numeric - analytic[k]).abs() < 1e-6, "k={k}");
        }
    }

    #[test]
    fn grad_entropy_matches_finite_difference() {
        let logits = [0.5, -0.2, 0.9];
        let d = MaskedCategorical::new(&logits, None);
        let analytic = d.grad_entropy();
        let eps = 1e-6;
        for k in 0..logits.len() {
            let mut plus = logits;
            plus[k] += eps;
            let mut minus = logits;
            minus[k] -= eps;
            let numeric = (MaskedCategorical::new(&plus, None).entropy()
                - MaskedCategorical::new(&minus, None).entropy())
                / (2.0 * eps);
            assert!((numeric - analytic[k]).abs() < 1e-6, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one action")]
    fn all_masked_panics() {
        let _ = MaskedCategorical::new(&[0.0, 0.0], Some(&[false, false]));
    }

    #[test]
    fn extreme_logits_are_stable() {
        let d = MaskedCategorical::new(&[1000.0, -1000.0], None);
        assert!((d.prob(0) - 1.0).abs() < 1e-12);
        assert_eq!(d.prob(1), 0.0);
        assert!(d.entropy() >= 0.0);
    }
}
