//! Threshold-transfer experiment (Section 4.5 of the paper): train the agent
//! on the rare nets of a loose threshold (0.14) and evaluate the generated
//! patterns against triggers built from the tight threshold (0.10).
//!
//! ```text
//! cargo run --example threshold_transfer
//! ```

use deterrent_repro::deterrent_core::{Deterrent, DeterrentConfig};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::sim::rare::RareNetAnalysis;
use deterrent_repro::trojan::{CoverageEvaluator, TrojanGenerator};

fn main() {
    let netlist = BenchmarkProfile::c6288().scaled(25).generate(5);
    let loose = RareNetAnalysis::estimate(&netlist, 0.14, 8192, 3);
    let tight = RareNetAnalysis::estimate(&netlist, 0.10, 8192, 3);
    println!(
        "design {}: {} rare nets at threshold 0.14, {} at 0.10",
        netlist.name(),
        loose.len(),
        tight.len()
    );

    // Train on the larger (loose-threshold) action space.
    let mut config = DeterrentConfig::fast_preset();
    config.rareness_threshold = 0.14;
    let result = Deterrent::new(&netlist, config).run_with_analysis(&loose);
    println!(
        "trained on 0.14: {} patterns, largest compatible set {}",
        result.test_length(),
        result.metrics.max_compatible_set
    );

    // Evaluate against Trojans whose triggers use only tight-threshold nets.
    let mut adversary = TrojanGenerator::new(&netlist, 99);
    let trojans = adversary.sample_many(&tight, 2, 40);
    if trojans.is_empty() {
        println!("no satisfiable tight-threshold triggers at this scale; rerun with another seed");
        return;
    }
    let coverage = CoverageEvaluator::new(&netlist, trojans)
        .evaluate(&result.patterns)
        .coverage_percent();
    println!(
        "coverage of threshold-0.10 triggers using threshold-0.14 training: {coverage:.1}% \
         (paper reports 99%)"
    );
}
