//! Rare-net extraction — step ❶ of the DETERRENT flow.
//!
//! A net is *rare* at threshold `θ` when the probability of its less likely
//! logic value is strictly below `θ` under uniformly random input patterns.
//! Rare nets are the candidate trigger nets an adversary would pick, and they
//! form the action space of the DETERRENT RL agent.

use exec::Exec;
use netlist::{GateKind, NetId, Netlist};

use crate::witness::{PatternSource, WitnessBank};
use crate::SignalProbabilities;

/// A rare net: the net id, the rare logic value, and its estimated
/// probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RareNet {
    /// The rare net.
    pub net: NetId,
    /// The logic value the net rarely takes (the trigger value).
    pub rare_value: bool,
    /// Estimated probability of the net taking `rare_value`.
    pub probability: f64,
}

/// Result of rare-net analysis on one netlist at one threshold.
#[derive(Debug, Clone)]
pub struct RareNetAnalysis {
    threshold: f64,
    rare_nets: Vec<RareNet>,
    probabilities: SignalProbabilities,
    /// `(net, position)` pairs sorted by net id for O(log n) lookup.
    by_net: Vec<(NetId, u32)>,
    /// Witness bitmaps of the estimation run, one row per rare net (in
    /// `rare_nets` order); `None` when built from external probabilities.
    witnesses: Option<WitnessBank>,
}

impl RareNetAnalysis {
    /// Runs rare-net analysis with Monte-Carlo probability estimation using
    /// `num_patterns` random patterns and the given `seed`.
    ///
    /// Only internal combinational nets are considered (primary inputs and
    /// scan flip-flop outputs are controllable directly, so an adversary gains
    /// no stealth from using them, and prior work excludes them too).
    ///
    /// The packed simulation words of the estimation run are retained per
    /// rare net as a [`WitnessBank`], so downstream passes (the compatibility
    /// funnel) can resolve pairwise queries without SAT. The bank is
    /// harvested by replaying the same pattern stream once the rare nets are
    /// known, keeping witness memory proportional to the rare-net count
    /// rather than the design size.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 0.5]` or `num_patterns` is zero.
    #[must_use]
    pub fn estimate(netlist: &Netlist, threshold: f64, num_patterns: usize, seed: u64) -> Self {
        Self::estimate_with(netlist, threshold, num_patterns, seed, &Exec::serial())
    }

    /// Like [`RareNetAnalysis::estimate`], but runs both the estimation
    /// simulation and the witness-harvest replay in parallel on `exec`.
    /// Bit-identical to the serial path at any thread count (the pattern
    /// stream is seed-split per 64-pattern chunk).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 0.5]` or `num_patterns` is zero.
    #[must_use]
    pub fn estimate_with(
        netlist: &Netlist,
        threshold: f64,
        num_patterns: usize,
        seed: u64,
        exec: &Exec,
    ) -> Self {
        let probabilities = SignalProbabilities::estimate_with(netlist, num_patterns, seed, exec);
        let mut analysis = Self::from_probabilities(netlist, threshold, probabilities);
        analysis.witnesses = Some(WitnessBank::harvest_with(
            netlist,
            &analysis.targets(),
            num_patterns,
            seed,
            exec,
        ));
        analysis
    }

    /// Runs rare-net analysis using exhaustive (exact) probabilities; only
    /// feasible for small circuits. Witnesses are retained as in
    /// [`RareNetAnalysis::estimate`].
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 0.5]` or the netlist has more than
    /// 24 scan inputs.
    #[must_use]
    pub fn exhaustive(netlist: &Netlist, threshold: f64) -> Self {
        let (probabilities, trace) = SignalProbabilities::exhaustive_retaining(netlist);
        let mut analysis = Self::from_probabilities(netlist, threshold, probabilities);
        analysis.witnesses = Some(
            WitnessBank::from_trace(&trace, &analysis.targets()).with_source(
                PatternSource::Exhaustive {
                    width: netlist.num_scan_inputs(),
                },
            ),
        );
        analysis
    }

    /// Builds the analysis from precomputed probabilities. No witness bank is
    /// attached (there was no simulation run to mine).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 0.5]`.
    #[must_use]
    pub fn from_probabilities(
        netlist: &Netlist,
        threshold: f64,
        probabilities: SignalProbabilities,
    ) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 0.5,
            "rareness threshold must be in (0, 0.5]"
        );
        let mut rare_nets = Vec::new();
        for (id, gate) in netlist.iter() {
            if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            let (rare_value, probability) = probabilities.rare_value(id);
            if probability < threshold {
                rare_nets.push(RareNet {
                    net: id,
                    rare_value,
                    probability,
                });
            }
        }
        // Deterministic order: rarest first, ties by net id.
        rare_nets.sort_by(|a, b| {
            a.probability
                .partial_cmp(&b.probability)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.net.cmp(&b.net))
        });
        let mut by_net: Vec<(NetId, u32)> = rare_nets
            .iter()
            .enumerate()
            .map(|(pos, r)| (r.net, pos as u32))
            .collect();
        by_net.sort_unstable_by_key(|&(net, _)| net);
        Self {
            threshold,
            rare_nets,
            probabilities,
            by_net,
            witnesses: None,
        }
    }

    /// The rareness threshold used.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The rare nets, sorted by increasing probability.
    #[must_use]
    pub fn rare_nets(&self) -> &[RareNet] {
        &self.rare_nets
    }

    /// Number of rare nets found.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rare_nets.len()
    }

    /// Returns `true` when no net is rare at the threshold.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rare_nets.is_empty()
    }

    /// The `(net, rare_value)` pairs, convenient for SAT justification calls.
    #[must_use]
    pub fn targets(&self) -> Vec<(NetId, bool)> {
        self.rare_nets
            .iter()
            .map(|r| (r.net, r.rare_value))
            .collect()
    }

    /// The underlying signal probabilities.
    #[must_use]
    pub fn probabilities(&self) -> &SignalProbabilities {
        &self.probabilities
    }

    /// Looks up the rare-net record for `net`, if it is rare.
    ///
    /// O(log n) via an index sorted by net id (the `rare_nets` list itself is
    /// sorted by probability, so it cannot be searched directly).
    #[must_use]
    pub fn find(&self, net: NetId) -> Option<&RareNet> {
        self.by_net
            .binary_search_by_key(&net, |&(n, _)| n)
            .ok()
            .map(|i| &self.rare_nets[self.by_net[i].1 as usize])
    }

    /// Position of `net` in [`RareNetAnalysis::rare_nets`], if it is rare.
    #[must_use]
    pub fn position(&self, net: NetId) -> Option<usize> {
        self.by_net
            .binary_search_by_key(&net, |&(n, _)| n)
            .ok()
            .map(|i| self.by_net[i].1 as usize)
    }

    /// Witness bitmaps harvested from the estimation run (one row per rare
    /// net, in `rare_nets` order), or `None` when the analysis was built from
    /// external probabilities.
    #[must_use]
    pub fn witnesses(&self) -> Option<&WitnessBank> {
        self.witnesses.as_ref()
    }

    /// Rebuilds an analysis from its raw parts — the inverse of
    /// [`RareNetAnalysis::threshold`] / [`RareNetAnalysis::rare_nets`] /
    /// [`RareNetAnalysis::probabilities`] / [`RareNetAnalysis::witnesses`].
    /// The by-net lookup index is rederived; `rare_nets` must already be in
    /// the canonical order (rarest first, ties by net id) an estimation run
    /// produces. Exists so callers persisting an analysis (e.g. a disk-backed
    /// artifact cache) can round-trip it bit-exactly without a serde
    /// dependency.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 0.5]`.
    #[must_use]
    pub fn from_raw_parts(
        threshold: f64,
        rare_nets: Vec<RareNet>,
        probabilities: SignalProbabilities,
        witnesses: Option<WitnessBank>,
    ) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 0.5,
            "rareness threshold must be in (0, 0.5]"
        );
        let mut by_net: Vec<(NetId, u32)> = rare_nets
            .iter()
            .enumerate()
            .map(|(pos, r)| (r.net, pos as u32))
            .collect();
        by_net.sort_unstable_by_key(|&(net, _)| net);
        Self {
            threshold,
            rare_nets,
            probabilities,
            by_net,
            witnesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn rare_chain_root_is_rare() {
        let nl = samples::rare_chain(6);
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.1);
        let root = nl.net_by_name("and5").unwrap();
        let rec = analysis.find(root).expect("root must be rare");
        assert!(rec.rare_value);
        assert!((rec.probability - 1.0 / 64.0).abs() < 1e-12);
        // The OR of all inputs is not rare at 0.1 (p0 = 1/64 is rare though!).
        let any = nl.net_by_name("any").unwrap();
        let any_rec = analysis.find(any).expect("p(any=0)=1/64 is rare");
        assert!(!any_rec.rare_value);
    }

    #[test]
    fn threshold_monotonicity() {
        let nl = BenchmarkProfile::c6288().scaled(10).generate(9);
        let loose = RareNetAnalysis::estimate(&nl, 0.14, 4096, 1);
        let tight = RareNetAnalysis::estimate(&nl, 0.10, 4096, 1);
        assert!(loose.len() >= tight.len());
        // Every net rare at the tight threshold is rare at the loose one.
        for r in tight.rare_nets() {
            assert!(loose.find(r.net).is_some());
        }
    }

    #[test]
    fn inputs_never_rare() {
        let nl = samples::c17();
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.45);
        for &pi in nl.primary_inputs() {
            assert!(analysis.find(pi).is_none());
        }
    }

    #[test]
    fn majority_terms_rare_at_point14_not_point1() {
        let nl = samples::majority5();
        let at14 = RareNetAnalysis::exhaustive(&nl, 0.14);
        let at10 = RareNetAnalysis::exhaustive(&nl, 0.10);
        let term = nl.net_by_name("t_0_1_2").unwrap();
        assert!(at14.find(term).is_some(), "AND3 has p=0.125 < 0.14");
        assert!(at10.find(term).is_none(), "0.125 is not < 0.10");
    }

    #[test]
    fn synthetic_profiles_contain_rare_nets() {
        let nl = BenchmarkProfile::c2670().scaled(10).generate(4);
        let analysis = RareNetAnalysis::estimate(&nl, 0.1, 4096, 2);
        assert!(
            analysis.len() >= 4,
            "expected at least 4 rare nets, got {}",
            analysis.len()
        );
    }

    #[test]
    fn sorted_by_probability() {
        let nl = BenchmarkProfile::c2670().scaled(10).generate(4);
        let analysis = RareNetAnalysis::estimate(&nl, 0.1, 2048, 2);
        for w in analysis.rare_nets().windows(2) {
            assert!(w[0].probability <= w[1].probability);
        }
    }

    #[test]
    #[should_panic(expected = "rareness threshold")]
    fn bad_threshold_panics() {
        let nl = samples::c17();
        let _ = RareNetAnalysis::exhaustive(&nl, 0.7);
    }
}
