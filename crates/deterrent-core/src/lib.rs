//! DETERRENT — Detecting Trojans using Reinforcement Learning (DAC 2022).
//!
//! This crate implements the paper's primary contribution: a reinforcement
//! learning agent that searches for *maximal sets of compatible rare nets*
//! of a gate-level netlist and turns the `k` largest sets into a compact test
//! pattern set that activates rare Trojan triggers.
//!
//! # The staged session API
//!
//! The primary entry point is [`DeterrentSession`], which exposes the
//! pipeline (Figure 4 of the paper) as six typed stages, each returning a
//! cheaply clonable, cache-keyed artifact:
//!
//! 1. [`DeterrentSession::estimate`] → [`ProbArtifact`] — Monte-Carlo
//!    signal-probability estimation with a single-pass compacting witness
//!    harvest ([`sim::RareNetEstimate`]), keyed *without* the rareness
//!    threshold θ so every θ of a sweep shares it.
//! 2. [`DeterrentSession::analyze`] → [`RareArtifact`] — rare-net
//!    identification by thresholding the shared estimate at θ
//!    ([`sim::rare::RareNetAnalysis`]), a pure prefix slice of the
//!    estimate's candidates and witness bank.
//! 3. [`DeterrentSession::build_graph`] → [`GraphArtifact`] — offline
//!    pairwise compatibility ([`CompatibilityGraph`]). The paper answers
//!    every pair with SAT across 64 processes; this implementation runs a
//!    three-tier simulation-first funnel (retained Monte-Carlo witnesses →
//!    cone-support pruning and cost-model-driven exhaustive cone enumeration
//!    → cone-restricted incremental SAT) that reaches the bit-identical
//!    graph with a fraction of the SAT queries.
//! 4. [`DeterrentSession::train`] → [`PolicyArtifact`] — PPO over the
//!    compatible-set MDP ([`CompatSetEnv`]) with action masking,
//!    configurable reward mode, and boosted exploration.
//! 5. [`DeterrentSession::select`] → [`SetsArtifact`] — greedy evaluation
//!    rollouts plus `k`-largest distinct set selection.
//! 6. [`DeterrentSession::generate`] → [`DeterrentResult`] — SAT/witness
//!    justification of each selected set into a concrete test pattern.
//!
//! Artifacts live in an [`ArtifactStore`] keyed by (netlist fingerprint,
//! per-stage config section, seed, upstream key) — never the thread count —
//! with hit/miss counters. Sessions sharing a store recompute only the
//! stages whose inputs changed, which is what the paper's evaluation grids
//! need: the Table 1 / Figure 2–3 ablations share one analysis and one
//! graph across all cells, and threshold transfer shares one estimation
//! across every θ.
//! [`RunObserver`]s receive stage start/finish events ([`StageMetrics`]) and
//! per-round training progress.
//!
//! [`DeterrentConfig`] groups its knobs by stage ([`AnalysisConfig`],
//! [`CompatConfig`], [`TrainConfig`], [`SelectConfig`]) with `with_*`
//! builder methods for the common ablations.
//!
//! ```
//! use deterrent_core::{DeterrentConfig, DeterrentSession};
//! use netlist::synth::BenchmarkProfile;
//!
//! let netlist = BenchmarkProfile::c2670().scaled(30).generate(1);
//! let config = DeterrentConfig::fast_preset().with_threshold(0.2);
//! let mut session = DeterrentSession::new(&netlist, config);
//! let rare = session.analyze();
//! let graph = session.build_graph(&rare);
//! let policy = session.train(&graph);
//! let sets = session.select(&graph, &policy);
//! let result = session.generate(&graph, &policy, &sets);
//! assert!(!result.patterns.is_empty());
//! ```
//!
//! The monolithic [`Deterrent::run`] wrapper remains for one-shot callers
//! and produces bit-identical output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
pub mod cache;
mod codec;
mod compat;
mod config;
mod env;
mod fault;
mod observer;
mod pipeline;
mod selection;
mod session;

pub use artifact::{
    ArtifactStore, GeneratedPatterns, GraphArtifact, PatternsArtifact, PolicyArtifact,
    ProbArtifact, RareArtifact, SelectedSets, SetsArtifact, StageCounters, StoreCounters,
    TrainedPolicy,
};
pub use cache::{
    parse_bytes, CacheError, CacheErrorKind, CacheEvents, CachePolicy, CacheStats, Eviction,
    GcReport, StageUsage, VerifyReport,
};
pub use codec::{decode_record, encode_record, QUIET_ENV_VAR, SLIM_LOSS_KEEP};
pub use compat::{
    CompatBuildOptions, CompatStats, CompatStrategy, CompatibilityGraph, EnumerationBudget,
    FunnelOptions,
};
pub use config::{
    AnalysisConfig, CompatCheck, CompatConfig, DeterrentConfig, RewardMode, SelectConfig,
    TrainConfig,
};
pub use env::CompatSetEnv;
pub use fault::{FaultCounts, FaultKind, FaultPlan, FAULT_PLAN_ENV_VAR};
pub use observer::{RecordingObserver, RoundProgress, RunObserver, Stage, StageMetrics};
pub use pipeline::{Deterrent, DeterrentResult, TrainingMetrics};
pub use selection::{
    generate_patterns, generate_patterns_with, select_k_largest, PatternGenStats, RareNetSet,
};
pub use session::DeterrentSession;
