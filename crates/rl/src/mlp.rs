//! A dense multi-layer perceptron with manual backpropagation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully connected network with tanh hidden activations and a linear output
/// layer, trained by explicit backpropagation.
///
/// Parameters and gradients are stored as flat `f64` vectors per layer so the
/// [`crate::Adam`] optimizer can treat the whole network as one parameter
/// vector.
#[derive(Debug, Clone)]
pub struct Mlp {
    layer_sizes: Vec<usize>,
    /// weights[l] has shape (out, in) stored row-major; biases[l] has len out.
    weights: Vec<Vec<f64>>,
    biases: Vec<Vec<f64>>,
    grad_weights: Vec<Vec<f64>>,
    grad_biases: Vec<Vec<f64>>,
}

impl Mlp {
    /// Creates a network with the given layer sizes, e.g. `&[4, 32, 32, 2]`
    /// for two hidden layers of 32 units. Weights use Xavier-style
    /// initialization from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer sizes are given or any size is zero.
    #[must_use]
    pub fn new(layer_sizes: &[usize], seed: u64) -> Self {
        assert!(
            layer_sizes.len() >= 2,
            "need at least input and output sizes"
        );
        assert!(
            layer_sizes.iter().all(|&s| s > 0),
            "layer sizes must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights: Vec<Vec<f64>> = Vec::new();
        let mut biases: Vec<Vec<f64>> = Vec::new();
        for w in layer_sizes.windows(2) {
            let (n_in, n_out) = (w[0], w[1]);
            let scale = (6.0 / (n_in + n_out) as f64).sqrt();
            weights.push(
                (0..n_in * n_out)
                    .map(|_| rng.gen_range(-scale..scale))
                    .collect(),
            );
            biases.push(vec![0.0; n_out]);
        }
        let grad_weights = weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let grad_biases = biases.iter().map(|b| vec![0.0; b.len()]).collect();
        Self {
            layer_sizes: layer_sizes.to_vec(),
            weights,
            biases,
            grad_weights,
            grad_biases,
        }
    }

    /// The layer sizes the network was built with (input first, output
    /// last) — together with [`Mlp::parameters`] enough to reconstruct the
    /// network exactly.
    #[must_use]
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.layer_sizes[0]
    }

    /// Output dimension.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        *self.layer_sizes.last().expect("at least two layers")
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn num_parameters(&self) -> usize {
        self.weights.iter().map(Vec::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Runs a forward pass and returns the output activations.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match [`Mlp::input_dim`].
    #[must_use]
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_full(input).pop().expect("at least one layer")
    }

    /// Runs a forward pass returning the activations of every layer
    /// (including the input). Needed for backpropagation.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match [`Mlp::input_dim`].
    #[must_use]
    pub fn forward_full(&self, input: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let num_layers = self.weights.len();
        let mut acts = Vec::with_capacity(num_layers + 1);
        acts.push(input.to_vec());
        for l in 0..num_layers {
            let n_in = self.layer_sizes[l];
            let n_out = self.layer_sizes[l + 1];
            let prev = &acts[l];
            let mut out = vec![0.0; n_out];
            for (o, out_val) in out.iter_mut().enumerate() {
                let row = &self.weights[l][o * n_in..(o + 1) * n_in];
                let mut sum = self.biases[l][o];
                for (w, x) in row.iter().zip(prev.iter()) {
                    sum += w * x;
                }
                // tanh on hidden layers, identity on the output layer.
                *out_val = if l + 1 == num_layers { sum } else { sum.tanh() };
            }
            acts.push(out);
        }
        acts
    }

    /// Accumulates gradients for one sample given the activations from
    /// [`Mlp::forward_full`] and the gradient of the loss with respect to the
    /// network output. Gradients add up until [`Mlp::zero_grad`] is called.
    ///
    /// # Panics
    ///
    /// Panics if the shapes of `activations` or `grad_output` do not match
    /// the network.
    pub fn backward(&mut self, activations: &[Vec<f64>], grad_output: &[f64]) {
        let num_layers = self.weights.len();
        assert_eq!(
            activations.len(),
            num_layers + 1,
            "activation count mismatch"
        );
        assert_eq!(grad_output.len(), self.output_dim(), "output grad mismatch");
        let mut grad = grad_output.to_vec();
        for l in (0..num_layers).rev() {
            let n_in = self.layer_sizes[l];
            // Derivative through the activation of layer l's output.
            let mut delta = grad.clone();
            if l + 1 != num_layers {
                for (d, &a) in delta.iter_mut().zip(activations[l + 1].iter()) {
                    *d *= 1.0 - a * a; // d tanh(z)/dz = 1 - tanh(z)^2
                }
            }
            // Parameter gradients.
            for (o, &d) in delta.iter().enumerate() {
                self.grad_biases[l][o] += d;
                let row = &mut self.grad_weights[l][o * n_in..(o + 1) * n_in];
                for (i, g) in row.iter_mut().enumerate() {
                    *g += d * activations[l][i];
                }
            }
            // Gradient with respect to the previous layer's activations.
            if l > 0 {
                let mut prev_grad = vec![0.0; n_in];
                for (o, &d) in delta.iter().enumerate() {
                    let row = &self.weights[l][o * n_in..(o + 1) * n_in];
                    for (i, pg) in prev_grad.iter_mut().enumerate() {
                        *pg += d * row[i];
                    }
                }
                grad = prev_grad;
            }
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grad_weights {
            g.iter_mut().for_each(|x| *x = 0.0);
        }
        for g in &mut self.grad_biases {
            g.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Flattens parameters into a single vector (weights then biases, layer by
    /// layer). Used by the optimizer.
    #[must_use]
    pub fn parameters(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for (w, b) in self.weights.iter().zip(self.biases.iter()) {
            out.extend_from_slice(w);
            out.extend_from_slice(b);
        }
        out
    }

    /// Flattened gradients in the same order as [`Mlp::parameters`].
    #[must_use]
    pub fn gradients(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for (w, b) in self.grad_weights.iter().zip(self.grad_biases.iter()) {
            out.extend_from_slice(w);
            out.extend_from_slice(b);
        }
        out
    }

    /// Overwrites parameters from a flat vector produced by
    /// [`Mlp::parameters`] (after an optimizer step).
    ///
    /// # Panics
    ///
    /// Panics if `params` has the wrong length.
    pub fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter count mismatch"
        );
        let mut offset = 0;
        for (w, b) in self.weights.iter_mut().zip(self.biases.iter_mut()) {
            let w_len = w.len();
            w.copy_from_slice(&params[offset..offset + w_len]);
            offset += w_len;
            let b_len = b.len();
            b.copy_from_slice(&params[offset..offset + b_len]);
            offset += b_len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_parameter_count() {
        let net = Mlp::new(&[3, 8, 2], 1);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.num_parameters(), 3 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(net.forward(&[0.1, -0.2, 0.3]).len(), 2);
    }

    #[test]
    fn parameters_round_trip() {
        let mut net = Mlp::new(&[2, 4, 1], 3);
        let p = net.parameters();
        let out_before = net.forward(&[0.5, -0.5]);
        let mut p2 = p.clone();
        p2[0] += 0.1;
        net.set_parameters(&p2);
        assert_ne!(net.forward(&[0.5, -0.5]), out_before);
        net.set_parameters(&p);
        assert_eq!(net.forward(&[0.5, -0.5]), out_before);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut net = Mlp::new(&[3, 5, 2], 42);
        let input = [0.3, -0.7, 0.2];
        // Loss = sum of squared outputs.
        let acts = net.forward_full(&input);
        let out = acts.last().unwrap().clone();
        let grad_out: Vec<f64> = out.iter().map(|&o| 2.0 * o).collect();
        net.zero_grad();
        net.backward(&acts, &grad_out);
        let analytic = net.gradients();

        let params = net.parameters();
        let eps = 1e-6;
        let loss = |net: &Mlp| -> f64 { net.forward(&input).iter().map(|o| o * o).sum() };
        for idx in [0usize, 3, 10, params.len() - 1, params.len() / 2] {
            let mut plus = params.clone();
            plus[idx] += eps;
            let mut minus = params.clone();
            minus[idx] -= eps;
            let mut net_p = net.clone();
            net_p.set_parameters(&plus);
            let mut net_m = net.clone();
            net_m.set_parameters(&minus);
            let numeric = (loss(&net_p) - loss(&net_m)) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 1e-5,
                "param {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut net = Mlp::new(&[2, 3, 1], 5);
        let acts = net.forward_full(&[1.0, -1.0]);
        net.backward(&acts, &[1.0]);
        let g1 = net.gradients();
        net.backward(&acts, &[1.0]);
        let g2 = net.gradients();
        for (a, b) in g1.iter().zip(g2.iter()) {
            assert!((b - 2.0 * a).abs() < 1e-12);
        }
        net.zero_grad();
        assert!(net.gradients().iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_dim_panics() {
        let net = Mlp::new(&[2, 2], 0);
        let _ = net.forward(&[1.0]);
    }

    #[test]
    fn deterministic_init_given_seed() {
        let a = Mlp::new(&[4, 8, 3], 9);
        let b = Mlp::new(&[4, 8, 3], 9);
        assert_eq!(a.parameters(), b.parameters());
        let c = Mlp::new(&[4, 8, 3], 10);
        assert_ne!(a.parameters(), c.parameters());
    }
}
