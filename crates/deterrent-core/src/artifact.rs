//! Cache-keyed stage artifacts and the store that shares them.
//!
//! Every stage of a [`crate::DeterrentSession`] produces a cheaply clonable
//! artifact (the heavy payload lives behind an [`Arc`]) whose **key** is a
//! stable fingerprint of exactly the inputs that can change the stage's
//! output: the netlist's behavioural content, the stage's own config
//! section, the master seed, and the key of the upstream artifact. Thread
//! counts are deliberately excluded — the deterministic parallel runtime
//! guarantees bit-identical results at any worker count, so a graph built at
//! one thread is served verbatim to a four-thread session.
//!
//! An [`ArtifactStore`] is a shareable handle (clone it freely); ablation
//! grids hand one store to every cell's session so only the stages whose
//! config slice actually changed are recomputed. Per-stage hit/miss counters
//! make the reuse auditable.
//!
//! # The persistent disk tier
//!
//! A store created with [`ArtifactStore::with_disk`] additionally persists
//! every artifact to `<cache_dir>/<stage>/<key:016x>.dtc` using the
//! hand-rolled versioned binary codec in [`crate::codec`] (little-endian
//! fields, magic + format-version + checksum header, atomic
//! rename-on-write; see that module's docs for the exact layout and the
//! versioning policy). Lookups then go **memory → disk → compute**: a disk
//! hit decodes the file, promotes the artifact into the memory tier, and
//! counts in [`StageCounters::disk_hits`]; corrupt, truncated,
//! version-mismatched, or I/O-failing files are treated as misses (counted
//! in [`StageCounters::disk_corrupt`], classified per-kind in
//! [`crate::CacheEvents`], and announced by one rate-limited stderr warning
//! unless `DETERRENT_QUIET=1`), recomputed, and overwritten. Because
//! keys never include the thread count and the codec round-trips every
//! payload bit-exactly, a warm-from-disk run is bit-identical to a cold run
//! at any thread count — which is what lets a second CLI invocation of the
//! bench binaries skip estimation, graph construction, training, selection,
//! and generation entirely.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rl::{PpoConfig, PpoTrainer, TrainReport};
use sim::rare::RareNetAnalysis;
use sim::{PatternSource, RareNetEstimate, TestPattern};

use crate::cache::{CacheError, CacheErrorKind, CacheEvents};
use crate::codec::{self, DiskLookup, DiskStage, DiskStore};
use crate::fault::FaultPlan;
use crate::{
    AnalysisConfig, CachePolicy, CompatConfig, CompatibilityGraph, EnumerationBudget,
    PatternGenStats, RareNetSet, SelectConfig, Stage, TrainConfig,
};

// ───────────────────────── fingerprinting ─────────────────────────

/// Incremental FNV-1a over explicitly serialized fields: stable across runs
/// and platforms, unlike [`std::collections::hash_map::DefaultHasher`].
#[derive(Clone, Copy)]
pub(crate) struct Fp(u64);

impl Fp {
    pub(crate) fn new(tag: &str) -> Self {
        Fp(0xcbf2_9ce4_8422_2325).bytes(tag.as_bytes())
    }

    pub(crate) fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub(crate) fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Bulk variant for large word arrays (witness-bank rows): one
    /// xor + multiply per word instead of eight. Weaker per-bit diffusion
    /// than the byte-wise path, which is fine for content identity — and
    /// ~8× cheaper on the banks' millions of words.
    pub(crate) fn words(mut self, words: &[u64]) -> Self {
        for &w in words {
            self.0 ^= w;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub(crate) fn usize(self, v: usize) -> Self {
        self.u64(v as u64)
    }

    pub(crate) fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    pub(crate) fn bool(self, v: bool) -> Self {
        self.u64(u64::from(v))
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

fn fp_ppo(fp: Fp, ppo: &PpoConfig) -> Fp {
    let mut fp = fp
        .f64(ppo.gamma)
        .f64(ppo.gae_lambda)
        .f64(ppo.clip_epsilon)
        .f64(ppo.entropy_coef)
        .f64(ppo.value_coef)
        .f64(ppo.learning_rate)
        .usize(ppo.epochs)
        .usize(ppo.batch_size)
        .usize(ppo.hidden_sizes.len());
    for &h in &ppo.hidden_sizes {
        fp = fp.usize(h);
    }
    fp
}

fn fp_budget(fp: Fp, budget: &EnumerationBudget) -> Fp {
    match *budget {
        EnumerationBudget::Disabled => fp.u64(0),
        EnumerationBudget::FixedSupportLimit(limit) => fp.u64(1).u64(u64::from(limit)),
        EnumerationBudget::Adaptive {
            sat_base_word_ops,
            sat_per_gate_word_ops,
            max_support,
        } => fp
            .u64(2)
            .u64(sat_base_word_ops)
            .u64(sat_per_gate_word_ops)
            .u64(u64::from(max_support)),
        EnumerationBudget::SelfTuning {
            probe_pairs,
            max_support,
        } => fp
            .u64(3)
            .u64(probe_pairs as u64)
            .u64(u64::from(max_support)),
    }
}

fn fp_solver(fp: Fp, config: &sat::SolverConfig) -> Fp {
    let fp = match config.restarts {
        sat::RestartPolicy::Luby { unit } => fp.u64(0).u64(unit),
        sat::RestartPolicy::Geometric { first } => fp.u64(1).u64(first),
    };
    fp.bool(config.clause_deletion)
        .u64(config.learnt_cap_min)
        .u64(config.learnt_cap_growth_percent)
        .u64(config.learnt_cap_origin_divisor)
}

fn fp_compat(fp: Fp, config: &CompatConfig) -> Fp {
    match config.strategy {
        crate::CompatStrategy::AllSat => fp.u64(0),
        crate::CompatStrategy::Funnel(f) => fp_solver(
            fp_budget(
                fp.u64(1)
                    .bool(f.sim_witnesses)
                    .bool(f.structural_pruning)
                    .bool(f.cone_sat),
                &f.enumeration,
            ),
            &f.solver,
        ),
    }
}

/// Fingerprint of every *semantic* field of a
/// [`crate::DeterrentConfig`] — the four stage sections plus the master
/// seed — excluding the thread knob and the cache settings, which never
/// affect results. See [`crate::DeterrentConfig::content_fingerprint`].
pub(crate) fn config_fingerprint(config: &crate::DeterrentConfig) -> u64 {
    let fp = Fp::new("deterrent/config")
        .f64(config.analysis.rareness_threshold)
        .usize(config.analysis.probability_patterns)
        .f64(config.analysis.witness_retain_threshold);
    let fp = fp_compat(fp, &config.compat);
    let fp = fp
        .u64(config.train.reward_mode as u64)
        .bool(config.train.masking)
        .u64(config.train.compat_check as u64)
        .usize(config.train.episodes)
        .usize(config.train.steps_per_episode)
        .usize(config.train.rollout_round);
    fp_ppo(fp, &config.train.ppo)
        .usize(config.select.eval_rollouts)
        .usize(config.select.k_patterns)
        .u64(config.seed)
        .finish()
}

/// Key of a [`ProbArtifact`] computed by the session's estimate stage:
/// netlist content × pattern budget × retention ceiling × seed. θ is
/// deliberately absent — every θ of a sweep shares this key, which is what
/// makes a θ-sweep pay for Monte-Carlo estimation exactly once per
/// (netlist, seed).
pub(crate) fn prob_key(netlist_fp: u64, config: &AnalysisConfig, seed: u64) -> u64 {
    Fp::new("deterrent/estimate")
        .u64(netlist_fp)
        .f64(config.effective_retain())
        .usize(config.probability_patterns)
        .u64(seed)
        .finish()
}

/// Key of a [`RareArtifact`] computed by the session's own analyze stage:
/// θ layered on top of the prob key, so re-thresholding the shared
/// estimation is the only work a new θ pays for.
pub(crate) fn rare_key(prob_key: u64, theta: f64) -> u64 {
    Fp::new("deterrent/threshold")
        .u64(prob_key)
        .f64(theta)
        .finish()
}

/// Key of an imported (externally computed) analysis: a fingerprint of its
/// *content* — rare nets, threshold, and witness bank — so two sessions
/// importing equal analyses share downstream artifacts.
pub(crate) fn imported_rare_key(netlist_fp: u64, analysis: &RareNetAnalysis) -> u64 {
    let mut fp = Fp::new("deterrent/import")
        .u64(netlist_fp)
        .f64(analysis.threshold())
        .usize(analysis.len());
    for r in analysis.rare_nets() {
        fp = fp
            .usize(r.net.index())
            .bool(r.rare_value)
            .f64(r.probability);
    }
    match analysis.witnesses() {
        None => fp = fp.u64(0),
        Some(bank) => {
            fp = fp.u64(1).usize(bank.num_patterns());
            for t in 0..bank.len() {
                fp = fp.words(bank.row(t));
            }
            fp = match bank.source() {
                None => fp.u64(0),
                Some(PatternSource::Random { width, seed }) => fp.u64(1).usize(width).u64(seed),
                Some(PatternSource::Exhaustive { width }) => fp.u64(2).usize(width),
            };
        }
    }
    fp.finish()
}

/// Key of a [`GraphArtifact`] derived from the rare artifact `parent`.
pub(crate) fn graph_key(parent: u64, config: &CompatConfig) -> u64 {
    fp_compat(Fp::new("deterrent/graph").u64(parent), config).finish()
}

/// Key of a [`PolicyArtifact`] derived from the graph artifact `parent`.
pub(crate) fn policy_key(parent: u64, config: &TrainConfig, seed: u64) -> u64 {
    let fp = Fp::new("deterrent/train")
        .u64(parent)
        .u64(config.reward_mode as u64)
        .bool(config.masking)
        .u64(config.compat_check as u64)
        .usize(config.episodes)
        .usize(config.steps_per_episode)
        .usize(config.rollout_round)
        .u64(seed);
    fp_ppo(fp, &config.ppo).finish()
}

/// Key of a [`SetsArtifact`] derived from the policy artifact `parent`.
pub(crate) fn sets_key(parent: u64, config: &SelectConfig, seed: u64) -> u64 {
    Fp::new("deterrent/select")
        .u64(parent)
        .usize(config.eval_rollouts)
        .usize(config.k_patterns)
        .u64(seed)
        .finish()
}

/// Key of a [`PatternsArtifact`] derived from the sets artifact `parent`.
/// Generation has no config section of its own — the selected sets (whose
/// key already chains netlist → analysis → graph → policy) determine the
/// patterns completely.
pub(crate) fn patterns_key(parent: u64) -> u64 {
    Fp::new("deterrent/generate").u64(parent).finish()
}

// ───────────────────────── artifacts ─────────────────────────

/// Output of the estimate stage: the θ-independent half of rare-net
/// analysis — signal probabilities for every net plus the rarest-first
/// candidate list and compacted witness rows retained up to the
/// configured retention ceiling — behind an [`Arc`].
///
/// [`sim::RareNetEstimate::threshold`] turns this into the
/// [`RareArtifact`] of any θ up to the ceiling by slicing a prefix, so a
/// θ-sweep re-simulates nothing.
#[derive(Debug, Clone)]
pub struct ProbArtifact {
    pub(crate) key: u64,
    estimate: Arc<RareNetEstimate>,
}

impl ProbArtifact {
    pub(crate) fn new(key: u64, estimate: RareNetEstimate) -> Self {
        Self {
            key,
            estimate: Arc::new(estimate),
        }
    }

    /// The cache key (netlist fingerprint ⊕ pattern budget ⊕ retention
    /// ceiling ⊕ seed — never θ).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The shared estimation result.
    #[must_use]
    pub fn estimate(&self) -> &RareNetEstimate {
        &self.estimate
    }

    /// Number of candidate nets retained below the retention ceiling.
    #[must_use]
    pub fn num_candidates(&self) -> usize {
        self.estimate.num_candidates()
    }
}

/// Output of the analyze stage: the rare-net analysis (with its retained
/// witness bank) behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct RareArtifact {
    pub(crate) key: u64,
    analysis: Arc<RareNetAnalysis>,
}

impl RareArtifact {
    pub(crate) fn new(key: u64, analysis: RareNetAnalysis) -> Self {
        Self {
            key,
            analysis: Arc::new(analysis),
        }
    }

    /// The cache key (prob-artifact key ⊕ θ for session-computed
    /// analyses; a content fingerprint for imported ones).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The rare-net analysis.
    #[must_use]
    pub fn analysis(&self) -> &RareNetAnalysis {
        &self.analysis
    }

    /// Number of rare nets found.
    #[must_use]
    pub fn len(&self) -> usize {
        self.analysis.len()
    }

    /// `true` when no net is rare at the threshold.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.analysis.is_empty()
    }
}

/// Output of the build-graph stage: the pairwise-compatibility graph behind
/// an [`Arc`], plus the threshold it answers for.
#[derive(Debug, Clone)]
pub struct GraphArtifact {
    pub(crate) key: u64,
    graph: Arc<CompatibilityGraph>,
    pub(crate) rareness_threshold: f64,
    pub(crate) build_seconds: f64,
}

impl GraphArtifact {
    pub(crate) fn new(
        key: u64,
        graph: CompatibilityGraph,
        rareness_threshold: f64,
        build_seconds: f64,
    ) -> Self {
        Self {
            key,
            graph: Arc::new(graph),
            rareness_threshold,
            build_seconds,
        }
    }

    /// The cache key (rare-artifact key ⊕ compat config).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The compatibility graph.
    #[must_use]
    pub fn graph(&self) -> &CompatibilityGraph {
        &self.graph
    }

    /// The rareness threshold of the originating analysis.
    #[must_use]
    pub fn rareness_threshold(&self) -> f64 {
        self.rareness_threshold
    }

    /// Wall-clock seconds the (cold) build took.
    #[must_use]
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }
}

/// Payload of a [`PolicyArtifact`].
#[derive(Debug)]
pub struct TrainedPolicy {
    /// The trained PPO agent (frozen; the select stage rolls it out
    /// greedily).
    pub trainer: PpoTrainer,
    /// Episode rewards/lengths, losses, wall clock.
    pub report: TrainReport,
    /// Episode-final compatible sets harvested during training, in episode
    /// order.
    pub harvested_sets: Vec<Vec<usize>>,
    /// Exact SAT compatibility checks spent inside training environments
    /// (non-zero only under [`crate::CompatCheck::ExactSat`]).
    pub env_sat_checks: u64,
    /// Wall-clock seconds of the (cold) training run.
    pub training_seconds: f64,
    /// Mean reward over the last 10% of training episodes.
    pub final_mean_reward: f64,
}

/// Output of the train stage: the trained policy and its training harvest,
/// behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct PolicyArtifact {
    pub(crate) key: u64,
    inner: Arc<TrainedPolicy>,
}

impl PolicyArtifact {
    pub(crate) fn new(key: u64, inner: TrainedPolicy) -> Self {
        Self {
            key,
            inner: Arc::new(inner),
        }
    }

    /// The cache key (graph-artifact key ⊕ train config ⊕ seed).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The trained policy and its training harvest.
    #[must_use]
    pub fn policy(&self) -> &TrainedPolicy {
        &self.inner
    }
}

/// Payload of a [`SetsArtifact`].
#[derive(Debug)]
pub struct SelectedSets {
    /// The `k` largest distinct compatible sets, largest first.
    pub sets: Vec<RareNetSet>,
    /// Size of the largest harvested compatible set (training + evaluation).
    pub max_compatible_set: usize,
    /// Exact SAT checks spent inside the greedy evaluation environments.
    pub eval_env_sat_checks: u64,
    /// Total candidate sets harvested before selection.
    pub harvested_total: usize,
}

/// Output of the select stage: the chosen compatible sets, behind an
/// [`Arc`].
#[derive(Debug, Clone)]
pub struct SetsArtifact {
    pub(crate) key: u64,
    inner: Arc<SelectedSets>,
}

impl SetsArtifact {
    pub(crate) fn new(key: u64, inner: SelectedSets) -> Self {
        Self {
            key,
            inner: Arc::new(inner),
        }
    }

    /// The cache key (policy-artifact key ⊕ select config ⊕ seed).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The selection result.
    #[must_use]
    pub fn selected(&self) -> &SelectedSets {
        &self.inner
    }

    /// The selected sets, largest first.
    #[must_use]
    pub fn sets(&self) -> &[RareNetSet] {
        &self.inner.sets
    }
}

/// Payload of a [`PatternsArtifact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedPatterns {
    /// The generated test patterns, deduplicated, in selected-set order.
    pub patterns: Vec<TestPattern>,
    /// How the patterns were produced (witness reuse vs SAT queries).
    pub stats: PatternGenStats,
}

/// Output of the generate stage: the concrete test patterns, behind an
/// [`Arc`]. Cached so a fully warm session skips even the SAT/witness
/// justification of the selected sets.
#[derive(Debug, Clone)]
pub struct PatternsArtifact {
    pub(crate) key: u64,
    inner: Arc<GeneratedPatterns>,
}

impl PatternsArtifact {
    pub(crate) fn new(key: u64, inner: GeneratedPatterns) -> Self {
        Self {
            key,
            inner: Arc::new(inner),
        }
    }

    /// The cache key (sets-artifact key).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The generated patterns and their generation stats.
    #[must_use]
    pub fn generated(&self) -> &GeneratedPatterns {
        &self.inner
    }

    /// The generated test patterns.
    #[must_use]
    pub fn patterns(&self) -> &[TestPattern] {
        &self.inner.patterns
    }
}

// ───────────────────────── the store ─────────────────────────

/// Hit/miss counters of one cached stage, split by tier.
///
/// With a disk tier attached, every lookup resolves to exactly one of
/// `hits` (memory), `disk_hits`, or `misses` (computed); `disk_misses` and
/// `disk_corrupt` subdivide the misses by what the disk probe found, so
/// `misses == disk_misses + disk_corrupt` whenever a disk tier is present.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Lookups served from the in-memory tier.
    pub hits: u64,
    /// Lookups that had to compute (and then inserted into every tier).
    pub misses: u64,
    /// Lookups served by decoding a valid artifact file from the disk tier
    /// (the artifact is then promoted into the memory tier).
    pub disk_hits: u64,
    /// Disk probes that found no artifact file.
    pub disk_misses: u64,
    /// Disk probes that found a corrupt, truncated, or version-mismatched
    /// file — treated as a miss; the recomputed artifact overwrites it.
    pub disk_corrupt: u64,
}

/// Per-stage hit/miss counters of an [`ArtifactStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Estimate-stage counters.
    pub estimate: StageCounters,
    /// Analyze-stage counters.
    pub analyze: StageCounters,
    /// Build-graph-stage counters.
    pub build_graph: StageCounters,
    /// Train-stage counters.
    pub train: StageCounters,
    /// Select-stage counters.
    pub select: StageCounters,
    /// Generate-stage counters.
    pub generate: StageCounters,
}

impl StoreCounters {
    /// The counters of `stage`.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> StageCounters {
        match stage {
            Stage::Estimate => self.estimate,
            Stage::Analyze => self.analyze,
            Stage::BuildGraph => self.build_graph,
            Stage::Train => self.train,
            Stage::Select => self.select,
            Stage::Generate => self.generate,
        }
    }

    /// `(stage, counters)` for every cached stage, in pipeline order.
    #[must_use]
    pub fn stages(&self) -> [(Stage, StageCounters); 6] {
        [
            (Stage::Estimate, self.estimate),
            (Stage::Analyze, self.analyze),
            (Stage::BuildGraph, self.build_graph),
            (Stage::Train, self.train),
            (Stage::Select, self.select),
            (Stage::Generate, self.generate),
        ]
    }

    /// Total memory-tier hits across all stages.
    #[must_use]
    pub fn total_hits(&self) -> u64 {
        self.stages().iter().map(|(_, c)| c.hits).sum()
    }

    /// Total computations (lookups no tier could serve) across all stages.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.stages().iter().map(|(_, c)| c.misses).sum()
    }

    /// Total disk-tier hits across all stages.
    #[must_use]
    pub fn total_disk_hits(&self) -> u64 {
        self.stages().iter().map(|(_, c)| c.disk_hits).sum()
    }

    /// Total corrupt artifact files encountered across all stages.
    #[must_use]
    pub fn total_disk_corrupt(&self) -> u64 {
        self.stages().iter().map(|(_, c)| c.disk_corrupt).sum()
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    prob: HashMap<u64, ProbArtifact>,
    rare: HashMap<u64, RareArtifact>,
    graph: HashMap<u64, GraphArtifact>,
    policy: HashMap<u64, PolicyArtifact>,
    sets: HashMap<u64, SetsArtifact>,
    patterns: HashMap<u64, PatternsArtifact>,
    counters: StoreCounters,
}

/// A shareable, thread-safe store of stage artifacts.
///
/// Cloning the store clones a *handle*: all clones see the same cache. Hand
/// one store to every cell of an ablation grid (via
/// [`crate::DeterrentSession::with_store`]) and the shared prefix of the
/// pipeline — typically rare-net analysis and the compatibility graph — is
/// computed once.
///
/// A store created with [`ArtifactStore::with_disk`] adds a persistent tier
/// under a cache directory: lookups go memory → disk → compute, inserts
/// write both tiers, and invalid files silently recompute (see the
/// module docs). Stores sharing one directory — concurrently, even
/// across processes — are safe: files are written atomically, so racing
/// writers at worst duplicate identical work.
///
/// Lookups and inserts are individually atomic but a miss does not reserve
/// its key: two *simultaneous* sessions racing on the same cold key will
/// each compute the artifact (both correct and identical — last insert
/// wins) and each count a miss. Drive grid cells sequentially, or warm the
/// store first, when the counters feed assertions.
#[derive(Debug, Clone, Default)]
pub struct ArtifactStore {
    inner: Arc<Mutex<StoreInner>>,
    disk: Option<Arc<DiskStore>>,
}

/// Generates the memory → disk → compute lookup and the write-both-tiers
/// insert for one cached stage (the six stages differ only in artifact
/// type, map field, counter field, and codec functions).
macro_rules! stage_cache {
    (
        $(#[$doc:meta])*
        $lookup:ident, $insert:ident, $map:ident, $counter:ident, $stage:expr,
        $artifact:ty, $encode:path, $decode:path
    ) => {
        $(#[$doc])*
        pub(crate) fn $lookup(&self, key: u64) -> Option<$artifact> {
            {
                let mut inner = self.lock();
                if let Some(found) = inner.$map.get(&key).cloned() {
                    inner.counters.$counter.hits += 1;
                    return Some(found);
                }
            }
            // Memory miss; probe the disk tier (no lock held during I/O).
            let disk_result = self
                .disk
                .as_ref()
                .map(|disk| match disk.load($stage, key) {
                    DiskLookup::Hit(payload) => match $decode(key, &payload) {
                        Ok(artifact) => DiskLookup::Hit(artifact),
                        Err(e) => DiskLookup::Failed(CacheError::new(
                            CacheErrorKind::Corrupt,
                            $stage.stage(),
                            key,
                            format!("payload decode failed: {e:?}"),
                        )),
                    },
                    DiskLookup::Miss => DiskLookup::Miss,
                    DiskLookup::Failed(err) => DiskLookup::Failed(err),
                });
            if let Some(DiskLookup::Failed(err)) = &disk_result {
                if let Some(disk) = &self.disk {
                    disk.note_failure(err);
                }
            }
            let mut inner = self.lock();
            let c = &mut inner.counters.$counter;
            match disk_result {
                Some(DiskLookup::Hit(artifact)) => {
                    c.disk_hits += 1;
                    inner.$map.insert(key, artifact.clone());
                    Some(artifact)
                }
                Some(DiskLookup::Miss) => {
                    c.disk_misses += 1;
                    c.misses += 1;
                    None
                }
                Some(DiskLookup::Failed(_)) => {
                    c.disk_corrupt += 1;
                    c.misses += 1;
                    None
                }
                None => {
                    c.misses += 1;
                    None
                }
            }
        }

        pub(crate) fn $insert(&self, artifact: &$artifact) {
            self.lock().$map.insert(artifact.key, artifact.clone());
            if let Some(disk) = &self.disk {
                disk.store($stage, artifact.key, &$encode(artifact, disk.slim_policy()));
            }
        }
    };
}

impl ArtifactStore {
    /// A fresh, empty, memory-only store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A store backed by the persistent disk tier at `cache_dir` (created
    /// on first write), with the default unbounded [`CachePolicy`].
    /// Artifacts already on disk — from earlier runs or other processes —
    /// are served without recomputation.
    #[must_use]
    pub fn with_disk(cache_dir: impl Into<PathBuf>) -> Self {
        Self::with_disk_policy(cache_dir, CachePolicy::default())
    }

    /// Like [`ArtifactStore::with_disk`], but with an explicit
    /// [`CachePolicy`]: size budgets are enforced (LRU-first) after every
    /// insert, and `slim_policy` switches train-stage artifacts to the slim
    /// codec variant. Policies never affect results — only which lookups
    /// are served warm — so they are excluded from every cache key.
    #[must_use]
    pub fn with_disk_policy(cache_dir: impl Into<PathBuf>, policy: CachePolicy) -> Self {
        Self::with_disk_policy_faults(cache_dir, policy, None)
    }

    /// Like [`ArtifactStore::with_disk_policy`], but threading an optional
    /// [`FaultPlan`] into the disk tier: the plan deterministically injects
    /// corrupt reads, transient I/O errors, and eviction races at seeded
    /// `(stage, key)` sites (each at most once), exercising exactly the
    /// recover-by-recompute paths real faults would take. A `None` plan is
    /// identical to [`ArtifactStore::with_disk_policy`].
    #[must_use]
    pub fn with_disk_policy_faults(
        cache_dir: impl Into<PathBuf>,
        policy: CachePolicy,
        faults: Option<FaultPlan>,
    ) -> Self {
        Self {
            inner: Arc::default(),
            disk: Some(Arc::new(DiskStore::with_faults(
                cache_dir.into(),
                policy,
                faults,
            ))),
        }
    }

    /// The disk-tier cache directory, when one is attached.
    #[must_use]
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref().map(DiskStore::root)
    }

    /// Classified disk-tier failure counters ([`CacheEvents`]): how many
    /// lookups hit corrupt, version-mismatched, or I/O-failing artifact
    /// files (all healed by recompute), and how many files budget
    /// enforcement evicted. All zero for a memory-only store.
    #[must_use]
    pub fn cache_events(&self) -> CacheEvents {
        self.disk
            .as_deref()
            .map(DiskStore::events)
            .unwrap_or_default()
    }

    /// The per-stage counters rendered as the stable, machine-greppable
    /// `[store]` summary lines the bench and campaign binaries print to
    /// stderr (one line for the disk tier location, then one per stage):
    ///
    /// ```text
    /// [store] analyze: mem_hits=2 disk_hits=1 computed=0 disk_misses=0 corrupt=0
    /// ```
    ///
    /// `computed` is the number of lookups no cache tier could serve (the
    /// stage's `misses` counter). CI gates grep these lines to prove a warm
    /// run recomputed nothing.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let counters = self.counters();
        let mut out = String::new();
        match self.disk_dir() {
            Some(dir) => {
                let _ = writeln!(out, "[store] disk tier at {}", dir.display());
            }
            None => out.push_str("[store] memory-only (no cache dir)\n"),
        }
        for (stage, c) in counters.stages() {
            let _ = writeln!(
                out,
                "[store] {stage}: mem_hits={} disk_hits={} computed={} disk_misses={} corrupt={}",
                c.hits, c.disk_hits, c.misses, c.disk_misses, c.disk_corrupt
            );
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().expect("artifact store lock poisoned")
    }

    /// Per-stage hit/miss counters so far.
    #[must_use]
    pub fn counters(&self) -> StoreCounters {
        self.lock().counters
    }

    /// Number of artifacts currently cached in memory (all stages).
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.lock();
        inner.prob.len()
            + inner.rare.len()
            + inner.graph.len()
            + inner.policy.len()
            + inner.sets.len()
            + inner.patterns.len()
    }

    /// `true` when nothing is cached in memory.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached artifact from the memory tier and zeroes the
    /// counters. Artifact files in the disk tier are left in place (they
    /// will serve subsequent lookups as disk hits).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.prob.clear();
        inner.rare.clear();
        inner.graph.clear();
        inner.policy.clear();
        inner.sets.clear();
        inner.patterns.clear();
        inner.counters = StoreCounters::default();
    }

    stage_cache!(
        lookup_prob,
        insert_prob,
        prob,
        estimate,
        DiskStage::Estimate,
        ProbArtifact,
        codec::encode_prob,
        codec::decode_prob
    );

    stage_cache!(
        lookup_rare,
        insert_rare,
        rare,
        analyze,
        DiskStage::Analyze,
        RareArtifact,
        codec::encode_rare,
        codec::decode_rare
    );

    stage_cache!(
        lookup_graph,
        insert_graph,
        graph,
        build_graph,
        DiskStage::Graph,
        GraphArtifact,
        codec::encode_graph,
        codec::decode_graph
    );

    stage_cache!(
        lookup_policy,
        insert_policy,
        policy,
        train,
        DiskStage::Train,
        PolicyArtifact,
        codec::encode_policy,
        codec::decode_policy
    );

    stage_cache!(
        lookup_sets,
        insert_sets,
        sets,
        select,
        DiskStage::Select,
        SetsArtifact,
        codec::encode_sets,
        codec::decode_sets
    );

    stage_cache!(
        lookup_patterns,
        insert_patterns,
        patterns,
        generate,
        DiskStage::Generate,
        PatternsArtifact,
        codec::encode_patterns,
        codec::decode_patterns
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn fingerprints_are_stable_and_field_sensitive() {
        let cfg = AnalysisConfig::default();
        let a = prob_key(1, &cfg, 7);
        assert_eq!(a, prob_key(1, &cfg, 7), "same inputs, same key");
        assert_ne!(a, prob_key(2, &cfg, 7), "netlist matters");
        assert_ne!(a, prob_key(1, &cfg, 8), "seed matters");
        let wider = AnalysisConfig {
            witness_retain_threshold: 0.4,
            ..cfg
        };
        assert_ne!(a, prob_key(1, &wider, 7), "retention ceiling matters");
        let tighter = AnalysisConfig {
            rareness_threshold: 0.09,
            ..cfg
        };
        assert_eq!(
            a,
            prob_key(1, &tighter, 7),
            "θ below the ceiling never touches the prob key"
        );
        assert_ne!(rare_key(a, 0.10), rare_key(a, 0.14), "θ layers on top");
        assert_ne!(rare_key(a, 0.10), prob_key(1, &cfg, 7), "distinct tags");
    }

    #[test]
    fn stage_keys_chain() {
        let compat = CompatConfig::default();
        let g1 = graph_key(1, &compat);
        let g2 = graph_key(2, &compat);
        assert_ne!(g1, g2, "a different parent invalidates downstream");
        let train = TrainConfig::default();
        assert_ne!(policy_key(g1, &train, 3), policy_key(g2, &train, 3));
        assert_ne!(policy_key(g1, &train, 3), policy_key(g1, &train, 4));
    }

    #[test]
    fn imported_keys_reflect_content() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(3);
        let fp = nl.content_fingerprint();
        let a = RareNetAnalysis::estimate(&nl, 0.2, 1024, 1);
        let b = RareNetAnalysis::estimate(&nl, 0.2, 1024, 1);
        assert_eq!(imported_rare_key(fp, &a), imported_rare_key(fp, &b));
        let c = RareNetAnalysis::estimate(&nl, 0.2, 1024, 2);
        assert_ne!(
            imported_rare_key(fp, &a),
            imported_rare_key(fp, &c),
            "different estimation seeds give different witness banks"
        );
    }

    #[test]
    fn store_counts_hits_and_misses() {
        let store = ArtifactStore::new();
        assert!(store.is_empty());
        assert!(store.lookup_rare(42).is_none());
        let nl = BenchmarkProfile::c2670().scaled(30).generate(1);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 512, 1);
        store.insert_rare(&RareArtifact::new(42, analysis));
        assert!(store.lookup_rare(42).is_some());
        let shared = store.clone();
        assert!(shared.lookup_rare(42).is_some(), "clones share the cache");
        let c = store.counters();
        assert_eq!(c.analyze.misses, 1);
        assert_eq!(c.analyze.hits, 2);
        assert_eq!(store.len(), 1);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.counters(), StoreCounters::default());
    }
}
