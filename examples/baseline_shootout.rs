//! Baseline shoot-out: run every technique (Random, MERO, TARMAC, TGRL-like,
//! ATPG stand-in, DETERRENT) on one benchmark and print a Table-2-style
//! comparison of test length and trigger coverage.
//!
//! ```text
//! cargo run --example baseline_shootout
//! ```

use deterrent_repro::baselines::{Atpg, Mero, RandomPatterns, Tarmac, TestGenerator, Tgrl};
use deterrent_repro::deterrent_core::{DeterrentConfig, DeterrentSession};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::trojan::{CoverageEvaluator, TrojanGenerator};

fn main() {
    let netlist = BenchmarkProfile::c2670().scaled(20).generate(11);
    // `--cache-dir DIR` (or DETERRENT_CACHE_DIR) persists the DETERRENT
    // artifacts; the baselines are cheap enough to always recompute.
    let mut config = DeterrentConfig::fast_preset()
        .with_threshold(0.15)
        .with_probability_patterns(8192)
        .with_seed(4);
    if let Some(dir) = deterrent_repro::cache_dir_arg() {
        config = config.with_cache_dir(dir);
    }
    let mut session = DeterrentSession::new(&netlist, config);
    let rare = session.analyze();
    let analysis = rare.analysis();
    let mut adversary = TrojanGenerator::new(&netlist, 555);
    let trojans = adversary.sample_many(analysis, 2, 40);
    println!(
        "{}: {} gates, {} rare nets, {} planted Trojans\n",
        netlist.name(),
        netlist.num_logic_gates(),
        analysis.len(),
        trojans.len()
    );
    let evaluator = CoverageEvaluator::new(&netlist, trojans);

    // TGRL sets the pattern budget for Random/TARMAC (the paper's protocol).
    let tgrl = Tgrl::new(30, 1).generate(&netlist, analysis);
    let budget = tgrl.len().max(8);

    let mut rows: Vec<(&str, Vec<deterrent_repro::sim::TestPattern>)> = vec![
        (
            "Random",
            RandomPatterns::new(budget, 1).generate(&netlist, analysis),
        ),
        ("TestMAX (ATPG)", Atpg::new(1).generate(&netlist, analysis)),
        (
            "MERO",
            Mero::new(5, budget * 50, 1).generate(&netlist, analysis),
        ),
        (
            "TARMAC",
            Tarmac::new(budget, 1).generate(&netlist, analysis),
        ),
        ("TGRL", tgrl),
    ];
    let deterrent = session.run_from(&rare);
    rows.push(("DETERRENT", deterrent.patterns.clone()));

    println!(
        "{:<18} {:>12} {:>12}",
        "technique", "test length", "cov (%)"
    );
    for (name, patterns) in &rows {
        let report = evaluator.evaluate(patterns);
        println!(
            "{name:<18} {:>12} {:>12.1}",
            patterns.len(),
            report.coverage_percent()
        );
    }
}
