//! `deterrent-submit` — submit one campaign to a running `deterrent-serve`.
//!
//! The grid flags mirror `deterrent-campaign`; the report TSV lands on
//! **stdout** (bit-identical to what the one-shot CLI would print for the
//! same grid) and streamed progress lines land on **stderr**, re-rendered
//! byte-identically to the CLI's own progress output.
//!
//! Flags:
//!
//! | flag | meaning | default |
//! |---|---|---|
//! | `--socket PATH` | daemon socket (else `DETERRENT_SOCKET`) | required |
//! | `--netlists A,B` | benchmark names | `c2670,c5315` |
//! | `--scale N` | profile divisor | `20` |
//! | `--thetas A,B` | rareness thresholds θ | `0.15,0.2` |
//! | `--seeds A,B` | master pipeline seeds | `1,2` |
//! | `--episodes N` | PPO episodes per cell | `40` |
//! | `--cell-threads N` | session workers inside each cell | `1` |
//! | `--priority N` | queue priority (higher dispatches first) | `0` |
//! | `--no-stream` | skip the progress event stream | stream |
//! | `--ping` | just probe for a live daemon and exit | off |
//! | `--quiet` | suppress progress lines on stderr | off |
//!
//! Exit codes: `0` when every cell recovered, `1` when the daemon
//! reported an error or a cell ended `timeout`/`failed`, `2` on flag or
//! connection errors.

use std::path::PathBuf;
use std::process::ExitCode;

use campaign::{profile_by_name, PlanSpec};

struct Args {
    socket: Option<PathBuf>,
    spec: PlanSpec,
    priority: u64,
    no_stream: bool,
    ping: bool,
    quiet: bool,
}

fn parse_list<T, F: Fn(&str) -> Option<T>>(raw: &str, parse: F) -> Option<Vec<T>> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect::<Option<Vec<T>>>()
        .filter(|v| !v.is_empty())
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        spec: PlanSpec::default(),
        priority: 0,
        no_stream: false,
        ping: false,
        quiet: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value(&mut i)?)),
            "--netlists" => {
                args.spec.netlists = parse_list(&value(&mut i)?, |s| {
                    profile_by_name(s).map(|_| s.to_string())
                })
                .ok_or("unknown netlist name (see `campaign::profile_by_name`)")?;
            }
            "--scale" => args.spec.scale = value(&mut i)?.parse().map_err(|_| "bad --scale")?,
            "--thetas" => {
                args.spec.thetas = parse_list(&value(&mut i)?, |s| s.parse().ok())
                    .ok_or("bad --thetas (comma-separated floats)")?;
            }
            "--seeds" => {
                args.spec.seeds = parse_list(&value(&mut i)?, |s| s.parse().ok())
                    .ok_or("bad --seeds (comma-separated integers)")?;
            }
            "--episodes" => {
                args.spec.episodes = value(&mut i)?.parse().map_err(|_| "bad --episodes")?;
            }
            "--cell-threads" => {
                args.spec.cell_threads =
                    value(&mut i)?.parse().map_err(|_| "bad --cell-threads")?;
            }
            "--priority" => args.priority = value(&mut i)?.parse().map_err(|_| "bad --priority")?,
            "--no-stream" => args.no_stream = true,
            "--ping" => args.ping = true,
            "--quiet" => args.quiet = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

/// `true` when every data row's outcome column reads `ok` or `retried:N`
/// — the same success criterion as the one-shot CLI's exit code.
fn all_recovered(tsv: &str) -> bool {
    tsv.lines().skip(1).all(|line| {
        let outcome = line.rsplit('\t').next().unwrap_or("");
        outcome == "ok" || outcome.starts_with("retried")
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("deterrent-submit: {message}");
            return ExitCode::from(2);
        }
    };
    let Some(socket) = serve::resolve_socket(args.socket) else {
        eprintln!("deterrent-submit: no socket given (use --socket or DETERRENT_SOCKET)");
        return ExitCode::from(2);
    };

    if args.ping {
        return match serve::ping(&socket) {
            Ok(()) => {
                if !args.quiet {
                    eprintln!("[submit] daemon at {} is alive", socket.display());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("deterrent-submit: ping failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    if !args.quiet {
        eprintln!(
            "[submit] submitting {} cell(s) to {}",
            args.spec.cells(),
            socket.display()
        );
    }
    let stream = !args.no_stream && !args.quiet;
    let quiet = args.quiet;
    let outcome = serve::submit(&socket, &args.spec, args.priority, stream, |line| {
        if !quiet {
            eprintln!("{line}");
        }
    });
    match outcome {
        Ok(outcome) => {
            if !args.quiet {
                eprintln!("[submit] job {} done: {}", outcome.job, outcome.outcomes);
            }
            print!("{}", outcome.tsv);
            if all_recovered(&outcome.tsv) {
                ExitCode::SUCCESS
            } else {
                eprintln!("deterrent-submit: unrecovered cell failures (see the outcome column)");
                ExitCode::FAILURE
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::Other => {
            eprintln!("deterrent-submit: daemon error: {e}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("deterrent-submit: {e}");
            ExitCode::from(2)
        }
    }
}
