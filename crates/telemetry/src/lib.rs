//! Unified telemetry for the DETERRENT reproduction: hierarchical spans,
//! a typed metric registry, and machine-readable run traces.
//!
//! The repo's determinism contract — bit-identical results at any thread
//! count — forces observability to be **strictly out-of-band**: nothing
//! here may touch report stdout or alter computation. This crate therefore
//! separates every recorded fact into either a deterministic attribute
//! (`attrs`, identical at any thread count) or a nondeterministic one
//! (`vary`: wall times, span ids, shared-counter deltas), and CI compares
//! the canonical projection of a trace at threads 1 vs 4 byte-for-byte
//! (see [`canonicalize_trace`] and the `trace-check` binary).
//!
//! # Handles
//!
//! [`Telemetry`] is a cheap clonable handle; [`Telemetry::disabled`] makes
//! every operation a no-op so instrumented code never branches on an
//! `Option`. An enabled handle fans each closed [`Span`] out to its
//! [`TraceSink`]s ([`JsonlSink`] for `--trace-out`, adapters for stderr
//! rendering) and shares one [`MetricRegistry`] whose [`Counter`] /
//! [`Gauge`] / [`Histogram`] handles are lock-free atomics.
//!
//! ```
//! use telemetry::{MemorySink, Telemetry};
//!
//! let sink = MemorySink::new();
//! let telemetry = Telemetry::new(vec![Box::new(sink.clone())]);
//! let mut span = telemetry.span("campaign");
//! span.attr_u64("cells", 8);
//! let mut child = span.child("cell.0");
//! child.attr_str("outcome", "ok");
//! telemetry.counter("campaign.cells").inc(1);
//! child.close();
//! span.close();
//! telemetry.flush_metrics();
//!
//! let events = sink.events();
//! assert_eq!(events.len(), 3); // cell.0, campaign, metrics flush
//! assert_eq!(events[0].path, "campaign/cell.0");
//! assert_eq!(events[2].attr_u64("campaign.cells"), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
mod sink;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub use event::{
    canonicalize_trace, parse_trace, EventKind, TraceEvent, NONDET_VARY_KEY, TRACE_SCHEMA_VERSION,
};
pub use json::{obj, Value};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricRegistry, LATENCY_BUCKET_BOUNDS_NS,
};
pub use sink::{JsonlSink, MemorySink, TraceSink};

/// Environment variable naming a JSONL trace output file; binaries honor
/// it as the default for their `--trace-out` flag.
pub const TRACE_OUT_ENV_VAR: &str = "DETERRENT_TRACE_OUT";

struct Shared {
    sinks: Vec<Box<dyn TraceSink>>,
    next_id: AtomicU64,
    epoch: Instant,
    metrics: MetricRegistry,
}

/// A clonable telemetry handle: span factory, metric registry, and sink
/// fan-out. See the crate docs for the usage model.
#[derive(Clone, Default)]
pub struct Telemetry {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A handle on which every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle fanning events out to `sinks` (which may be
    /// empty — metrics still accumulate).
    #[must_use]
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                sinks,
                next_id: AtomicU64::new(1),
                epoch: Instant::now(),
                metrics: MetricRegistry::new(),
            })),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The metric registry, if enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<&MetricRegistry> {
        self.shared.as_ref().map(|s| &s.metrics)
    }

    /// The counter named `name` (a no-op handle when disabled).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.metrics()
            .map_or_else(Counter::noop, |m| m.counter(name))
    }

    /// The gauge named `name` (a no-op handle when disabled).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.metrics().map_or_else(Gauge::noop, |m| m.gauge(name))
    }

    /// The histogram named `name` (a no-op handle when disabled).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.metrics()
            .map_or_else(Histogram::noop, |m| m.histogram(name))
    }

    /// Opens a root span named `name`.
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        self.open_span(name, 0, name.to_string())
    }

    /// Opens a span named `name` under the span identified by `parent`.
    #[must_use]
    pub fn child_span(&self, parent: &SpanContext, name: &str) -> Span {
        if parent.path.is_empty() {
            return self.span(name);
        }
        self.open_span(name, parent.id, format!("{}/{name}", parent.path))
    }

    fn open_span(&self, name: &str, parent: u64, path: String) -> Span {
        let Some(shared) = &self.shared else {
            return Span { state: None };
        };
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        Span {
            state: Some(SpanState {
                telemetry: self.clone(),
                id,
                parent,
                name: name.to_string(),
                path,
                start: Instant::now(),
                start_ns: shared.epoch.elapsed().as_nanos() as u64,
                attrs: BTreeMap::new(),
                vary: BTreeMap::new(),
            }),
        }
    }

    /// Emits a `metrics` event carrying a snapshot of the registry
    /// (counters and gauges in `attrs`, histograms in `vary`), then
    /// flushes the sinks. A no-op when disabled.
    pub fn flush_metrics(&self) {
        let Some(shared) = &self.shared else { return };
        let mut attrs = BTreeMap::new();
        for (name, value) in shared.metrics.counter_snapshot() {
            attrs.insert(name, Value::u64(value));
        }
        for (name, value) in shared.metrics.gauge_snapshot() {
            attrs.insert(name, Value::i64(value));
        }
        let mut vary = BTreeMap::new();
        for (name, snap) in shared.metrics.histogram_snapshot() {
            vary.insert(
                name,
                json::obj([
                    ("count", Value::u64(snap.count)),
                    ("sum_ns", Value::u64(snap.sum_nanos)),
                    (
                        "buckets",
                        Value::Arr(snap.buckets.iter().copied().map(Value::u64).collect()),
                    ),
                ]),
            );
        }
        let event = TraceEvent {
            kind: EventKind::Metrics,
            name: "registry".to_string(),
            path: "metrics".to_string(),
            id: shared.next_id.fetch_add(1, Ordering::Relaxed),
            parent: 0,
            start_ns: shared.epoch.elapsed().as_nanos() as u64,
            dur_ns: 0,
            attrs,
            vary,
        };
        self.emit(&event);
        self.flush();
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        if let Some(shared) = &self.shared {
            for sink in &shared.sinks {
                sink.flush();
            }
        }
    }

    fn emit(&self, event: &TraceEvent) {
        if let Some(shared) = &self.shared {
            for sink in &shared.sinks {
                sink.event(event);
            }
        }
    }
}

/// The identity of an open span, used to parent children created in other
/// components. For a disabled handle the context is empty and children
/// created from it are no-ops too.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanContext {
    /// Span id (0 when disabled).
    pub id: u64,
    /// Slash-joined path from the root (empty when disabled).
    pub path: String,
}

struct SpanState {
    telemetry: Telemetry,
    id: u64,
    parent: u64,
    name: String,
    path: String,
    start: Instant,
    start_ns: u64,
    attrs: BTreeMap<String, Value>,
    vary: BTreeMap<String, Value>,
}

/// An open span. Closing (or dropping) it emits one [`TraceEvent`] to
/// every sink; spans from a disabled [`Telemetry`] do nothing.
///
/// Keep deterministic facts in `attr_*` and anything that can differ
/// between equally-seeded runs (timings, shared-counter deltas, error
/// text) in `vary_*` — the thread-invariance CI gate compares only the
/// former.
pub struct Span {
    state: Option<SpanState>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut dbg = f.debug_struct("Span");
        if let Some(state) = &self.state {
            dbg.field("path", &state.path).field("id", &state.id);
        }
        dbg.finish_non_exhaustive()
    }
}

impl Span {
    /// This span's identity, for parenting children elsewhere.
    #[must_use]
    pub fn context(&self) -> SpanContext {
        self.state
            .as_ref()
            .map_or_else(SpanContext::default, |s| SpanContext {
                id: s.id,
                path: s.path.clone(),
            })
    }

    /// Opens a child span.
    #[must_use]
    pub fn child(&self, name: &str) -> Span {
        match &self.state {
            Some(state) => state.telemetry.child_span(&self.context(), name),
            None => Span { state: None },
        }
    }

    /// Sets a deterministic attribute.
    pub fn attr(&mut self, key: &str, value: Value) {
        if let Some(state) = &mut self.state {
            state.attrs.insert(key.to_string(), value);
        }
    }

    /// Sets a deterministic `u64` attribute.
    pub fn attr_u64(&mut self, key: &str, value: u64) {
        self.attr(key, Value::u64(value));
    }

    /// Sets a deterministic `f64` attribute.
    pub fn attr_f64(&mut self, key: &str, value: f64) {
        self.attr(key, Value::f64(value));
    }

    /// Sets a deterministic string attribute.
    pub fn attr_str(&mut self, key: &str, value: &str) {
        self.attr(key, Value::str(value));
    }

    /// Sets a deterministic bool attribute.
    pub fn attr_bool(&mut self, key: &str, value: bool) {
        self.attr(key, Value::Bool(value));
    }

    /// Sets a nondeterministic attribute.
    pub fn vary(&mut self, key: &str, value: Value) {
        if let Some(state) = &mut self.state {
            state.vary.insert(key.to_string(), value);
        }
    }

    /// Sets a nondeterministic `u64` attribute.
    pub fn vary_u64(&mut self, key: &str, value: u64) {
        self.vary(key, Value::u64(value));
    }

    /// Sets a nondeterministic string attribute.
    pub fn vary_str(&mut self, key: &str, value: &str) {
        self.vary(key, Value::str(value));
    }

    /// Closes the span, emitting its event with the measured duration.
    pub fn close(mut self) {
        self.finish(EventKind::Span);
    }

    /// Emits the span as an instantaneous mark (`dur_ns` = 0) instead of
    /// an interval — for point events like a cell starting.
    pub fn mark(mut self) {
        self.finish(EventKind::Mark);
    }

    fn finish(&mut self, kind: EventKind) {
        let Some(state) = self.state.take() else {
            return;
        };
        let dur_ns = match kind {
            EventKind::Span => state.start.elapsed().as_nanos() as u64,
            _ => 0,
        };
        let event = TraceEvent {
            kind,
            name: state.name,
            path: state.path,
            id: state.id,
            parent: state.parent,
            start_ns: state.start_ns,
            dur_ns,
            attrs: state.attrs,
            vary: state.vary,
        };
        state.telemetry.emit(&event);
    }
}

impl Drop for Span {
    /// A span dropped without an explicit [`Span::close`] (early return,
    /// unwinding) still emits its event.
    fn drop(&mut self) {
        self.finish(EventKind::Span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        let mut span = telemetry.span("root");
        span.attr_u64("x", 1);
        let child = telemetry.child_span(&span.context(), "child");
        assert_eq!(child.context(), SpanContext::default());
        child.close();
        span.close();
        telemetry.counter("c").inc(5);
        assert_eq!(telemetry.counter("c").get(), 0);
        telemetry.flush_metrics();
    }

    #[test]
    fn spans_nest_and_emit_on_close_or_drop() {
        let sink = MemorySink::new();
        let telemetry = Telemetry::new(vec![Box::new(sink.clone())]);
        let root = telemetry.span("campaign");
        let ctx = root.context();
        {
            let mut child = telemetry.child_span(&ctx, "cell.1");
            child.attr_str("outcome", "ok");
            // Dropped, not closed: must still emit.
        }
        root.close();
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "cell.1");
        assert_eq!(events[0].path, "campaign/cell.1");
        assert_eq!(events[0].parent, ctx.id);
        assert_eq!(events[0].attr_str("outcome"), Some("ok"));
        assert_eq!(events[1].name, "campaign");
        assert_eq!(events[1].parent, 0);
    }

    #[test]
    fn marks_have_zero_duration() {
        let sink = MemorySink::new();
        let telemetry = Telemetry::new(vec![Box::new(sink.clone())]);
        telemetry.span("cell_start").mark();
        let events = sink.events();
        assert_eq!(events[0].kind, EventKind::Mark);
        assert_eq!(events[0].dur_ns, 0);
    }

    #[test]
    fn metrics_flush_snapshots_registry() {
        let sink = MemorySink::new();
        let telemetry = Telemetry::new(vec![Box::new(sink.clone())]);
        telemetry.counter("exec.calls").inc(3);
        telemetry.gauge("pool.threads").set(-2);
        telemetry.histogram("stage.wall_nanos").observe_nanos(500);
        telemetry.flush_metrics();
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Metrics);
        assert_eq!(events[0].attr_u64("exec.calls"), Some(3));
        assert_eq!(events[0].attrs.get("pool.threads"), Some(&Value::i64(-2)));
        let histo = events[0].vary.get("stage.wall_nanos").unwrap();
        assert_eq!(histo.as_obj().unwrap().get("count"), Some(&Value::u64(1)));
    }

    #[test]
    fn lines_validate_against_the_schema() {
        let sink = MemorySink::new();
        let telemetry = Telemetry::new(vec![Box::new(sink.clone())]);
        let mut span = telemetry.span("analyze");
        span.attr_bool("cache_hit", true);
        span.vary_u64("wall_ns", 12);
        span.close();
        telemetry.flush_metrics();
        for event in sink.events() {
            let parsed = TraceEvent::parse_line(&event.to_line()).unwrap();
            assert_eq!(parsed, event);
        }
    }
}
