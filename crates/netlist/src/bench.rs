//! Reader and writer for the ISCAS `.bench` netlist format.
//!
//! The `.bench` dialect accepted here is the one used by the ISCAS-85/89
//! benchmark suites and by the DETERRENT / TARMAC / TGRL artifacts:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G17)
//! G10 = NAND(G1, G3)
//! G17 = NOT(G10)
//! G20 = DFF(G17)
//! ```
//!
//! Signals may be referenced before they are defined; the parser performs a
//! second pass to resolve names. Unknown keywords and malformed lines produce
//! [`NetlistError::ParseBench`] with the offending line number.

use std::collections::HashMap;

use crate::{Gate, GateKind, NetId, Netlist, NetlistError};

/// Parses `.bench` source text into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::ParseBench`] on malformed lines, plus any
/// structural error raised during final netlist validation (duplicate names,
/// cycles, missing outputs, …).
///
/// # Example
///
/// ```
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = AND(a, b)
/// ";
/// let nl = netlist::bench::parse("and2", src)?;
/// assert_eq!(nl.num_inputs(), 2);
/// # Ok::<(), netlist::NetlistError>(())
/// ```
pub fn parse(name: impl Into<String>, src: &str) -> Result<Netlist, NetlistError> {
    enum Proto {
        Input(String),
        Gate {
            out: String,
            kind: GateKind,
            fanin_names: Vec<String>,
        },
    }

    let mut protos: Vec<Proto> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let err = |message: String| NetlistError::ParseBench {
            line: lineno,
            message,
        };

        let upper = line.to_ascii_uppercase();
        if upper.starts_with("INPUT") {
            let inner = extract_parens(line).ok_or_else(|| err("malformed INPUT".into()))?;
            protos.push(Proto::Input(inner.trim().to_string()));
        } else if upper.starts_with("OUTPUT") {
            let inner = extract_parens(line).ok_or_else(|| err("malformed OUTPUT".into()))?;
            output_names.push(inner.trim().to_string());
        } else if let Some(eq) = line.find('=') {
            let out = line[..eq].trim().to_string();
            let rhs = line[eq + 1..].trim();
            let paren = rhs
                .find('(')
                .ok_or_else(|| err(format!("missing '(' in `{rhs}`")))?;
            let kw = rhs[..paren].trim();
            let kind = GateKind::from_bench_keyword(kw)
                .ok_or_else(|| err(format!("unknown gate keyword `{kw}`")))?;
            let inner = extract_parens(rhs).ok_or_else(|| err("unbalanced parentheses".into()))?;
            let fanin_names: Vec<String> = if inner.trim().is_empty() {
                Vec::new()
            } else {
                inner.split(',').map(|s| s.trim().to_string()).collect()
            };
            if out.is_empty() {
                return Err(err("empty left-hand side".into()));
            }
            protos.push(Proto::Gate {
                out,
                kind,
                fanin_names,
            });
        } else {
            return Err(err(format!("unrecognised line `{line}`")));
        }
    }

    // First pass: assign ids.
    let mut ids: HashMap<String, NetId> = HashMap::new();
    for (i, proto) in protos.iter().enumerate() {
        let name = match proto {
            Proto::Input(n) => n,
            Proto::Gate { out, .. } => out,
        };
        if ids.insert(name.clone(), NetId(i as u32)).is_some() {
            return Err(NetlistError::DuplicateName(name.clone()));
        }
    }

    // Second pass: materialize gates with resolved fanins.
    let mut gates = Vec::with_capacity(protos.len());
    for proto in &protos {
        match proto {
            Proto::Input(n) => gates.push(Gate {
                kind: GateKind::Input,
                fanin: vec![],
                name: n.clone(),
            }),
            Proto::Gate {
                out,
                kind,
                fanin_names,
            } => {
                let mut fanin = Vec::with_capacity(fanin_names.len());
                for f in fanin_names {
                    let id = ids
                        .get(f)
                        .copied()
                        .ok_or_else(|| NetlistError::UnknownName(f.clone()))?;
                    fanin.push(id);
                }
                gates.push(Gate {
                    kind: *kind,
                    fanin,
                    name: out.clone(),
                });
            }
        }
    }

    let mut outputs = Vec::with_capacity(output_names.len());
    for o in &output_names {
        outputs.push(
            ids.get(o)
                .copied()
                .ok_or_else(|| NetlistError::UnknownName(o.clone()))?,
        );
    }

    Netlist::from_parts(name, gates, outputs)
}

/// Serializes a [`Netlist`] back to `.bench` text.
///
/// The output parses back (see [`parse`]) to a structurally identical design:
/// same signal names, gate kinds, fanin order, and output list.
#[must_use]
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", nl.name()));
    for &pi in nl.primary_inputs() {
        out.push_str(&format!("INPUT({})\n", nl.net_name(pi)));
    }
    for &po in nl.primary_outputs() {
        out.push_str(&format!("OUTPUT({})\n", nl.net_name(po)));
    }
    for (id, gate) in nl.iter() {
        if gate.kind == GateKind::Input {
            continue;
        }
        let kw = gate.kind.bench_keyword().unwrap_or("BUF");
        let fanins: Vec<&str> = gate.fanin.iter().map(|&f| nl.net_name(f)).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            nl.net_name(id),
            kw,
            fanins.join(", ")
        ));
    }
    out
}

fn extract_parens(s: &str) -> Option<&str> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close <= open {
        return None;
    }
    Some(&s[open + 1..close])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    const C17: &str = "
# c17 from ISCAS-85
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn parses_c17() {
        let nl = parse("c17", C17).unwrap();
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 2);
        assert_eq!(nl.num_logic_gates(), 6);
        assert_eq!(nl.depth(), 3);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let nl = parse("c17", C17).unwrap();
        let text = write(&nl);
        let nl2 = parse("c17", &text).unwrap();
        assert_eq!(nl.num_gates(), nl2.num_gates());
        assert_eq!(nl.num_outputs(), nl2.num_outputs());
        for (id, gate) in nl.iter() {
            let id2 = nl2.net_by_name(&gate.name).expect("name preserved");
            let gate2 = nl2.gate(id2);
            assert_eq!(gate.kind, gate2.kind, "kind of {}", gate.name);
            let f1: Vec<&str> = gate.fanin.iter().map(|&f| nl.net_name(f)).collect();
            let f2: Vec<&str> = gate2.fanin.iter().map(|&f| nl2.net_name(f)).collect();
            assert_eq!(f1, f2, "fanin of {}", gate.name);
            let _ = id;
        }
    }

    #[test]
    fn forward_references_resolve() {
        let src = "
INPUT(a)
OUTPUT(y)
y = NOT(x)
x = BUF(a)
";
        let nl = parse("fwd", src).unwrap();
        assert_eq!(nl.num_logic_gates(), 2);
    }

    #[test]
    fn dff_parses_as_pseudo_input() {
        let src = "
INPUT(a)
OUTPUT(y)
q = DFF(y)
y = AND(a, q)
";
        let nl = parse("seq", src).unwrap();
        assert_eq!(nl.flip_flops().len(), 1);
        assert_eq!(nl.num_scan_inputs(), 2);
    }

    #[test]
    fn unknown_keyword_is_parse_error() {
        let err = parse("x", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::ParseBench { line: 3, .. }));
    }

    #[test]
    fn undefined_signal_is_error() {
        let err = parse("x", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap_err();
        assert!(matches!(err, NetlistError::UnknownName(_)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n# hello\n\nINPUT(a)  # trailing comment\nOUTPUT(y)\ny = NOT(a)\n";
        let nl = parse("c", src).unwrap();
        assert_eq!(nl.num_logic_gates(), 1);
    }

    #[test]
    fn write_then_parse_samples() {
        for nl in [samples::c17(), samples::majority5(), samples::adder4()] {
            let text = write(&nl);
            let back = parse(nl.name(), &text).unwrap();
            assert_eq!(back.num_gates(), nl.num_gates());
        }
    }
}
