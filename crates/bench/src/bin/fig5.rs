//! Figure 5: impact of trigger width (2–12) on the trigger coverage of TGRL
//! and DETERRENT for c6288.

use baselines::{TestGenerator, Tgrl};
use deterrent_bench::{BenchInstance, HarnessOptions};
use netlist::synth::BenchmarkProfile;
use trojan::{CoverageEvaluator, TrojanGenerator};

fn main() {
    let options = HarnessOptions::from_args();
    let instance = BenchInstance::prepare(&BenchmarkProfile::c6288(), &options, 0.1);
    println!(
        "Figure 5 — trigger width vs coverage on {} ({} rare nets)\n",
        instance.name,
        instance.analysis.len()
    );

    // Generate both pattern sets once; only the Trojan population changes
    // with the width (the same protocol the paper follows).
    let deterrent = instance.run_deterrent(options.deterrent_config());
    let tgrl_episodes = if options.scale <= 1 { 400 } else { 40 };
    let tgrl_patterns =
        Tgrl::new(tgrl_episodes, options.seed).generate(&instance.netlist, &instance.analysis);

    println!(
        "{:>14} {:>12} {:>18} {:>14}",
        "trigger width", "#Trojans", "DETERRENT cov (%)", "TGRL cov (%)"
    );
    let widths = [2usize, 4, 6, 8, 10, 12];
    for width in widths {
        let mut generator = TrojanGenerator::new(&instance.netlist, options.seed ^ width as u64);
        let trojans = generator.sample_many(&instance.analysis, width, options.num_trojans);
        if trojans.is_empty() {
            println!(
                "{width:>14} {:>12} (no satisfiable triggers of this width)",
                0
            );
            continue;
        }
        let evaluator = CoverageEvaluator::new(&instance.netlist, trojans.clone());
        let det_cov = evaluator.evaluate(&deterrent.patterns).coverage_percent();
        let tgrl_cov = evaluator.evaluate(&tgrl_patterns).coverage_percent();
        println!(
            "{width:>14} {:>12} {det_cov:>18.1} {tgrl_cov:>14.1}",
            trojans.len()
        );
    }
    println!(
        "\nShape to verify: DETERRENT's coverage stays roughly flat as the trigger \
         widens, while TGRL's drops sharply (paper Figure 5)."
    );
    instance.finish(&options);
}
