//! The end-to-end DETERRENT pipeline (Figure 4 of the paper).

use exec::{Exec, ExecStats};
use netlist::Netlist;
use rl::{train_parallel, CollectOptions, ParallelTrainOptions, PpoLosses, PpoTrainer};
use sat::CircuitOracle;
use sim::rare::{RareNet, RareNetAnalysis};
use sim::TestPattern;

use crate::{
    generate_patterns_with, select_k_largest, CompatBuildOptions, CompatSetEnv, CompatibilityGraph,
    DeterrentConfig, RareNetSet,
};

/// Metrics of the RL training phase, matching the quantities reported in
/// Table 1 and Figures 2–3 of the paper.
#[derive(Debug, Clone, Default)]
pub struct TrainingMetrics {
    /// Episodes completed per minute of wall-clock time.
    pub episodes_per_minute: f64,
    /// Environment steps per minute of wall-clock time.
    pub steps_per_minute: f64,
    /// Size of the largest compatible set found during training/evaluation.
    pub max_compatible_set: usize,
    /// Mean reward over the last 10% of episodes.
    pub final_mean_reward: f64,
    /// `(total_env_steps, losses)` per PPO update — the loss curve of Fig. 3.
    pub loss_history: Vec<(u64, PpoLosses)>,
    /// Wall-clock seconds spent in RL training.
    pub training_seconds: f64,
    /// SAT queries spent building the pairwise-compatibility graph.
    pub compat_sat_queries: u64,
    /// Unordered rare-net pairs the compatibility graph resolved.
    pub compat_pairs_total: u64,
    /// Pairs resolved by a retained simulation witness (tier 1, no SAT).
    pub compat_pairs_witnessed: u64,
    /// Pairs resolved by disjoint cone supports (tier 2, no SAT).
    pub compat_pairs_pruned: u64,
    /// Pairs resolved by bounded exhaustive cone enumeration (tier 2, no
    /// SAT). Witnessed + pruned + enumerated + SAT partition the total.
    pub compat_pairs_enumerated: u64,
    /// Pairs that needed a SAT query (tier 3).
    pub compat_pairs_sat: u64,
    /// Exact SAT checks performed inside the environment (non-zero only for
    /// the naive all-SAT formulation).
    pub env_sat_checks: u64,
    /// Worker threads of the deterministic parallel runtime.
    pub threads_used: usize,
    /// Wall-clock seconds spent building the compatibility graph.
    pub compat_build_seconds: f64,
    /// Selected sets turned into patterns by reusing a concrete simulation
    /// witness instead of a SAT justification.
    pub patterns_witness_reused: u64,
    /// SAT justification queries spent generating patterns (including greedy
    /// repair retries).
    pub pattern_sat_queries: u64,
    /// Task/timing counters of the RL phase's parallel runtime (training
    /// rollout rounds + greedy evaluation rollouts);
    /// [`ExecStats::speedup`] is its realized parallel speedup. The other
    /// stages keep their own timing surfaces: per-tier nanoseconds in
    /// [`crate::CompatStats`] and [`TrainingMetrics::compat_build_seconds`]
    /// for the graph, and the `funnel` binary for estimation.
    pub exec_stats: ExecStats,
}

/// Output of a full DETERRENT run.
#[derive(Debug, Clone)]
pub struct DeterrentResult {
    /// The generated test patterns (at most `k`, often fewer after
    /// deduplication).
    pub patterns: Vec<TestPattern>,
    /// The selected compatible rare-net sets, largest first.
    pub sets: Vec<RareNetSet>,
    /// The rare nets the agent operated over.
    pub rare_nets: Vec<RareNet>,
    /// Rareness threshold used.
    pub rareness_threshold: f64,
    /// Training-phase metrics.
    pub metrics: TrainingMetrics,
}

impl DeterrentResult {
    /// Number of generated test patterns (the "Test Length" column of
    /// Table 2).
    #[must_use]
    pub fn test_length(&self) -> usize {
        self.patterns.len()
    }
}

/// The DETERRENT pipeline bound to one netlist.
#[derive(Debug, Clone)]
pub struct Deterrent<'a> {
    netlist: &'a Netlist,
    config: DeterrentConfig,
}

impl<'a> Deterrent<'a> {
    /// Creates the pipeline for `netlist` with the given configuration.
    #[must_use]
    pub fn new(netlist: &'a Netlist, config: DeterrentConfig) -> Self {
        Self { netlist, config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DeterrentConfig {
        &self.config
    }

    /// Runs the full pipeline: rare-net analysis, offline compatibility,
    /// RL training, set selection, and SAT pattern generation. Every stage
    /// runs on the deterministic parallel runtime sized by
    /// [`DeterrentConfig::threads`]; the result is bit-identical at any
    /// thread count.
    #[must_use]
    pub fn run(&self) -> DeterrentResult {
        let exec = Exec::new(self.config.threads);
        let analysis = RareNetAnalysis::estimate_with(
            self.netlist,
            self.config.rareness_threshold,
            self.config.probability_patterns,
            self.config.seed,
            &exec,
        );
        self.run_with_analysis(&analysis)
    }

    /// Runs the pipeline on a precomputed rare-net analysis. This is how the
    /// paper's threshold-transfer experiment (train at θ = 0.14, evaluate at
    /// θ = 0.10) is expressed: analyse once per threshold and reuse.
    #[must_use]
    pub fn run_with_analysis(&self, analysis: &RareNetAnalysis) -> DeterrentResult {
        let exec = Exec::new(self.config.threads);
        let compat_start = std::time::Instant::now();
        let graph = CompatibilityGraph::build_with(
            self.netlist,
            analysis,
            &CompatBuildOptions {
                threads: self.config.threads,
                strategy: self.config.compat_strategy,
            },
        );
        let compat_build_seconds = compat_start.elapsed().as_secs_f64();
        if graph.is_empty() {
            return DeterrentResult {
                patterns: Vec::new(),
                sets: Vec::new(),
                rare_nets: Vec::new(),
                rareness_threshold: analysis.threshold(),
                metrics: TrainingMetrics::default(),
            };
        }

        // Training rollouts are collected in parallel rounds against frozen
        // policy snapshots; each episode's environment clone drains its own
        // harvest and SAT-check counter through the finish hook.
        let proto_env = CompatSetEnv::new(self.netlist, &graph, &self.config);
        let mut trainer =
            PpoTrainer::new(graph.len(), graph.len(), &self.config.ppo, self.config.seed);
        let options = ParallelTrainOptions {
            episodes: self.config.episodes,
            max_steps: self.config.steps_per_episode,
            round_episodes: self.config.rollout_round,
            seed: self.config.seed,
        };
        let finish = |env: &mut CompatSetEnv<'_>| (env.take_harvest(), env.exact_sat_checks());
        let start = std::time::Instant::now();
        let outcome = train_parallel(&proto_env, &mut trainer, &options, &exec, finish);
        let training_seconds = start.elapsed().as_secs_f64();
        let report = outcome.report;

        // Greedy evaluation rollouts from the trained policy harvest extra
        // maximal sets; their episode streams continue after the training
        // streams so the two never overlap.
        let eval = rl::collect_episodes(
            &proto_env,
            &trainer,
            &CollectOptions {
                count: self.config.eval_rollouts,
                max_steps: self.config.steps_per_episode,
                seed: self.config.seed,
                first_episode: self.config.episodes as u64,
                greedy: true,
            },
            &exec,
            finish,
        );

        let mut harvested: Vec<Vec<usize>> = Vec::new();
        let mut env_sat_checks = 0u64;
        for (sets, checks) in outcome
            .harvests
            .into_iter()
            .chain(eval.into_iter().map(|e| e.harvest))
        {
            harvested.extend(sets);
            env_sat_checks += checks;
        }

        let max_compatible_set = harvested.iter().map(Vec::len).max().unwrap_or(0);
        let sets = select_k_largest(&harvested, self.config.k_patterns);
        let mut oracle = CircuitOracle::new(self.netlist);
        let (patterns, gen_stats) = generate_patterns_with(&mut oracle, &graph, &sets);

        let metrics = TrainingMetrics {
            episodes_per_minute: report.episodes_per_minute(),
            steps_per_minute: report.steps_per_minute(),
            max_compatible_set,
            final_mean_reward: report.mean_reward_last(self.config.episodes.div_ceil(10).max(1)),
            loss_history: trainer.loss_history().to_vec(),
            training_seconds,
            compat_sat_queries: graph.sat_queries(),
            compat_pairs_total: graph.stats().pairs_total,
            compat_pairs_witnessed: graph.stats().pairs_sim_witnessed,
            compat_pairs_pruned: graph.stats().pairs_structurally_pruned,
            compat_pairs_enumerated: graph.stats().pairs_cone_enumerated,
            compat_pairs_sat: graph.stats().pairs_sat_resolved,
            env_sat_checks,
            threads_used: exec.threads(),
            compat_build_seconds,
            patterns_witness_reused: gen_stats.witness_reused,
            pattern_sat_queries: gen_stats.sat_queries,
            exec_stats: exec.stats(),
        };

        DeterrentResult {
            patterns,
            sets,
            rare_nets: graph.rare_nets().to_vec(),
            rareness_threshold: analysis.threshold(),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RewardMode;
    use netlist::synth::BenchmarkProfile;
    use sim::Simulator;
    use trojan::{CoverageEvaluator, TrojanGenerator};

    fn small_netlist() -> Netlist {
        BenchmarkProfile::c2670().scaled(20).generate(3)
    }

    #[test]
    fn full_pipeline_produces_patterns_that_hit_rare_nets() {
        let nl = small_netlist();
        let mut config = DeterrentConfig::fast_preset();
        config.rareness_threshold = 0.2;
        let result = Deterrent::new(&nl, config).run();
        assert!(!result.rare_nets.is_empty());
        assert!(!result.patterns.is_empty());
        assert!(result.test_length() <= 16);
        assert!(result.metrics.max_compatible_set >= 1);
        assert!(result.metrics.episodes_per_minute > 0.0);

        // Every pattern activates at least one rare net at its rare value.
        let sim = Simulator::new(&nl);
        for p in &result.patterns {
            let values = sim.run(p);
            assert!(result
                .rare_nets
                .iter()
                .any(|r| values.value(r.net) == r.rare_value));
        }
    }

    #[test]
    fn pipeline_detects_planted_trojans_better_than_nothing() {
        let nl = small_netlist();
        let mut config = DeterrentConfig::fast_preset();
        config.rareness_threshold = 0.2;
        config.seed = 5;
        let result = Deterrent::new(&nl, config).run();

        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 4096, 9);
        let mut gen = TrojanGenerator::new(&nl, 77);
        let trojans = gen.sample_many(&analysis, 2, 20);
        if trojans.is_empty() {
            return; // seed produced no valid 2-wide triggers; other tests cover this
        }
        let evaluator = CoverageEvaluator::new(&nl, trojans);
        let report = evaluator.evaluate(&result.patterns);
        assert!(
            report.detected > 0,
            "DETERRENT patterns should trigger at least one planted Trojan"
        );
    }

    #[test]
    fn end_of_episode_mode_runs_and_reports_metrics() {
        let nl = small_netlist();
        let mut config = DeterrentConfig::fast_preset();
        config.rareness_threshold = 0.2;
        config.reward_mode = RewardMode::EndOfEpisode;
        config.episodes = 20;
        let result = Deterrent::new(&nl, config).run();
        assert!(result.metrics.steps_per_minute > 0.0);
    }

    #[test]
    fn empty_rare_net_set_yields_empty_result() {
        let nl = netlist::samples::c17();
        let mut config = DeterrentConfig::fast_preset();
        config.rareness_threshold = 0.01; // nothing in c17 is that rare
        let result = Deterrent::new(&nl, config).run();
        assert!(result.patterns.is_empty());
        assert!(result.sets.is_empty());
    }

    #[test]
    fn threshold_transfer_reuses_external_analysis() {
        let nl = small_netlist();
        let loose = RareNetAnalysis::estimate(&nl, 0.25, 4096, 2);
        let mut config = DeterrentConfig::fast_preset();
        config.episodes = 20;
        let result = Deterrent::new(&nl, config).run_with_analysis(&loose);
        assert!((result.rareness_threshold - 0.25).abs() < 1e-12);
    }
}
