//! Deterministic fault injection for exercising recovery paths.
//!
//! Fault tolerance that is never exercised is fault tolerance that does not
//! work. A [`FaultPlan`] is a *seeded schedule* of injected faults threaded
//! into the disk tier (see [`crate::ArtifactStore::with_disk_policy_faults`])
//! and into the campaign driver's per-cell failure domains, so the same
//! recovery machinery that handles real corruption, I/O errors, panics, and
//! timeouts runs as first-class tested code — no hand-built corrupt files.
//!
//! Two properties make injected faults compatible with the workspace's core
//! invariant (bit-identical results at any thread count):
//!
//! 1. **Pure site decisions.** Whether a fault fires at a *site* (a stable
//!    64-bit identity: cache `(stage, key)`, or a campaign cell fingerprint)
//!    is a pure function of `(plan seed, fault kind, site)` via
//!    [`exec::split_seed`] — never of wall-clock time, thread id, or
//!    operation order.
//! 2. **Fire-once per site.** Each `(kind, site)` fires at most once per
//!    plan, so the retry/heal path that follows always succeeds and the
//!    recovered output is identical to a fault-free run.
//!
//! The schedule is parsed from a compact spec (the `DETERRENT_FAULT_PLAN`
//! environment variable, [`FAULT_PLAN_ENV_VAR`]):
//!
//! ```text
//! seed=42,panic=400,timeout=300,corrupt=1000,io=500,evict=200
//! ```
//!
//! where each rate is per-mille (0–1000) of sites that fault. `1000` means
//! "every site faults exactly once" — the deterministic worst case.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use exec::split_seed;

/// Environment variable holding a [`FaultPlan`] spec (see the module docs
/// for the format). Read by the campaign CLI, never by the library.
pub const FAULT_PLAN_ENV_VAR: &str = "DETERRENT_FAULT_PLAN";

/// The kinds of faults a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic inside a campaign cell's failure domain (spec key `panic`).
    CellPanic,
    /// Simulated per-cell deadline expiry, without consuming wall clock
    /// (spec key `timeout`).
    CellTimeout,
    /// Corrupted artifact read: a short read or a flipped checksum byte,
    /// chosen by site parity (spec key `corrupt`).
    CorruptRead,
    /// Transient `ErrorKind::Other` I/O error on artifact open or rename
    /// (spec key `io`).
    IoError,
    /// Simulated eviction race: an artifact file that vanishes between
    /// directory scan and read, surfacing as a clean miss (spec key
    /// `evict`).
    EvictionRace,
}

impl FaultKind {
    const ALL: [FaultKind; 5] = [
        Self::CellPanic,
        Self::CellTimeout,
        Self::CorruptRead,
        Self::IoError,
        Self::EvictionRace,
    ];

    fn index(self) -> usize {
        match self {
            Self::CellPanic => 0,
            Self::CellTimeout => 1,
            Self::CorruptRead => 2,
            Self::IoError => 3,
            Self::EvictionRace => 4,
        }
    }

    fn spec_key(self) -> &'static str {
        match self {
            Self::CellPanic => "panic",
            Self::CellTimeout => "timeout",
            Self::CorruptRead => "corrupt",
            Self::IoError => "io",
            Self::EvictionRace => "evict",
        }
    }

    /// Decorrelates the per-kind decision streams of one plan seed.
    fn salt(self) -> u64 {
        0xFA17_0000_0000_0000 ^ ((self.index() as u64 + 1) << 32)
    }
}

/// How many faults of each kind a plan has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Injected cell panics.
    pub panics: u64,
    /// Injected cell timeouts.
    pub timeouts: u64,
    /// Injected corrupt reads (short read or checksum flip).
    pub corrupt_reads: u64,
    /// Injected transient I/O errors.
    pub io_errors: u64,
    /// Injected eviction races.
    pub eviction_races: u64,
}

impl FaultCounts {
    /// Total faults injected across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.panics + self.timeouts + self.corrupt_reads + self.io_errors + self.eviction_races
    }
}

#[derive(Debug, Default)]
struct PlanState {
    fired: HashSet<(u8, u64)>,
    counts: FaultCounts,
}

/// A seeded, deterministic fault-injection schedule. Cloning shares the
/// fire-once bookkeeping, so one plan can be threaded into both the disk
/// tier and the campaign driver and its counters stay coherent.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Per-kind injection rates, per-mille of sites (indexed by
    /// [`FaultKind::index`]).
    rates: [u16; 5],
    state: Arc<Mutex<PlanState>>,
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero) — useful as a base for
    /// the `with_rate` builder in tests.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            rates: [0; 5],
            state: Arc::default(),
        }
    }

    /// Returns a copy with `kind`'s injection rate set to `per_mille`
    /// (clamped to 1000). Shares no fired-state with `self`.
    #[must_use]
    pub fn with_rate(mut self, kind: FaultKind, per_mille: u16) -> Self {
        self.rates[kind.index()] = per_mille.min(1000);
        self.state = Arc::default();
        self
    }

    /// Parses a plan spec: comma-separated `key=value` pairs with keys
    /// `seed` (u64, default 0) and the per-kind rates `panic`, `timeout`,
    /// `corrupt`, `io`, `evict` (per-mille, 0–1000, default 0).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed pair or unknown key.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::quiet(0);
        for pair in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault plan: expected key=value, got {pair:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("fault plan: bad seed {value:?}"))?;
                continue;
            }
            let kind = FaultKind::ALL
                .into_iter()
                .find(|k| k.spec_key() == key)
                .ok_or_else(|| format!("fault plan: unknown key {key:?}"))?;
            let rate: u16 = value
                .parse()
                .map_err(|_| format!("fault plan: bad rate {value:?} for {key}"))?;
            if rate > 1000 {
                return Err(format!("fault plan: rate {rate} for {key} exceeds 1000"));
            }
            plan.rates[kind.index()] = rate;
        }
        Ok(plan)
    }

    /// Reads [`FAULT_PLAN_ENV_VAR`].
    ///
    /// Returns `Ok(None)` when the variable is unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::parse`] errors for a set-but-malformed value.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULT_PLAN_ENV_VAR) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// The plan seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides whether a `kind` fault fires at `site`, firing at most once
    /// per `(kind, site)` pair. The decision is a pure function of
    /// `(seed, kind, site)`; the fire-once bookkeeping only downgrades
    /// repeat decisions, so recovery retries always run clean.
    #[must_use]
    pub fn should_inject(&self, kind: FaultKind, site: u64) -> bool {
        let rate = u64::from(self.rates[kind.index()]);
        if rate == 0 {
            return false;
        }
        if split_seed(self.seed ^ kind.salt(), site) % 1000 >= rate {
            return false;
        }
        let mut state = self.state.lock().expect("fault plan state poisoned");
        if !state.fired.insert((kind.index() as u8, site)) {
            return false;
        }
        match kind {
            FaultKind::CellPanic => state.counts.panics += 1,
            FaultKind::CellTimeout => state.counts.timeouts += 1,
            FaultKind::CorruptRead => state.counts.corrupt_reads += 1,
            FaultKind::IoError => state.counts.io_errors += 1,
            FaultKind::EvictionRace => state.counts.eviction_races += 1,
        }
        true
    }

    /// Snapshot of how many faults have been injected so far.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        self.state.lock().expect("fault plan state poisoned").counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_rates_and_seed() {
        let plan = FaultPlan::parse("seed=42, panic=400, corrupt=1000,io=5").expect("parse");
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rates[FaultKind::CellPanic.index()], 400);
        assert_eq!(plan.rates[FaultKind::CorruptRead.index()], 1000);
        assert_eq!(plan.rates[FaultKind::IoError.index()], 5);
        assert_eq!(plan.rates[FaultKind::CellTimeout.index()], 0);
        assert!(FaultPlan::parse("").expect("empty ok").counts().total() == 0);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("bogus=5").is_err());
        assert!(FaultPlan::parse("panic=oops").is_err());
        assert!(FaultPlan::parse("panic=1001").is_err());
        assert!(FaultPlan::parse("seed=minus").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_fire_once() {
        let make = || FaultPlan::parse("seed=7,corrupt=500").expect("parse");
        let (a, b) = (make(), make());
        let decisions_a: Vec<bool> = (0..64)
            .map(|s| a.should_inject(FaultKind::CorruptRead, s))
            .collect();
        let decisions_b: Vec<bool> = (0..64)
            .map(|s| b.should_inject(FaultKind::CorruptRead, s))
            .collect();
        assert_eq!(decisions_a, decisions_b, "same seed, same schedule");
        let fired = decisions_a.iter().filter(|&&d| d).count();
        assert!(fired > 0, "a 50% rate over 64 sites fires at least once");
        assert_eq!(a.counts().corrupt_reads, fired as u64);
        // Second decision at an already-fired site never fires again.
        for site in 0..64 {
            assert!(!a.should_inject(FaultKind::CorruptRead, site));
        }
        assert_eq!(a.counts().corrupt_reads, fired as u64);
    }

    #[test]
    fn kinds_have_independent_streams() {
        let plan = FaultPlan::quiet(1)
            .with_rate(FaultKind::CellPanic, 500)
            .with_rate(FaultKind::CellTimeout, 500);
        let panics: Vec<bool> = (0..128)
            .map(|s| plan.should_inject(FaultKind::CellPanic, s))
            .collect();
        let timeouts: Vec<bool> = (0..128)
            .map(|s| plan.should_inject(FaultKind::CellTimeout, s))
            .collect();
        assert_ne!(panics, timeouts, "kind salt decorrelates the streams");
    }

    #[test]
    fn full_rate_fires_every_site_exactly_once() {
        let plan = FaultPlan::quiet(3).with_rate(FaultKind::IoError, 1000);
        for site in 0..16 {
            assert!(plan.should_inject(FaultKind::IoError, site));
            assert!(!plan.should_inject(FaultKind::IoError, site));
        }
        assert_eq!(plan.counts().io_errors, 16);
        assert_eq!(plan.counts().total(), 16);
    }
}
