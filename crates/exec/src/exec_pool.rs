//! Persistent channel-fed worker pool.
//!
//! [`Exec`](crate::Exec) spawns scoped threads per parallel call (~20–100 µs
//! of setup each time), which is fine for a one-shot CLI but wasteful for a
//! resident service dispatching thousands of calls. [`ExecPool`] keeps a
//! fixed set of long-lived workers fed over a multi-consumer channel and
//! reuses them across calls — and across whole campaigns.
//!
//! The pool preserves the workspace's core invariant by construction: a
//! dispatch splits `0..n` with the **same static chunk math** as
//! [`Exec::par_ranges`](crate::Exec::par_ranges) (one contiguous range per
//! worker, via the one shared chunk-size helper) and merges per-chunk
//! results **in range order**, so for the same deterministic task body the
//! output is bit-identical to the scoped executor at any thread count.
//!
//! The price of persistence is `'static` bounds: pool tasks outlive the
//! caller's stack frame, so closures are shared via [`Arc`] instead of
//! borrowed. Do not call pool combinators from *inside* a pool task — with
//! every worker busy on the outer call, the inner dispatch would wait
//! forever.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::pool::chunk_size;
use crate::stats::StatsCell;
use crate::task::{catch_task, payload_message};
use crate::{ExecStats, THREADS_ENV_VAR};

/// A unit of work executed by one pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker pool with [`Exec`](crate::Exec)-identical chunking.
///
/// Cloning the pool produces another handle to the same workers; the worker
/// threads shut down when the last handle is dropped (or on an explicit
/// [`ExecPool::shutdown`]). A pool resolved to one thread runs everything
/// inline on the calling thread, exactly like `Exec`.
///
/// # Example
///
/// ```
/// use exec::{Exec, ExecPool};
///
/// let pool = ExecPool::new(4);
/// let pooled = pool.par_index_map(8, |i| i * i);
/// let scoped = Exec::new(4).par_index_map(8, |i| i * i);
/// assert_eq!(pooled, scoped);
/// ```
#[derive(Clone)]
pub struct ExecPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    threads: usize,
    stats: Arc<StatsCell>,
    /// `None` once the pool has been shut down.
    sender: Mutex<Option<crossbeam::channel::Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("threads", &self.inner.threads)
            .finish_non_exhaustive()
    }
}

impl ExecPool {
    /// Creates a pool with `threads` persistent workers.
    ///
    /// `0` means "auto", resolved exactly like [`Exec::new`](crate::Exec::new):
    /// the [`DETERRENT_THREADS`](crate::THREADS_ENV_VAR) environment variable
    /// when set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`]. A pool resolved to one thread
    /// spawns no workers at all and runs every call inline.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads > 0 {
            threads
        } else {
            std::env::var(THREADS_ENV_VAR)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                })
        };
        let stats = Arc::new(StatsCell::default());
        let (sender, receiver) = crossbeam::channel::unbounded::<Job>();
        let workers = if threads > 1 {
            (0..threads)
                .map(|i| {
                    let receiver = receiver.clone();
                    std::thread::Builder::new()
                        .name(format!("exec-pool-{i}"))
                        .spawn(move || worker_loop(&receiver))
                        .expect("spawn pool worker")
                })
                .collect()
        } else {
            Vec::new()
        };
        Self {
            inner: Arc::new(PoolInner {
                threads,
                stats,
                sender: Mutex::new(Some(sender)),
                workers: Mutex::new(workers),
            }),
        }
    }

    /// The resolved worker count (always at least 1). This is also the bound
    /// on concurrently executing tasks — excess chunks queue in the channel.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Snapshot of the accumulated task/timing counters, accumulated across
    /// every call since creation (or the last [`ExecPool::reset_stats`]).
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        self.inner.stats.snapshot()
    }

    /// Resets the accumulated counters to zero.
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
    }

    /// Splits `0..n` into one contiguous range per worker — the same chunks
    /// as [`Exec::par_ranges`](crate::Exec::par_ranges) — runs `work` on
    /// each range on the persistent workers, and returns the per-range
    /// results **in range order**.
    ///
    /// # Panics
    ///
    /// A panic inside `work` is contained by the worker (the pool stays
    /// healthy) and re-raised on the calling thread once all chunks have
    /// finished, with the lowest panicking range and its payload message
    /// attached — mirroring the scoped executor's error text. Also panics
    /// when called on a pool after [`ExecPool::shutdown`].
    pub fn par_ranges<R, F>(&self, n: usize, work: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(Range<usize>) -> R + Send + Sync + 'static,
    {
        let call_start = Instant::now();
        let results = if n == 0 {
            Vec::new()
        } else if self.inner.threads <= 1 || n == 1 {
            let busy_start = Instant::now();
            let r = work(0..n);
            self.inner
                .stats
                .record_busy(busy_start.elapsed().as_nanos() as u64);
            vec![r]
        } else {
            self.dispatch(n, work)
        };
        self.inner
            .stats
            .record_call(n as u64, call_start.elapsed().as_nanos() as u64);
        results
    }

    /// The multi-chunk path of [`ExecPool::par_ranges`]: one queued job per
    /// chunk, results collected over a per-call channel and merged by slot.
    fn dispatch<R, F>(&self, n: usize, work: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(Range<usize>) -> R + Send + Sync + 'static,
    {
        let chunk = chunk_size(n, self.inner.threads);
        let work = Arc::new(work);
        let (result_tx, result_rx) = crossbeam::channel::unbounded();
        let mut expected = 0usize;
        {
            let guard = lock_ignoring_poison(&self.inner.sender);
            let sender = guard.as_ref().expect("exec pool used after shutdown");
            for (slot, lo) in (0..n).step_by(chunk).enumerate() {
                let hi = (lo + chunk).min(n);
                let work = Arc::clone(&work);
                let stats = Arc::clone(&self.inner.stats);
                let result_tx = result_tx.clone();
                expected += 1;
                let job: Job = Box::new(move || {
                    let busy_start = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| work(lo..hi)));
                    stats.record_busy(busy_start.elapsed().as_nanos() as u64);
                    let outcome = outcome.map_err(|payload| payload_message(payload.as_ref()));
                    let _ = result_tx.send((slot, lo..hi, outcome));
                });
                sender.send(job).expect("pool workers disconnected");
            }
        }
        drop(result_tx);
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(expected).collect();
        let mut first_panic: Option<(Range<usize>, String)> = None;
        for _ in 0..expected {
            let (slot, range, outcome) = result_rx.recv().expect("pool worker result");
            match outcome {
                Ok(r) => slots[slot] = Some(r),
                Err(message) => {
                    let earlier = first_panic
                        .as_ref()
                        .is_none_or(|(prev, _)| range.start < prev.start);
                    if earlier {
                        first_panic = Some((range, message));
                    }
                }
            }
        }
        if let Some((range, message)) = first_panic {
            panic!(
                "exec worker panicked on tasks {}..{}: {}",
                range.start, range.end, message
            );
        }
        slots
            .into_iter()
            .map(|r| r.expect("pool chunk result"))
            .collect()
    }

    /// Applies `f` to every index in `0..n` and returns the results in index
    /// order — the pooled equivalent of
    /// [`Exec::par_index_map`](crate::Exec::par_index_map).
    ///
    /// # Panics
    ///
    /// A panic inside `f` propagates to the caller, re-raised with the exact
    /// failing index and the downcast payload message attached.
    pub fn par_index_map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        self.par_ranges(n, move |range| {
            range
                .map(|i| catch_task(i, || f(i)).unwrap_or_else(|e| panic!("exec {e}")))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Shuts the workers down and joins them. Queued jobs still run to
    /// completion first; subsequent parallel calls on any handle panic.
    /// Idempotent — dropping the last handle performs the same teardown.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }
}

/// Locks a pool mutex, recovering the data from a poisoned lock: the pool's
/// shared state (a sender option, a worker list) stays structurally valid
/// even when a panic unwound through a guard, and `shutdown` runs inside
/// `Drop`, where a secondary panic would abort the process.
fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl PoolInner {
    fn shutdown(&self) {
        // Dropping the sender disconnects the job channel; workers exit
        // their receive loop once the queue drains.
        drop(lock_ignoring_poison(&self.sender).take());
        let workers = std::mem::take(&mut *lock_ignoring_poison(&self.workers));
        let current = std::thread::current().id();
        for handle in workers {
            // A worker can drop the last pool handle itself (via a queued
            // job); it must not join its own thread.
            if handle.thread().id() != current {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs queued jobs until the channel disconnects. Each job contains its own
/// panic handling; a defensive outer catch keeps a worker alive even for a
/// job that panics outside its own guard.
fn worker_loop(receiver: &crossbeam::channel::Receiver<Job>) {
    while let Ok(job) = receiver.recv() {
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{split_seed, Exec};

    #[test]
    fn par_ranges_matches_exec_chunking() {
        for threads in [1usize, 2, 3, 4, 7] {
            for n in [0usize, 1, 2, 5, 16, 33] {
                let pool = ExecPool::new(threads);
                let pooled = pool.par_ranges(n, |r| (r.start, r.end));
                let scoped = Exec::new(threads).par_ranges(n, |r| (r.start, r.end));
                assert_eq!(pooled, scoped, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn par_index_map_bit_identical_to_exec() {
        let expected = Exec::new(1).par_index_map(40, |i| split_seed(99, i as u64));
        for threads in [1usize, 4] {
            let pool = ExecPool::new(threads);
            assert_eq!(
                pool.par_index_map(40, |i| split_seed(99, i as u64)),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn pool_reuses_workers_across_calls() {
        let pool = ExecPool::new(4);
        for round in 0..5u64 {
            let got = pool.par_index_map(10, move |i| round * 100 + i as u64);
            let want: Vec<u64> = (0..10).map(|i| round * 100 + i).collect();
            assert_eq!(got, want);
        }
        let stats = pool.stats();
        assert_eq!(stats.calls, 5);
        assert_eq!(stats.tasks, 50);
    }

    #[test]
    fn clone_shares_workers_and_stats() {
        let pool = ExecPool::new(2);
        let other = pool.clone();
        other.par_index_map(4, |i| i);
        assert_eq!(pool.stats().calls, 1);
    }

    #[test]
    fn panic_reports_lowest_range_and_survives() {
        let pool = ExecPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_ranges(8, |r| {
                assert!(r.start != 2, "boom at {}", r.start);
                r.len()
            })
        }));
        let message = payload_message(result.unwrap_err().as_ref());
        assert!(
            message.contains("exec worker panicked on tasks 2..4"),
            "unexpected message: {message}"
        );
        // The pool must stay usable after containing a task panic.
        assert_eq!(pool.par_index_map(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let pool = ExecPool::new(3);
        assert_eq!(pool.par_index_map(3, |i| i), vec![0, 1, 2]);
        pool.shutdown();
        pool.shutdown();
    }
}
