//! From-scratch reinforcement learning substrate.
//!
//! The DETERRENT paper trains its agent with Proximal Policy Optimization
//! (PPO) in PyTorch. No deep-learning framework is available to this
//! reproduction, so this crate implements the required pieces directly:
//!
//! * [`Mlp`] — a dense multi-layer perceptron with tanh hidden activations
//!   and manual backpropagation.
//! * [`Adam`] — the Adam optimizer.
//! * [`MaskedCategorical`] — a categorical action distribution with invalid
//!   actions masked out, as used by DETERRENT's action-masking architecture.
//! * [`RolloutBuffer`] + GAE(λ) advantage estimation.
//! * [`PpoTrainer`] — clipped-surrogate PPO with entropy and value losses,
//!   exposing the knobs the paper tunes (entropy coefficient `c_ε`, value
//!   coefficient `c_v`, smoothing parameter `λ`).
//! * [`Environment`] — the environment interface implemented by
//!   `deterrent-core`'s compatible-set MDP, plus a generic [`train`] loop.
//! * [`collect_episodes`] / [`train_parallel`] — deterministic parallel
//!   rollout collection: frozen-policy rounds fanned out over seed-split
//!   per-episode environments, bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use rl::{train, Environment, PpoConfig, PpoTrainer, StepOutcome, TrainOptions};
//!
//! /// Two-armed bandit: action 1 pays off, action 0 does not.
//! struct Bandit;
//! impl Environment for Bandit {
//!     fn state_dim(&self) -> usize { 1 }
//!     fn num_actions(&self) -> usize { 2 }
//!     fn reset(&mut self) -> Vec<f64> { vec![1.0] }
//!     fn step(&mut self, action: usize) -> StepOutcome {
//!         StepOutcome { state: vec![1.0], reward: if action == 1 { 1.0 } else { 0.0 }, done: true }
//!     }
//! }
//!
//! let mut env = Bandit;
//! let config = PpoConfig { batch_size: 32, learning_rate: 0.01, hidden_sizes: vec![16], ..PpoConfig::default() };
//! let mut trainer = PpoTrainer::new(1, 2, &config, 7);
//! let report = train(&mut env, &mut trainer, &TrainOptions { episodes: 400, max_steps: 1, seed: 3 });
//! assert!(report.mean_reward_last(50) > 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod distribution;
mod env;
mod mlp;
mod ppo;
mod rollout;

pub use adam::Adam;
pub use distribution::MaskedCategorical;
pub use env::{train, Environment, StepOutcome, TrainOptions, TrainReport};
pub use mlp::Mlp;
pub use ppo::{
    AdamSnapshot, PolicySnapshot, PpoConfig, PpoLosses, PpoTrainer, RolloutBuffer, Transition,
};
pub use rollout::{
    collect_episodes, train_parallel, train_parallel_observed, CollectOptions, EpisodeOutcome,
    ParallelTrainOptions, ParallelTrainOutcome, RoundProgress,
};
