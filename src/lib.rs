//! Facade crate for the DETERRENT reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so the root-level examples
//! and integration tests (and downstream users who prefer a single
//! dependency) can write `use deterrent_repro::deterrent_core::Deterrent;`.
//!
//! The individual crates are:
//!
//! * [`exec`] — deterministic parallel execution runtime (seed-split RNG
//!   streams, scoped thread pool, scratch reuse).
//! * [`netlist`] — gate-level netlist model, `.bench` I/O, synthetic
//!   benchmark generation.
//! * [`sim`] — bit-parallel logic simulation and rare-net analysis.
//! * [`sat`] — CDCL SAT solver, Tseitin encoding, justification oracle.
//! * [`rl`] — MLP + Adam + masked-categorical PPO.
//! * [`trojan`] — Trojan insertion and trigger-coverage evaluation.
//! * [`deterrent_core`] — the DETERRENT pipeline itself.
//! * [`baselines`] — Random, MERO, TARMAC, TGRL-like, and ATPG baselines.
//! * [`campaign`] — netlists × θ × seeds sweep driver over one bounded
//!   artifact cache, plus the `deterrent-campaign`/`deterrent-cache` CLIs.
//! * [`serve`] — resident campaign daemon over a Unix-domain socket
//!   (persistent worker pool, streamed progress), plus the
//!   `deterrent-serve`/`deterrent-submit` CLIs.
//!
//! # Quick start
//!
//! ```
//! use deterrent_repro::deterrent_core::{DeterrentConfig, DeterrentSession};
//! use deterrent_repro::netlist::synth::BenchmarkProfile;
//!
//! let netlist = BenchmarkProfile::c2670().scaled(30).generate(7);
//! let mut session = DeterrentSession::new(&netlist, DeterrentConfig::fast_preset());
//! let result = session.run();
//! println!("{} patterns generated", result.test_length());
//! ```
//!
//! Drive the stages individually (`analyze`, `build_graph`, `train`,
//! `select`, `generate`) to reuse cached artifacts across configurations —
//! see the `deterrent_core` crate docs and the `quickstart` example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use campaign;
pub use deterrent_core;
pub use exec;
pub use netlist;
pub use rl;
pub use sat;
pub use serve;
pub use sim;
pub use trojan;

/// The value following `--cache-dir` in this process's arguments, when
/// given — the one flag every root example shares, wiring
/// [`deterrent_core::DeterrentConfig::with_cache_dir`] to the persistent
/// artifact cache (the `DETERRENT_CACHE_DIR` environment variable works
/// without any flag).
#[must_use]
pub fn cache_dir_arg() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--cache-dir")?;
    args.get(i + 1).map(std::path::PathBuf::from)
}
